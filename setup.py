"""Setup shim for legacy editable installs.

The execution environment ships setuptools 65 without the ``wheel``
package, so PEP-517 editable installs fail with "invalid command
'bdist_wheel'".  ``pip install -e . --no-use-pep517 --no-build-isolation``
through this shim works everywhere; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
