#!/usr/bin/env python
"""When does cloning help?  The Sec. 4.1 analysis, interactively.

Prints the closed-form comparison of the three scheduling schemes
(flow₁: schedule all + one clone; flow₂: serial with maximal cloning;
flow₃: two clones each, smallest first) across N and α, the speedup
function h(r) of Eq. (3), and the Corollary-4.1 clone counts r_j for a
range of deadlines.

Run:  python examples/cloning_analysis.py
"""

from repro.analysis.report import format_table
from repro.core.theory import (
    cloning_helps_condition,
    flow_schedule_all_then_clone_smallest,
    flow_serial_maximal_cloning,
    flow_two_clones_smallest_first,
)
from repro.workload.speedup import ParetoSpeedup, required_clones


def main() -> None:
    print("Speedup function h(r) = 1 + (1 - 1/r)/(α - 1)  [Eq. 3]\n")
    rows = []
    for alpha in (1.5, 2.0, 3.0, 5.0):
        h = ParetoSpeedup(alpha)
        rows.append([alpha] + [round(h(r), 3) for r in (1, 2, 3, 4, 8)] + [round(h.bound, 3)])
    print(format_table(["alpha", "h(1)", "h(2)", "h(3)", "h(4)", "h(8)", "R=bound"], rows))

    print("\nThree schemes of Sec. 4.1 (α = 2):\n")
    h = ParetoSpeedup(2.0)
    rows = []
    for n in (3, 5, 8, 12, 20):
        f1 = flow_schedule_all_then_clone_smallest(n, h)
        f2 = flow_serial_maximal_cloning(n, h)
        f3 = flow_two_clones_smallest_first(n, h)
        rows.append(
            [n, round(f1, 2), round(f2, 2), round(f3, 2),
             "yes" if cloning_helps_condition(n, 2.0) else "no"]
        )
    print(format_table(["N", "flow1", "flow2", "flow3", "flow3<flow1<flow2?"], rows))
    print(
        "\nTakeaway: a small number of clones for small jobs (scheme 3)\n"
        "wins once N > 2α − 1, even in an overloaded cluster."
    )

    print("\nCorollary 4.1 clone counts r_j (θ = 10, α = 2):\n")
    h = ParetoSpeedup(2.0)
    rows = []
    for deadline in (10.0, 8.0, 6.0, 5.5, 5.0):
        r = required_clones(10.0, deadline, h)
        rows.append([deadline, r if r is not None else "unreachable"])
    print(format_table(["category deadline", "copies needed"], rows))


if __name__ == "__main__":
    main()
