#!/usr/bin/env python
"""Straggler-server learning — the paper's future work, demonstrated.

A 16-node cluster has four nodes whose hypervisors are overloaded (4×
slowdown).  Plain DollyMP² treats all nodes equally; the learning
variant observes completed-copy durations, estimates each server's
slowdown online, and steers tasks (and clones) away from the bad nodes.

Run:  python examples/straggler_learning.py
"""

from repro import DollyMPScheduler, LearningDollyMPScheduler, run_simulation
from repro.analysis.plots import ascii_bars, ascii_cdf
from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.core.server_learning import StragglerServerTracker
from repro.resources import Resources
from repro.workload.mapreduce import wordcount_job

NUM_SERVERS = 16
SLOW_SERVERS = {0, 1, 2, 3}


def make_cluster() -> Cluster:
    return Cluster(
        [
            Server(i, Resources.of(8, 16), slowdown=4.0 if i in SLOW_SERVERS else 1.0)
            for i in range(NUM_SERVERS)
        ]
    )


def make_jobs():
    return [
        wordcount_job(2.0, arrival_time=25.0 * i, job_id=i, cv=0.4)
        for i in range(50)
    ]


def main() -> None:
    tracker = StragglerServerTracker()
    runs = {
        "plain": run_simulation(
            make_cluster(), DollyMPScheduler(max_clones=2), make_jobs(), seed=7
        ),
        "learning": run_simulation(
            make_cluster(),
            LearningDollyMPScheduler(max_clones=2, bias=2.0, tracker=tracker),
            make_jobs(),
            seed=7,
        ),
    }

    print("Job running-time CDFs (lower-left is better):\n")
    print(ascii_cdf({k: r.running_times() for k, r in runs.items()}, width=56, height=10))

    print("\nMean running time (s):\n")
    print(ascii_bars({k: round(r.mean_running_time, 2) for k, r in runs.items()}))

    print("\nLearned per-server slowdown estimates (truth: 4× for 0-3):\n")
    for sid in range(NUM_SERVERS):
        est = tracker.estimated_slowdown(sid)
        marker = "  <-- flagged" if est > 1.5 else ""
        print(f"  server {sid:2d}: {est:5.2f}{marker}")
    flagged = set(tracker.risky_servers(1.5))
    print(f"\nIdentified straggler servers: {sorted(flagged)} "
          f"(ground truth {sorted(SLOW_SERVERS)})")


if __name__ == "__main__":
    main()
