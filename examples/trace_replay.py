#!/usr/bin/env python
"""Trace-driven simulation: generate, save, reload and replay a
Google-trace-like workload (the Sec. 6.3 pipeline).

1. Synthesize a trace with the documented Google-trace statistics
   (95% small jobs, 70% straggler-prone phases, heavy-tailed sizes);
2. save it to JSON and load it back (the same path replays real traces
   converted to the ``repro-trace-v1`` schema);
3. run DollyMP² and Tetris on a large heterogeneous cluster with the
   paper's 5-second scheduling slots;
4. report the per-job speedup distribution (Fig. 8-style).

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DollyMPScheduler, TetrisScheduler, run_simulation, trace_sim_cluster
from repro.analysis.report import format_table, ratio_cdf
from repro.workload.google_trace import (
    GoogleTraceGenerator,
    jobs_from_specs,
    load_trace,
    save_trace,
)


def main() -> None:
    # 1. Synthesize.
    gen = GoogleTraceGenerator(seed=11, straggler_phase_fraction=0.7)
    specs = gen.generate(120, mean_interarrival=20.0)
    sizes = [s.num_tasks() for s in specs]
    print(
        f"Generated {len(specs)} jobs: median {np.median(sizes):.0f} tasks, "
        f"max {max(sizes)} tasks"
    )

    # 2. Save + reload (round-trips exactly).
    path = Path(tempfile.gettempdir()) / "repro_trace.json"
    save_trace(specs, path)
    specs = load_trace(path)
    print(f"Trace written to {path} and reloaded.")

    # 3. Replay under two schedulers with 5-second slots.
    results = {}
    for name, make in {
        "Tetris": TetrisScheduler,
        "DollyMP^2": lambda: DollyMPScheduler(max_clones=2),
    }.items():
        results[name] = run_simulation(
            trace_sim_cluster(150, seed=3),
            make(),
            jobs_from_specs(specs),
            seed=3,
            schedule_interval=5.0,
            max_time=1e9,
        )

    # 4. Fig. 8-style report.
    ratios = ratio_cdf(results["DollyMP^2"], results["Tetris"], metric="flowtime")
    rows = [
        ["mean flowtime Tetris", results["Tetris"].mean_flowtime],
        ["mean flowtime DollyMP^2", results["DollyMP^2"].mean_flowtime],
        ["average speedup", 1 - float(ratios.mean())],
        ["jobs ≥30% faster", float(np.mean(ratios <= 0.7))],
        ["makespan ratio", results["DollyMP^2"].makespan / results["Tetris"].makespan],
        ["clones launched", results["DollyMP^2"].clones_launched],
    ]
    print()
    print(format_table(["metric", "value"], rows))


if __name__ == "__main__":
    main()
