#!/usr/bin/env python
"""Quickstart: schedule a small MapReduce workload with DollyMP.

Builds the paper's 30-node heterogeneous cluster, submits a handful of
WordCount and PageRank jobs, runs the DollyMP scheduler (2 clones max,
the paper's default) and prints the per-job outcome plus the aggregate
summary.

Run:  python examples/quickstart.py
"""

from repro import (
    DollyMPScheduler,
    pagerank_job,
    paper_cluster_30_nodes,
    run_simulation,
    wordcount_job,
)
from repro.analysis.report import format_table


def main() -> None:
    cluster = paper_cluster_30_nodes()
    print(
        f"Cluster: {len(cluster)} nodes, "
        f"{cluster.total_capacity.cpu:.0f} cores / "
        f"{cluster.total_capacity.mem:.0f} GB"
    )

    # Six jobs arriving one minute apart: WordCount over 4 GB and
    # PageRank over 1 GB, alternating.
    jobs = []
    for i in range(6):
        if i % 2 == 0:
            jobs.append(wordcount_job(4.0, arrival_time=60.0 * i, job_id=i))
        else:
            jobs.append(pagerank_job(1.0, arrival_time=60.0 * i, job_id=i))

    scheduler = DollyMPScheduler(max_clones=2)  # DollyMP², δ=0.3, r=1.5
    result = run_simulation(cluster, scheduler, jobs, seed=42)

    rows = [
        [r.name, r.arrival_time, round(r.flowtime, 1), round(r.running_time, 1),
         r.num_tasks, r.num_clones]
        for r in result.records
    ]
    print()
    print(format_table(
        ["job", "arrival", "flowtime_s", "runtime_s", "tasks", "clones"], rows
    ))
    print()
    for key, value in result.summary().items():
        print(f"  {key:>24s}: {value:.3f}")


if __name__ == "__main__":
    main()
