#!/usr/bin/env python
"""Compare every scheduler of the paper on one heavy workload.

Reproduces (at mini scale) the Sec. 6.2.2 story: under a heavily-loaded
cluster, DollyMP's knapsack scheduling plus cloning beats the Capacity
scheduler, DRF, Tetris, Carbyne and Graphene on total job flowtime.

Run:  python examples/scheduler_comparison.py [num_jobs]
"""

import sys

from repro import (
    CapacityScheduler,
    CarbyneScheduler,
    DollyMPScheduler,
    DRFScheduler,
    GrapheneScheduler,
    SRPTScheduler,
    SVFScheduler,
    TetrisScheduler,
    compare_schedulers,
    pagerank_job,
    paper_cluster_30_nodes,
    wordcount_job,
)
from repro.analysis.report import comparison_table


def make_jobs(num_jobs: int):
    """Alternating WordCount (4 GB) and PageRank (4 GB / 0.4 GB) jobs
    arriving every 2 s — sustained overload, as in the paper's heavy
    regime."""
    jobs = []
    for i in range(num_jobs):
        t = 2.0 * i
        if i % 2 == 0:
            jobs.append(wordcount_job(4.0, arrival_time=t, job_id=i, cv=0.8))
        else:
            size = 4.0 if i % 4 == 1 else 0.4
            jobs.append(
                pagerank_job(size, iterations=3, arrival_time=t, job_id=i, cv=0.8)
            )
    return jobs


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    schedulers = {
        "Capacity": CapacityScheduler,
        "DRF": DRFScheduler,
        "Tetris": TetrisScheduler,
        "Carbyne": CarbyneScheduler,
        "Graphene": GrapheneScheduler,
        "SRPT": SRPTScheduler,
        "SVF": SVFScheduler,
        "DollyMP^0": lambda: DollyMPScheduler(max_clones=0),
        "DollyMP^2": lambda: DollyMPScheduler(max_clones=2),
    }
    print(f"Running {num_jobs} jobs under {len(schedulers)} schedulers ...")
    results = compare_schedulers(
        paper_cluster_30_nodes,
        lambda: make_jobs(num_jobs),
        schedulers,
        seed=7,
        max_time=1e8,
    )
    print()
    print(comparison_table(results))
    best = min(results.items(), key=lambda kv: kv[1].total_flowtime)
    cap = results["Capacity"].total_flowtime
    print(
        f"\nBest: {best[0]} "
        f"({100 * (1 - best[1].total_flowtime / cap):.0f}% less total "
        f"flowtime than Capacity)"
    )


if __name__ == "__main__":
    main()
