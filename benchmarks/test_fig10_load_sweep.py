"""Fig. 10 — the effect of cloning under different cluster loads.

The paper fixes the job workload and varies the number of CPU cores in
the cluster, comparing DollyMP² with DollyMP⁰:

* (a) even at high load (10× the low-load point) cloning reduces the
  overall flowtime by ~10% while consuming only ~2% extra resources;
* (b) the fraction of tasks with cloned copies stays substantial
  (~40% at high load) because DollyMP's scheduling policy keeps the
  number of queued jobs small.

We sweep ``cpu_scale`` over a 10× range and assert: cloning never hurts
by more than a sliver, helps clearly at low load, still helps at the
highest load, and extra usage at high load is a small fraction.
"""

from repro.analysis.report import format_table
from repro.cluster.heterogeneity import trace_sim_cluster
from repro.core.online import DollyMPScheduler
from repro.sim.runner import run_simulation
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs

from benchmarks.conftest import (
    PAPER_SCALE,
    SEED,
    TRACE_SLOT,
    run_once,
    save_figure_text,
)

NUM_SERVERS = 30_000 if PAPER_SCALE else 120
NUM_JOBS = 1_000 if PAPER_SCALE else 150
#: cpu_scale 1.0 = low load; 0.05 = beyond "10× the low load".
SCALES = [1.0, 0.3, 0.1, 0.05]


def jobs():
    gen = GoogleTraceGenerator(seed=SEED + 1, mean_theta=25.0)
    specs = gen.generate(NUM_JOBS, mean_interarrival=10.0)
    # Cap per-task demands so the workload stays feasible on the most
    # CPU-scaled-down cluster of the sweep (smallest server ≥ 2 cores).
    from repro.workload.google_trace import PhaseSpec, TraceJobSpec

    capped = []
    for s in specs:
        phases = tuple(
            PhaseSpec(
                num_tasks=p.num_tasks,
                cpu=min(p.cpu, 1.0),
                mem=min(p.mem, 4.0),
                theta=p.theta,
                sigma=p.sigma,
                parents=p.parents,
            )
            for p in s.phases
        )
        capped.append(
            TraceJobSpec(name=s.name, arrival_time=s.arrival_time, phases=phases)
        )
    return jobs_from_specs(capped)


def run_sweep():
    rows = {}
    for scale in SCALES:
        per = {}
        for clones in (0, 2):
            per[clones] = run_simulation(
                trace_sim_cluster(NUM_SERVERS, seed=SEED, cpu_scale=scale),
                DollyMPScheduler(max_clones=clones),
                jobs(),
                seed=SEED,
                schedule_interval=TRACE_SLOT,
                max_time=1e9,
            )
        rows[scale] = per
    return rows


def test_fig10_load_sweep(benchmark):
    sweep = run_once(benchmark, run_sweep)

    rows = []
    for scale, per in sweep.items():
        d0, d2 = per[0], per[2]
        reduction = 1.0 - d2.total_flowtime / d0.total_flowtime
        extra_usage = d2.total_usage / d0.total_usage - 1.0
        rows.append(
            [
                f"cpu×{scale:g}",
                float(d0.total_flowtime),
                float(d2.total_flowtime),
                float(reduction),
                float(extra_usage),
                float(d2.clone_task_fraction),
            ]
        )
    table = format_table(
        [
            "cluster",
            "flowtime_noclone",
            "flowtime_clone2",
            "flow_reduction",
            "extra_usage",
            "clone_task_frac",
        ],
        rows,
    )
    save_figure_text("fig10_load_sweep", table)

    low = sweep[SCALES[0]]
    high = sweep[SCALES[-1]]
    # Low load: cloning helps clearly.
    assert low[2].total_flowtime < 0.95 * low[0].total_flowtime
    # High load (≥10× fewer cores): cloning still reduces flowtime
    # (paper: ~10% — we require a nonzero improvement at small scale).
    assert high[2].total_flowtime < 1.0 * high[0].total_flowtime
    # Extra resource usage collapses as load grows (paper: ~2% at 10×) —
    # far below the low-load overhead.
    extra_low = low[2].total_usage / low[0].total_usage - 1.0
    extra_high = high[2].total_usage / high[0].total_usage - 1.0
    assert extra_high <= 0.5 * extra_low
    assert extra_high <= 0.25
    # Tasks still get cloned at high load (paper: ~40%).
    assert high[2].clone_task_fraction > 0.1
    # Clone fraction shrinks as load grows (less leftover to clone into).
    assert high[2].clone_task_fraction <= low[2].clone_task_fraction
