"""Performance regression gate for the scheduling hot path.

Re-measures the two overhead benchmarks (priority recompute at 1K jobs /
30K servers; one full DollyMP schedule pass on the 30-node testbed)
plus the end-to-end engine throughput gate (the ``gate`` config of
``benchmarks/engine_bench``) and the trace-ingestion gate (the ``gate``
config of ``benchmarks/ingest_bench``), comparing against the recorded
baselines — the overhead means in ``benchmarks/results/<figure>.txt``,
the engine numbers in ``benchmarks/results/BENCH_engine.json`` and the
ingestion numbers in ``benchmarks/results/BENCH_ingest.json``.
Fails (exit 1) if any measurement regressed by more than 2x — generous
enough to ride out machine noise, tight enough to catch an accidentally
de-vectorized hot path, a de-batched event loop or a de-streamed
ingestion pass.

The engine check also asserts the fresh run's ``total_flowtime`` equals
the recorded one bit-for-bit, and the ingest check does the same for
job/task yield: both subsystems' contract is *faster, not different*,
so a drift is a correctness regression even at blazing speed.

The shard gate re-measures the ``gate`` config of
:mod:`benchmarks.shard_bench` at K=1 and K=4 and enforces *exact*
flowtime/event-count identity across K (the merge-barrier contract of
DESIGN.md §5.10) plus the recorded ≥1.5× events/sec speedup of the
100K-server reference at K≥4.

A missing or schema-mismatched baseline file is a hard failure naming
the file and the expected keys — never a silent pass and never a bare
``KeyError`` traceback: a gate that cannot find its yardstick must not
report green.

Run it as::

    python -m benchmarks.check_regression                 # every gate
    python -m benchmarks.check_regression --gate ingest   # one subsystem

Regenerate the recorded baselines with::

    PYTHONPATH=src python -m pytest benchmarks/test_overhead.py
    PYTHONPATH=src python -m benchmarks.engine_bench --write-baseline
    PYTHONPATH=src python -m benchmarks.ingest_bench --write-baseline
    PYTHONPATH=src python -m benchmarks.shard_bench --write-baseline
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time

from repro.cluster.heterogeneity import paper_cluster_30_nodes, trace_sim_cluster
from repro.core.online import DollyMPScheduler
from repro.core.transient import compute_priorities
from repro.core.volume import measure_job
from repro.sim.engine import SimulationEngine
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs

from benchmarks.conftest import RESULTS_DIR, SEED

#: Fail when a fresh mean exceeds recorded mean by more than this factor.
MAX_SLOWDOWN = 2.0

#: The shard acceptance bar: recorded ref100k events/sec at K=4 must be
#: at least this multiple of the K=1 baseline.
MIN_SHARD_SPEEDUP = 1.5

_MEAN_RE = re.compile(r"mean ([0-9.]+) ms")


class BaselineError(RuntimeError):
    """A recorded baseline is missing or does not match the gate schema."""


def _require_keys(record: dict, keys: tuple[str, ...], path, where: str) -> None:
    """Fail loudly (naming file and keys) instead of a KeyError traceback."""
    missing = [k for k in keys if k not in record]
    if missing:
        raise BaselineError(
            f"{path}: {where} is missing expected keys {missing} "
            f"(expected {list(keys)}) — the baseline predates this gate's "
            "schema; regenerate it with the bench's --write-baseline"
        )


def _print_baseline_error(gate: str, err: BaselineError) -> None:
    print(f"{gate}: BASELINE ERROR — {err}")


def recorded_mean_ms(figure: str) -> float | None:
    """Recorded mean from ``benchmarks/results/<figure>.txt`` (ms)."""
    path = RESULTS_DIR / f"{figure}.txt"
    if not path.exists():
        return None
    match = _MEAN_RE.search(path.read_text())
    return float(match.group(1)) if match else None


def measure_priorities_ms(rounds: int = 5) -> float:
    """Same protocol as ``test_priority_recompute_1k_jobs_30k_machines``."""
    total = trace_sim_cluster(30_000, seed=SEED).total_capacity
    jobs = jobs_from_specs(
        GoogleTraceGenerator(seed=SEED).generate(1_000, mean_interarrival=0.0)
    )
    measures = [measure_job(j, total, r=1.5) for j in jobs]
    compute_priorities(measures)  # warmup
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        compute_priorities(measures)
        times.append(time.perf_counter() - t0)
    return 1e3 * sum(times) / rounds


def measure_schedule_pass_ms(rounds: int = 3) -> float:
    """Same protocol as ``test_schedule_pass_on_testbed`` (pedantic
    rounds on one stateful engine: first pass fills the cluster, later
    passes are the steady-state clone-only regime)."""
    jobs = jobs_from_specs(
        GoogleTraceGenerator(seed=SEED, mean_theta=60.0).generate(
            40, mean_interarrival=0.0
        )
    )
    sched = DollyMPScheduler(max_clones=2)
    engine = SimulationEngine(
        paper_cluster_30_nodes(), sched, jobs, seed=SEED, max_time=1e9
    )
    for job in engine.jobs:
        engine.active_jobs[job.job_id] = job
    sched.recompute_priorities(engine.view)
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        sched.schedule(engine.view)
        times.append(time.perf_counter() - t0)
    return 1e3 * sum(times) / rounds


_ENGINE_GATE_KEYS = ("events_per_sec", "total_flowtime", "events", "copies_launched")


def recorded_engine_gate() -> dict:
    """The ``gate``-config record from ``BENCH_engine.json``.

    Raises :class:`BaselineError` (naming the file and the expected
    keys) when the baseline file is missing, holds no gate record, or
    lacks the gate's schema.
    """
    from benchmarks.engine_bench import BASELINE_PATH

    if not BASELINE_PATH.exists():
        raise BaselineError(
            f"{BASELINE_PATH}: baseline file missing (expected keys "
            f"{list(_ENGINE_GATE_KEYS)} in the gate/current run) — run "
            "`python -m benchmarks.engine_bench --write-baseline` first"
        )
    runs = json.loads(BASELINE_PATH.read_text()).get("measured", {}).get("runs", [])
    for run in runs:
        if run.get("config") == "gate" and run.get("mode") == "current":
            _require_keys(run, _ENGINE_GATE_KEYS, BASELINE_PATH, "gate/current run")
            return run
    raise BaselineError(
        f"{BASELINE_PATH}: no (config='gate', mode='current') run in "
        "measured.runs — regenerate with "
        "`python -m benchmarks.engine_bench --write-baseline`"
    )


def check_engine_gate() -> bool:
    """End-to-end engine throughput + identity check.  Returns True on
    failure.  Throughput uses the same 2x slack as the overhead checks
    (events/sec is a rate, so the comparison inverts); flowtime must
    match the baseline exactly — the batched engine promises identical
    results, so any drift is a correctness bug, not noise."""
    try:
        recorded = recorded_engine_gate()
    except BaselineError as err:
        _print_baseline_error("engine_gate", err)
        return True
    # A fresh interpreter, not in-process: the overhead checks above have
    # already consumed job ids from the global counter, and the recorded
    # baseline was measured in a clean process.
    from benchmarks.engine_bench import _measure_subprocess

    fresh = _measure_subprocess("gate", "current")
    failed = False
    ratio = recorded["events_per_sec"] / fresh["events_per_sec"]
    verdict = "OK" if ratio <= MAX_SLOWDOWN else "REGRESSION"
    print(
        f"engine_gate: recorded {recorded['events_per_sec']:.1f} ev/s, "
        f"fresh {fresh['events_per_sec']:.1f} ev/s ({ratio:.2f}x slower) — {verdict}"
    )
    if ratio > MAX_SLOWDOWN:
        failed = True
    for key in ("total_flowtime", "events", "copies_launched"):
        if fresh[key] != recorded[key]:
            print(
                f"engine_gate: {key} drifted — recorded {recorded[key]!r}, "
                f"fresh {fresh[key]!r} — IDENTITY REGRESSION"
            )
            failed = True
    return failed


_INGEST_GATE_KEYS = ("rows_per_sec", "peak_rss_mb", "rows", "jobs", "tasks")


def recorded_ingest_gate() -> dict:
    """The ``gate``-config record from ``BENCH_ingest.json``.

    Raises :class:`BaselineError` (naming the file and the expected
    keys) when the baseline file is missing, holds no gate record, or
    lacks the gate's schema.
    """
    from benchmarks.ingest_bench import BASELINE_PATH

    if not BASELINE_PATH.exists():
        raise BaselineError(
            f"{BASELINE_PATH}: baseline file missing (expected keys "
            f"{list(_INGEST_GATE_KEYS)} in the gate run) — run "
            "`python -m benchmarks.ingest_bench --write-baseline` first"
        )
    runs = json.loads(BASELINE_PATH.read_text()).get("measured", {}).get("runs", [])
    for run in runs:
        if run.get("config") == "gate":
            _require_keys(run, _INGEST_GATE_KEYS, BASELINE_PATH, "gate run")
            return run
    raise BaselineError(
        f"{BASELINE_PATH}: no (config='gate') run in measured.runs — "
        "regenerate with `python -m benchmarks.ingest_bench --write-baseline`"
    )


def check_ingest_gate() -> bool:
    """Trace-ingestion throughput + memory + yield check.  Returns True
    on failure.  Rows/sec uses the same 2x slack as every other rate;
    peak RSS gets the same slack (a streaming pipeline that starts
    buffering shows up as a multiple, not a few percent); the job/task
    yield must match the baseline exactly — ingestion of a fixed fixture
    is deterministic by contract."""
    try:
        recorded = recorded_ingest_gate()
    except BaselineError as err:
        _print_baseline_error("ingest_gate", err)
        return True
    from benchmarks.ingest_bench import _measure_subprocess

    fresh = _measure_subprocess("gate")
    failed = False
    ratio = recorded["rows_per_sec"] / fresh["rows_per_sec"]
    verdict = "OK" if ratio <= MAX_SLOWDOWN else "REGRESSION"
    print(
        f"ingest_gate: recorded {recorded['rows_per_sec']:.1f} rows/s, "
        f"fresh {fresh['rows_per_sec']:.1f} rows/s ({ratio:.2f}x slower) — {verdict}"
    )
    if ratio > MAX_SLOWDOWN:
        failed = True
    rss_ratio = fresh["peak_rss_mb"] / recorded["peak_rss_mb"]
    verdict = "OK" if rss_ratio <= MAX_SLOWDOWN else "REGRESSION"
    print(
        f"ingest_gate: recorded {recorded['peak_rss_mb']:.1f} MB peak RSS, "
        f"fresh {fresh['peak_rss_mb']:.1f} MB ({rss_ratio:.2f}x) — {verdict}"
    )
    if rss_ratio > MAX_SLOWDOWN:
        failed = True
    for key in ("rows", "jobs", "tasks"):
        if fresh[key] != recorded[key]:
            print(
                f"ingest_gate: {key} drifted — recorded {recorded[key]!r}, "
                f"fresh {fresh[key]!r} — IDENTITY REGRESSION"
            )
            failed = True
    return failed


_SHARD_GATE_KEYS = (
    "events_per_sec",
    "total_flowtime",
    "events",
    "copies_launched",
    "shards",
)


def recorded_shard_gate() -> tuple[dict[int, dict], dict]:
    """The ``gate``-config records (keyed by K) and the ``ref100k``
    speedup map from ``BENCH_shard.json``.

    Raises :class:`BaselineError` (naming the file and the expected
    keys) when the baseline file is missing or schema-mismatched.
    """
    from benchmarks.shard_bench import BASELINE_PATH, MIN_GATE_SHARDS

    if not BASELINE_PATH.exists():
        raise BaselineError(
            f"{BASELINE_PATH}: baseline file missing (expected keys "
            f"{list(_SHARD_GATE_KEYS)} in the gate runs plus "
            "speedups.ref100k) — run "
            "`python -m benchmarks.shard_bench --write-baseline` first"
        )
    measured = json.loads(BASELINE_PATH.read_text()).get("measured", {})
    gate_runs: dict[int, dict] = {}
    for run in measured.get("runs", []):
        if run.get("config") == "gate":
            _require_keys(run, _SHARD_GATE_KEYS, BASELINE_PATH, "gate run")
            gate_runs[int(run["shards"])] = run
    for k in (1, MIN_GATE_SHARDS):
        if k not in gate_runs:
            raise BaselineError(
                f"{BASELINE_PATH}: no (config='gate', shards={k}) run in "
                f"measured.runs (expected keys {list(_SHARD_GATE_KEYS)}) — "
                "regenerate with "
                "`python -m benchmarks.shard_bench --write-baseline`"
            )
    speedups = measured.get("speedups", {})
    if "ref100k" not in speedups or str(MIN_GATE_SHARDS) not in speedups["ref100k"]:
        raise BaselineError(
            f"{BASELINE_PATH}: measured.speedups.ref100k['{MIN_GATE_SHARDS}'] "
            "missing — the 100K-server acceptance ratio was never recorded; "
            "regenerate with `python -m benchmarks.shard_bench --write-baseline`"
        )
    return gate_runs, speedups


def check_shard_gate() -> bool:
    """Sharded-engine identity + scaling check.  Returns True on failure.

    Three assertions: the recorded 100K-server events/sec speedup at K=4
    meets the ≥1.5× acceptance bar; a fresh gate-config run is
    bit-identical across K=1 and K=4 (and to the recorded identity
    values — the merge-barrier contract); and the fresh K=4 rate is
    within the usual 2x slack of the recorded one."""
    from benchmarks.shard_bench import MIN_GATE_SHARDS

    try:
        gate_runs, speedups = recorded_shard_gate()
    except BaselineError as err:
        _print_baseline_error("shard_gate", err)
        return True
    failed = False

    ratio = speedups["ref100k"][str(MIN_GATE_SHARDS)]
    verdict = "OK" if ratio >= MIN_SHARD_SPEEDUP else "REGRESSION"
    print(
        f"shard_gate: recorded ref100k K={MIN_GATE_SHARDS} speedup "
        f"{ratio:.2f}x (bar >= {MIN_SHARD_SPEEDUP}x) — {verdict}"
    )
    if ratio < MIN_SHARD_SPEEDUP:
        failed = True

    # Fresh runs in clean interpreters, same protocol as the recording.
    from benchmarks.shard_bench import _measure_subprocess

    fresh = {k: _measure_subprocess("gate", k) for k in (1, MIN_GATE_SHARDS)}
    for key in ("total_flowtime", "events", "copies_launched"):
        values = {
            "recorded": gate_runs[1][key],
            "fresh K=1": fresh[1][key],
            f"fresh K={MIN_GATE_SHARDS}": fresh[MIN_GATE_SHARDS][key],
        }
        if len(set(map(repr, values.values()))) != 1:
            print(f"shard_gate: {key} diverged — {values!r} — IDENTITY REGRESSION")
            failed = True

    recorded_k = gate_runs[MIN_GATE_SHARDS]
    rate = recorded_k["events_per_sec"] / fresh[MIN_GATE_SHARDS]["events_per_sec"]
    verdict = "OK" if rate <= MAX_SLOWDOWN else "REGRESSION"
    print(
        f"shard_gate: recorded {recorded_k['events_per_sec']:.1f} ev/s at "
        f"K={MIN_GATE_SHARDS}, fresh "
        f"{fresh[MIN_GATE_SHARDS]['events_per_sec']:.1f} ev/s "
        f"({rate:.2f}x slower) — {verdict}"
    )
    if rate > MAX_SLOWDOWN:
        failed = True
    return failed


def check_overhead() -> bool:
    """The two hot-path microbenchmarks.  Returns True on failure."""
    checks = [
        ("overhead_priorities", measure_priorities_ms),
        ("overhead_schedule_pass", measure_schedule_pass_ms),
    ]
    failed = False
    for figure, measure in checks:
        recorded = recorded_mean_ms(figure)
        if recorded is None:
            print(f"{figure}: no recorded baseline — run the overhead bench first")
            continue
        fresh = measure()
        ratio = fresh / recorded
        verdict = "OK" if ratio <= MAX_SLOWDOWN else "REGRESSION"
        print(
            f"{figure}: recorded {recorded:.2f} ms, fresh {fresh:.2f} ms "
            f"({ratio:.2f}x) — {verdict}"
        )
        if ratio > MAX_SLOWDOWN:
            failed = True
    return failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate",
        choices=("all", "overhead", "engine", "ingest", "shard"),
        default="all",
        help="which subsystem's regression gate to run (default: all)",
    )
    args = parser.parse_args(argv)

    failed = False
    if args.gate in ("all", "overhead") and check_overhead():
        failed = True
    if args.gate in ("all", "engine") and check_engine_gate():
        failed = True
    if args.gate in ("all", "ingest") and check_ingest_gate():
        failed = True
    if args.gate in ("all", "shard") and check_shard_gate():
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
