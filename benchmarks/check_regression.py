"""Performance regression gate for the scheduling hot path.

Re-measures the two overhead benchmarks (priority recompute at 1K jobs /
30K servers; one full DollyMP schedule pass on the 30-node testbed)
and compares against the means recorded in ``benchmarks/results/`` by
the last ``pytest benchmarks/test_overhead.py`` run.  Fails (exit 1) if
either measurement regressed by more than 2x — generous enough to ride
out machine noise, tight enough to catch an accidentally de-vectorized
hot path.

Run it as::

    python -m benchmarks.check_regression

Regenerate the recorded baselines with::

    PYTHONPATH=src python -m pytest benchmarks/test_overhead.py
"""

from __future__ import annotations

import re
import sys
import time

from repro.cluster.heterogeneity import paper_cluster_30_nodes, trace_sim_cluster
from repro.core.online import DollyMPScheduler
from repro.core.transient import compute_priorities
from repro.core.volume import measure_job
from repro.sim.engine import SimulationEngine
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs

from benchmarks.conftest import RESULTS_DIR, SEED

#: Fail when a fresh mean exceeds recorded mean by more than this factor.
MAX_SLOWDOWN = 2.0

_MEAN_RE = re.compile(r"mean ([0-9.]+) ms")


def recorded_mean_ms(figure: str) -> float | None:
    """Recorded mean from ``benchmarks/results/<figure>.txt`` (ms)."""
    path = RESULTS_DIR / f"{figure}.txt"
    if not path.exists():
        return None
    match = _MEAN_RE.search(path.read_text())
    return float(match.group(1)) if match else None


def measure_priorities_ms(rounds: int = 5) -> float:
    """Same protocol as ``test_priority_recompute_1k_jobs_30k_machines``."""
    total = trace_sim_cluster(30_000, seed=SEED).total_capacity
    jobs = jobs_from_specs(
        GoogleTraceGenerator(seed=SEED).generate(1_000, mean_interarrival=0.0)
    )
    measures = [measure_job(j, total, r=1.5) for j in jobs]
    compute_priorities(measures)  # warmup
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        compute_priorities(measures)
        times.append(time.perf_counter() - t0)
    return 1e3 * sum(times) / rounds


def measure_schedule_pass_ms(rounds: int = 3) -> float:
    """Same protocol as ``test_schedule_pass_on_testbed`` (pedantic
    rounds on one stateful engine: first pass fills the cluster, later
    passes are the steady-state clone-only regime)."""
    jobs = jobs_from_specs(
        GoogleTraceGenerator(seed=SEED, mean_theta=60.0).generate(
            40, mean_interarrival=0.0
        )
    )
    sched = DollyMPScheduler(max_clones=2)
    engine = SimulationEngine(
        paper_cluster_30_nodes(), sched, jobs, seed=SEED, max_time=1e9
    )
    for job in engine.jobs:
        engine.active_jobs[job.job_id] = job
    sched.recompute_priorities(engine.view)
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        sched.schedule(engine.view)
        times.append(time.perf_counter() - t0)
    return 1e3 * sum(times) / rounds


def main() -> int:
    checks = [
        ("overhead_priorities", measure_priorities_ms),
        ("overhead_schedule_pass", measure_schedule_pass_ms),
    ]
    failed = False
    for figure, measure in checks:
        recorded = recorded_mean_ms(figure)
        if recorded is None:
            print(f"{figure}: no recorded baseline — run the overhead bench first")
            continue
        fresh = measure()
        ratio = fresh / recorded
        verdict = "OK" if ratio <= MAX_SLOWDOWN else "REGRESSION"
        print(
            f"{figure}: recorded {recorded:.2f} ms, fresh {fresh:.2f} ms "
            f"({ratio:.2f}x) — {verdict}"
        )
        if ratio > MAX_SLOWDOWN:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
