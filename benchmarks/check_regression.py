"""Performance regression gate for the scheduling hot path.

Re-measures the two overhead benchmarks (priority recompute at 1K jobs /
30K servers; one full DollyMP schedule pass on the 30-node testbed)
plus the end-to-end engine throughput gate (the ``gate`` config of
``benchmarks/engine_bench``) and the trace-ingestion gate (the ``gate``
config of ``benchmarks/ingest_bench``), comparing against the recorded
baselines — the overhead means in ``benchmarks/results/<figure>.txt``,
the engine numbers in ``benchmarks/results/BENCH_engine.json`` and the
ingestion numbers in ``benchmarks/results/BENCH_ingest.json``.
Fails (exit 1) if any measurement regressed by more than 2x — generous
enough to ride out machine noise, tight enough to catch an accidentally
de-vectorized hot path, a de-batched event loop or a de-streamed
ingestion pass.

The engine check also asserts the fresh run's ``total_flowtime`` equals
the recorded one bit-for-bit, and the ingest check does the same for
job/task yield: both subsystems' contract is *faster, not different*,
so a drift is a correctness regression even at blazing speed.

Run it as::

    python -m benchmarks.check_regression                 # every gate
    python -m benchmarks.check_regression --gate ingest   # one subsystem

Regenerate the recorded baselines with::

    PYTHONPATH=src python -m pytest benchmarks/test_overhead.py
    PYTHONPATH=src python -m benchmarks.engine_bench --write-baseline
    PYTHONPATH=src python -m benchmarks.ingest_bench --write-baseline
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time

from repro.cluster.heterogeneity import paper_cluster_30_nodes, trace_sim_cluster
from repro.core.online import DollyMPScheduler
from repro.core.transient import compute_priorities
from repro.core.volume import measure_job
from repro.sim.engine import SimulationEngine
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs

from benchmarks.conftest import RESULTS_DIR, SEED

#: Fail when a fresh mean exceeds recorded mean by more than this factor.
MAX_SLOWDOWN = 2.0

_MEAN_RE = re.compile(r"mean ([0-9.]+) ms")


def recorded_mean_ms(figure: str) -> float | None:
    """Recorded mean from ``benchmarks/results/<figure>.txt`` (ms)."""
    path = RESULTS_DIR / f"{figure}.txt"
    if not path.exists():
        return None
    match = _MEAN_RE.search(path.read_text())
    return float(match.group(1)) if match else None


def measure_priorities_ms(rounds: int = 5) -> float:
    """Same protocol as ``test_priority_recompute_1k_jobs_30k_machines``."""
    total = trace_sim_cluster(30_000, seed=SEED).total_capacity
    jobs = jobs_from_specs(
        GoogleTraceGenerator(seed=SEED).generate(1_000, mean_interarrival=0.0)
    )
    measures = [measure_job(j, total, r=1.5) for j in jobs]
    compute_priorities(measures)  # warmup
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        compute_priorities(measures)
        times.append(time.perf_counter() - t0)
    return 1e3 * sum(times) / rounds


def measure_schedule_pass_ms(rounds: int = 3) -> float:
    """Same protocol as ``test_schedule_pass_on_testbed`` (pedantic
    rounds on one stateful engine: first pass fills the cluster, later
    passes are the steady-state clone-only regime)."""
    jobs = jobs_from_specs(
        GoogleTraceGenerator(seed=SEED, mean_theta=60.0).generate(
            40, mean_interarrival=0.0
        )
    )
    sched = DollyMPScheduler(max_clones=2)
    engine = SimulationEngine(
        paper_cluster_30_nodes(), sched, jobs, seed=SEED, max_time=1e9
    )
    for job in engine.jobs:
        engine.active_jobs[job.job_id] = job
    sched.recompute_priorities(engine.view)
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        sched.schedule(engine.view)
        times.append(time.perf_counter() - t0)
    return 1e3 * sum(times) / rounds


def recorded_engine_gate() -> dict | None:
    """The ``gate``-config record from ``BENCH_engine.json`` (or None)."""
    from benchmarks.engine_bench import BASELINE_PATH

    if not BASELINE_PATH.exists():
        return None
    runs = json.loads(BASELINE_PATH.read_text()).get("measured", {}).get("runs", [])
    for run in runs:
        if run.get("config") == "gate" and run.get("mode") == "current":
            return run
    return None


def check_engine_gate() -> bool:
    """End-to-end engine throughput + identity check.  Returns True on
    failure.  Throughput uses the same 2x slack as the overhead checks
    (events/sec is a rate, so the comparison inverts); flowtime must
    match the baseline exactly — the batched engine promises identical
    results, so any drift is a correctness bug, not noise."""
    recorded = recorded_engine_gate()
    if recorded is None:
        print(
            "engine_gate: no recorded baseline — run "
            "`python -m benchmarks.engine_bench --write-baseline` first"
        )
        return False
    # A fresh interpreter, not in-process: the overhead checks above have
    # already consumed job ids from the global counter, and the recorded
    # baseline was measured in a clean process.
    from benchmarks.engine_bench import _measure_subprocess

    fresh = _measure_subprocess("gate", "current")
    failed = False
    ratio = recorded["events_per_sec"] / fresh["events_per_sec"]
    verdict = "OK" if ratio <= MAX_SLOWDOWN else "REGRESSION"
    print(
        f"engine_gate: recorded {recorded['events_per_sec']:.1f} ev/s, "
        f"fresh {fresh['events_per_sec']:.1f} ev/s ({ratio:.2f}x slower) — {verdict}"
    )
    if ratio > MAX_SLOWDOWN:
        failed = True
    for key in ("total_flowtime", "events", "copies_launched"):
        if fresh[key] != recorded[key]:
            print(
                f"engine_gate: {key} drifted — recorded {recorded[key]!r}, "
                f"fresh {fresh[key]!r} — IDENTITY REGRESSION"
            )
            failed = True
    return failed


def recorded_ingest_gate() -> dict | None:
    """The ``gate``-config record from ``BENCH_ingest.json`` (or None)."""
    from benchmarks.ingest_bench import BASELINE_PATH

    if not BASELINE_PATH.exists():
        return None
    runs = json.loads(BASELINE_PATH.read_text()).get("measured", {}).get("runs", [])
    for run in runs:
        if run.get("config") == "gate":
            return run
    return None


def check_ingest_gate() -> bool:
    """Trace-ingestion throughput + memory + yield check.  Returns True
    on failure.  Rows/sec uses the same 2x slack as every other rate;
    peak RSS gets the same slack (a streaming pipeline that starts
    buffering shows up as a multiple, not a few percent); the job/task
    yield must match the baseline exactly — ingestion of a fixed fixture
    is deterministic by contract."""
    recorded = recorded_ingest_gate()
    if recorded is None:
        print(
            "ingest_gate: no recorded baseline — run "
            "`python -m benchmarks.ingest_bench --write-baseline` first"
        )
        return False
    from benchmarks.ingest_bench import _measure_subprocess

    fresh = _measure_subprocess("gate")
    failed = False
    ratio = recorded["rows_per_sec"] / fresh["rows_per_sec"]
    verdict = "OK" if ratio <= MAX_SLOWDOWN else "REGRESSION"
    print(
        f"ingest_gate: recorded {recorded['rows_per_sec']:.1f} rows/s, "
        f"fresh {fresh['rows_per_sec']:.1f} rows/s ({ratio:.2f}x slower) — {verdict}"
    )
    if ratio > MAX_SLOWDOWN:
        failed = True
    rss_ratio = fresh["peak_rss_mb"] / recorded["peak_rss_mb"]
    verdict = "OK" if rss_ratio <= MAX_SLOWDOWN else "REGRESSION"
    print(
        f"ingest_gate: recorded {recorded['peak_rss_mb']:.1f} MB peak RSS, "
        f"fresh {fresh['peak_rss_mb']:.1f} MB ({rss_ratio:.2f}x) — {verdict}"
    )
    if rss_ratio > MAX_SLOWDOWN:
        failed = True
    for key in ("rows", "jobs", "tasks"):
        if fresh[key] != recorded[key]:
            print(
                f"ingest_gate: {key} drifted — recorded {recorded[key]!r}, "
                f"fresh {fresh[key]!r} — IDENTITY REGRESSION"
            )
            failed = True
    return failed


def check_overhead() -> bool:
    """The two hot-path microbenchmarks.  Returns True on failure."""
    checks = [
        ("overhead_priorities", measure_priorities_ms),
        ("overhead_schedule_pass", measure_schedule_pass_ms),
    ]
    failed = False
    for figure, measure in checks:
        recorded = recorded_mean_ms(figure)
        if recorded is None:
            print(f"{figure}: no recorded baseline — run the overhead bench first")
            continue
        fresh = measure()
        ratio = fresh / recorded
        verdict = "OK" if ratio <= MAX_SLOWDOWN else "REGRESSION"
        print(
            f"{figure}: recorded {recorded:.2f} ms, fresh {fresh:.2f} ms "
            f"({ratio:.2f}x) — {verdict}"
        )
        if ratio > MAX_SLOWDOWN:
            failed = True
    return failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate",
        choices=("all", "overhead", "engine", "ingest"),
        default="all",
        help="which subsystem's regression gate to run (default: all)",
    )
    args = parser.parse_args(argv)

    failed = False
    if args.gate in ("all", "overhead") and check_overhead():
        failed = True
    if args.gate in ("all", "engine") and check_engine_gate():
        failed = True
    if args.gate in ("all", "ingest") and check_ingest_gate():
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
