"""Ablation: online learning of straggler-prone servers (future work).

The paper's conclusion proposes applying online learning to "quickly
identify those servers that can easily lead to stragglers".  We built
that extension (``repro.core.server_learning``); this bench quantifies
it on a cluster where a quarter of the servers are 4× slow — the
tracker must discover them from completed-copy durations alone.
"""

from repro.analysis.report import format_table
from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.core.online import DollyMPScheduler
from repro.core.server_learning import LearningDollyMPScheduler
from repro.resources import Resources
from repro.sim.runner import run_simulation
from repro.workload.mapreduce import wordcount_job

from benchmarks.conftest import SEED, run_once, save_figure_text

NUM_SERVERS = 16
NUM_SLOW = 4
NUM_JOBS = 60


def make_cluster():
    servers = []
    for i in range(NUM_SERVERS):
        slow = 4.0 if i < NUM_SLOW else 1.0
        servers.append(Server(i, Resources.of(8, 16), slowdown=slow))
    return Cluster(servers)


def make_jobs():
    return [
        wordcount_job(2.0, arrival_time=25.0 * i, job_id=i, cv=0.4)
        for i in range(NUM_JOBS)
    ]


def run_ablation():
    out = {}
    for name, sched in {
        "DollyMP^2": DollyMPScheduler(max_clones=2),
        "LearningDollyMP^2": LearningDollyMPScheduler(max_clones=2, bias=2.0),
    }.items():
        out[name] = run_simulation(
            make_cluster(), sched, make_jobs(), seed=SEED, max_time=1e7
        )
    return out


def test_ablation_learning(benchmark):
    results = run_once(benchmark, run_ablation)
    rows = [
        [name, float(r.mean_running_time), float(r.total_flowtime), r.clones_launched]
        for name, r in results.items()
    ]
    save_figure_text(
        "ablation_learning",
        format_table(["scheduler", "mean_runtime", "total_flowtime", "clones"], rows),
    )
    plain = results["DollyMP^2"]
    learned = results["LearningDollyMP^2"]
    # Learning which quarter of the cluster is slow must pay off.
    assert learned.mean_running_time < plain.mean_running_time
    assert learned.total_flowtime < 1.02 * plain.total_flowtime
