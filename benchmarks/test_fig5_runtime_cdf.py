"""Fig. 5 — running-time CDFs in the heavily-loaded regime.

500 PageRank jobs (a) / 500 WordCount jobs (b) arriving at high rate.
Paper's finding: once scheduled, jobs complete much faster under
DollyMP — "all the jobs can complete within 200 seconds after they are
scheduled under DollyMP.  However, only 80% of jobs can finish within
200 seconds under Tetris."  We assert the CDF-domination shape: at the
runtime where Tetris reaches 80%, DollyMP² has (nearly) every job done.
"""

from repro.analysis.cdf import fraction_below, percentile
from repro.analysis.report import cdf_table

from benchmarks.conftest import run_once, save_figure_text


def test_fig5_runtime_cdfs(benchmark, heavy_load_runs):
    results = run_once(benchmark, lambda: heavy_load_runs)

    text_parts = []
    for app in ("pagerank", "wordcount"):
        series = {n: r.running_times() for n, r in results[app].items()}
        points = sorted(
            {percentile(v, q) for v in series.values() for q in (0.5, 0.8, 0.95)}
        )
        text_parts.append(f"[{app}]\n" + cdf_table(series, points, label="runtime_s"))
    save_figure_text("fig5_runtime_cdf", "\n\n".join(text_parts))

    # PageRank (deep DAGs): the strong separation of Fig. 5a — once
    # scheduled, DollyMP jobs finish far faster.
    series = {n: r.running_times() for n, r in results["pagerank"].items()}
    x80 = percentile(series["Tetris"], 0.8)
    assert fraction_below(series["DollyMP^2"], x80) >= 0.95
    d2 = results["pagerank"]["DollyMP^2"].mean_running_time
    assert d2 < 0.8 * results["pagerank"]["Tetris"].mean_running_time
    assert d2 < 0.8 * results["pagerank"]["Capacity"].mean_running_time

    # WordCount (short 2-phase jobs): runtimes are close across policies
    # at this scale — assert DollyMP² never loses and weakly dominates
    # at the Tetris 80th-percentile read (Fig. 5b's milder separation).
    series = {n: r.running_times() for n, r in results["wordcount"].items()}
    x80 = percentile(series["Tetris"], 0.8)
    assert fraction_below(series["DollyMP^2"], x80) >= 0.78
    d2 = results["wordcount"]["DollyMP^2"].mean_running_time
    assert d2 <= 1.02 * results["wordcount"]["Tetris"].mean_running_time
    assert d2 <= 1.02 * results["wordcount"]["Capacity"].mean_running_time
