"""Sec. 4.1 — "When cloning is helpful?"

Regenerates the three-scheme comparison (flow₁/flow₂/flow₃) in closed
form and validates it against a Monte-Carlo simulation of the same
instance (N geometric-demand single-task jobs with Pareto task times on
a unit-capacity cluster).  Paper conclusion: flow₃ < flow₁ < flow₂ once
N > 2α − 1 — a small number of clones for small jobs wins even in an
overloaded cluster.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.theory import (
    cloning_helps_condition,
    flow_schedule_all_then_clone_smallest,
    flow_serial_maximal_cloning,
    flow_two_clones_smallest_first,
)
from repro.workload.distributions import ParetoType1
from repro.workload.speedup import ParetoSpeedup

from benchmarks.conftest import run_once, save_figure_text

ALPHA = 2.0
N_RANGE = range(4, 17, 2)


def closed_forms():
    h = ParetoSpeedup(ALPHA)
    rows = []
    for n in N_RANGE:
        rows.append(
            (
                n,
                flow_schedule_all_then_clone_smallest(n, h),
                flow_serial_maximal_cloning(n, h),
                flow_two_clones_smallest_first(n, h),
            )
        )
    return rows


def monte_carlo_flow3(n: int, samples: int = 2_000, seed: int = 1) -> float:
    """Simulate scheme 3 (two copies each, jobs 2..N first, then job 1)
    and return the mean total flowtime — validating that flow₃'s closed
    form is indeed an upper bound of the simulated scheme."""
    rng = np.random.default_rng(seed)
    dist = ParetoType1.from_moments(1.0, 1.0)  # unit-mean, heavy tailed
    totals = np.empty(samples)
    for s in range(samples):
        # Jobs 2..N run in parallel (their total demand Σ 2^-j ≤ 1/2,
        # doubled by cloning ≤ 1): completion = min of 2 draws each.
        comp = [
            min(dist.sample(rng), dist.sample(rng)) for _ in range(n - 1)
        ]
        t_small = max(comp) if comp else 0.0
        # Job 1 (demand 1/2, two copies fill the machine) runs after the
        # small jobs; completes at t_small + min of 2 draws.
        j1 = t_small + min(dist.sample(rng), dist.sample(rng))
        totals[s] = sum(comp) + j1
    return float(totals.mean())


def test_sec41_cloning_analysis(benchmark):
    rows = run_once(benchmark, closed_forms)

    table = format_table(
        ["N", "flow1_all_then_clone", "flow2_serial_max_clone", "flow3_two_clones"],
        [[n, f1, f2, f3] for n, f1, f2, f3 in rows],
    )
    save_figure_text("sec41_analysis", table)

    for n, f1, f2, f3 in rows:
        assert cloning_helps_condition(n, ALPHA)
        assert f3 < f1 < f2, f"ordering broken at N={n}"

    # Monte-Carlo cross-check at one N: the closed-form flow₃ upper
    # bound dominates the simulated scheme-3 mean.
    n = 8
    h = ParetoSpeedup(ParetoType1.from_moments(1.0, 1.0).alpha)
    simulated = monte_carlo_flow3(n)
    bound = (n + 1) / h(2)
    assert simulated <= bound * 1.05
