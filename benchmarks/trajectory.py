"""Append-only JSONL trajectory records shared by the nightly benches.

One tiny helper so every ``--append`` path behaves identically — in
particular against a trajectory file whose last line was truncated by a
crash or full disk: appending straight after truncated bytes would fuse
the new record onto the torn line, corrupting *both*.  The helper seals
a torn tail with a newline first, so the damage stays confined to the
already-lost record and every append lands on its own line.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["append_jsonl"]


def append_jsonl(path: str | Path, record: dict) -> str:
    """Append ``record`` as one JSONL line to ``path``; returns the line.

    Creates parent directories and the file as needed.  If the file ends
    mid-line (no trailing newline — a truncated last record), a newline
    is written first so the new record starts on a fresh line instead of
    concatenating onto the torn one.
    """
    line = json.dumps(record, sort_keys=True)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a+b") as fh:
        fh.seek(0, 2)
        if fh.tell() > 0:
            fh.seek(-1, 2)
            if fh.read(1) != b"\n":
                fh.write(b"\n")
        fh.write(line.encode("utf-8") + b"\n")
    return line
