"""Fig. 9 — what is the optimal number of clones per task?

The paper tunes the max clone count from 1 to 3 on the trace simulator:
"increasing the number of clones from two to three does not help much.
Comparing to DollyMP¹, DollyMP² helps more than 30% of jobs to reduce
the job flowtime by 20%.  However, DollyMP³ only leads to another 5% of
jobs achieving the same level of reduction ... and results in ... total
resource usage 15% higher than DollyMP²."

Asserted shape: diminishing returns — the 2→3 improvement is a small
fraction of the 1→2 improvement, while resource usage keeps growing.
"""

import numpy as np

from repro.analysis.report import format_table, ratio_cdf

from benchmarks.conftest import run_once, save_figure_text


def test_fig9_clone_count(benchmark, trace_runs):
    results = run_once(benchmark, lambda: trace_runs)

    d0 = results["DollyMP^0"]
    variants = {k: results[f"DollyMP^{k}"] for k in (1, 2, 3)}

    rows = []
    for k, res in variants.items():
        ratios = ratio_cdf(res, d0, metric="flowtime")
        rows.append(
            [
                f"DollyMP^{k}",
                float(res.mean_flowtime),
                float(np.mean(ratios <= 0.8)),  # jobs ≥20% faster than no-clone
                float(res.total_usage),
                res.clones_launched,
            ]
        )
    table = format_table(
        ["variant", "mean_flowtime", "jobs≥20%faster", "total_usage", "clones"], rows
    )
    save_figure_text("fig9_clone_count", table)

    f1 = variants[1].mean_flowtime
    f2 = variants[2].mean_flowtime
    f3 = variants[3].mean_flowtime
    # More clones never hurt much, and 2 beats 1.
    assert f2 <= f1 * 1.02
    # Diminishing returns: the 2→3 gain is clearly smaller than the 1→2
    # gain (paper: only another 5% of jobs improve).
    gain_12 = max(f1 - f2, 0.0)
    gain_23 = max(f2 - f3, 0.0)
    assert gain_23 <= max(0.75 * gain_12, 0.02 * f2)
    # Resource usage grows with the clone cap, and DollyMP³ costs
    # noticeably more than DollyMP² (paper: +15%).
    u1, u2, u3 = (variants[k].total_usage for k in (1, 2, 3))
    assert u1 <= u2 * 1.01 and u2 <= u3 * 1.01
    assert u3 >= 1.05 * u2
