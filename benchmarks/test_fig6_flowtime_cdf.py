"""Fig. 6 — flowtime CDFs in the heavily-loaded regime.

Same runs as Fig. 5 but on flowtime (arrival → completion), which is
dominated by queueing.  Paper's finding: "most jobs finish within 6000
seconds since their arrival under DollyMP.  By contrast, only 60% (45%)
of jobs can complete within 6000 seconds under Tetris (Capacity
scheduler)" — i.e. at the flowtime where DollyMP² has ~90% of jobs
done, Tetris and Capacity trail, Capacity worst.
"""

from repro.analysis.cdf import fraction_below, percentile
from repro.analysis.report import cdf_table

from benchmarks.conftest import run_once, save_figure_text


def test_fig6_flowtime_cdfs(benchmark, heavy_load_runs):
    results = run_once(benchmark, lambda: heavy_load_runs)

    text_parts = []
    for app in ("pagerank", "wordcount"):
        series = {n: r.flowtimes() for n, r in results[app].items()}
        points = sorted(
            {percentile(v, q) for v in series.values() for q in (0.5, 0.8, 0.95)}
        )
        text_parts.append(f"[{app}]\n" + cdf_table(series, points, label="flowtime_s"))
    save_figure_text("fig6_flowtime_cdf", "\n\n".join(text_parts))

    # PageRank: tail read (the paper's "most jobs within 6000 s" claim) —
    # at DollyMP²'s 90th percentile both baselines trail clearly.
    series = {n: r.flowtimes() for n, r in results["pagerank"].items()}
    x90 = percentile(series["DollyMP^2"], 0.9)
    assert fraction_below(series["Tetris"], x90) < 0.9
    assert fraction_below(series["Capacity"], x90) < 0.9

    # WordCount: body read — FIFO's head-of-line blocking shows in the
    # distribution body (its tail recovers because service is steady), so
    # the separation is read at DollyMP²'s median: both baselines have
    # completed clearly fewer jobs by then.
    series = {n: r.flowtimes() for n, r in results["wordcount"].items()}
    x50 = percentile(series["DollyMP^2"], 0.5)
    assert fraction_below(series["Tetris"], x50) < 0.45
    assert fraction_below(series["Capacity"], x50) < 0.45
    # And DollyMP² wins on the mean in both experiments.
    for app in ("pagerank", "wordcount"):
        means = {n: r.mean_flowtime for n, r in results[app].items()}
        assert means["DollyMP^2"] < means["Tetris"], app
        assert means["DollyMP^2"] < means["Capacity"], app
