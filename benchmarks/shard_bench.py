"""Sharded-engine scaling benchmark (events/sec, tasks-placed/sec, RSS).

Runs the full simulation loop on trace-simulator clusters at 30K and
100K servers with the engine's server sharding at K ∈ {1, 4, 8} and
reports throughput plus peak RSS per (config, K).  K=1 is the plain
single-heap engine — the merge barrier guarantees every K produces
bit-identical ``SimulationResult`` values (the whole point of DESIGN.md
§5.10), so events/sec ratios are pure wall-time ratios over identical
work; the measurement *asserts* that identity and refuses to write a
baseline from diverging runs.

The workload is an arrival burst: thousands of small jobs landing
twenty per second on a mostly-idle cluster.  That is the regime the
shard bounds target — every scheduling pass carries a deep queue of
candidate rows over 100K servers, so the blocked placement kernels
(per-shard availability bounds pruning whole blocks) dominate the
profile, exactly as real-trace replay at cluster scale does.

Usage::

    python -m benchmarks.shard_bench                      # all configs
    python -m benchmarks.shard_bench --config ref100k --shards 4 --json
    python -m benchmarks.shard_bench --append <path>      # trajectory record
    python -m benchmarks.shard_bench --write-baseline     # refresh BENCH_shard.json

Each (config, K) measurement runs in a subprocess so peak-RSS numbers
(``ru_maxrss`` is process-lifetime-monotonic) stay per-run and the
process-global job-id counter starts identically for every run (id
parity is what makes the cross-K identity assertion byte-exact).  The
pass/fail enforcement lives in :mod:`benchmarks.check_regression`;
this module only measures.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

__all__ = ["CONFIGS", "SHARD_COUNTS", "IDENTITY_KEYS", "measure_config", "main"]

RESULTS = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS / "BENCH_shard.json"

#: Reference runs.  ``ref100k`` is the 100K-server run the ≥1.5×
#: acceptance criterion (events/sec at K≥4 vs K=1) is judged on;
#: ``ref30k`` tracks the 30K point; ``gate`` is the smaller run the
#: per-commit regression gate re-measures.
CONFIGS: dict[str, dict] = {
    "ref30k": dict(num_servers=30_000, num_jobs=1_200, mean_interarrival=0.05),
    "ref100k": dict(num_servers=100_000, num_jobs=2_000, mean_interarrival=0.05),
    "gate": dict(num_servers=30_000, num_jobs=400, mean_interarrival=0.05),
}

#: Shard counts measured per config (1 is the dense baseline).
SHARD_COUNTS = (1, 4, 8)

#: The sharded K the per-commit gate re-measures against K=1, and the
#: K the ≥1.5× ref100k acceptance ratio is read at.
MIN_GATE_SHARDS = 4

#: Result fields that must be bit-identical across K within a config.
IDENTITY_KEYS = ("total_flowtime", "events", "copies_launched", "simulated_time")

SEED = 2022
SCHEDULE_INTERVAL = 5.0  # the 5-second slots of Sec. 6.3


def _git_head() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def measure_config(name: str, shards: int) -> dict:
    """Run one (config, K) simulation in-process and report throughput."""
    from repro.cluster.heterogeneity import trace_sim_cluster
    from repro.core.online import DollyMPScheduler
    from repro.sim.engine import SimulationEngine
    from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs

    cfg = CONFIGS[name]
    cluster = trace_sim_cluster(cfg["num_servers"], seed=SEED)
    jobs = jobs_from_specs(
        GoogleTraceGenerator(seed=SEED).generate(
            cfg["num_jobs"], mean_interarrival=cfg["mean_interarrival"]
        )
    )
    engine = SimulationEngine(
        cluster,
        DollyMPScheduler(max_clones=2),
        jobs,
        seed=SEED,
        schedule_interval=SCHEDULE_INTERVAL,
        max_time=1e9,
        shards=shards,
    )
    t0 = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - t0
    events = engine.events_processed
    return {
        "config": name,
        "num_servers": cfg["num_servers"],
        "num_jobs": cfg["num_jobs"],
        "shards": shards,
        "wall_s": round(wall, 3),
        "events": int(events),
        "events_per_sec": round(events / wall, 1),
        "copies_launched": result.copies_launched,
        "tasks_placed_per_sec": round(result.copies_launched / wall, 1),
        "simulated_time": result.simulated_time,
        "total_flowtime": result.total_flowtime,
        "peak_rss_mb": round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1),
    }


def _measure_subprocess(name: str, shards: int) -> dict:
    """Measure one (config, K) pair in a fresh interpreter."""
    out = subprocess.run(
        [
            sys.executable,
            "-m",
            "benchmarks.shard_bench",
            "--config",
            name,
            "--shards",
            str(shards),
            "--json",
        ],
        capture_output=True,
        text=True,
        env=dict(os.environ),
        cwd=Path(__file__).resolve().parent.parent,
    )
    if out.returncode != 0:
        raise RuntimeError(
            f"shard_bench subprocess ({name}, K={shards}) failed:\n{out.stderr}"
        )
    return json.loads(out.stdout.splitlines()[-1])


def _assert_identity(runs: list[dict]) -> None:
    """Every K of one config must agree on the identity keys bit-for-bit."""
    base = runs[0]
    for run in runs[1:]:
        for key in IDENTITY_KEYS:
            if run[key] != base[key]:
                raise RuntimeError(
                    f"{run['config']}: K={run['shards']} diverged from "
                    f"K={base['shards']} on {key}: {run[key]!r} != {base[key]!r} "
                    "— the merge barrier is broken; refusing to record"
                )


def measure(configs: tuple[str, ...] = ("ref30k", "ref100k", "gate")) -> dict:
    """Full measurement: every config at every shard count, identity-
    checked, with per-config speedup ratios vs the K=1 baseline."""
    runs: list[dict] = []
    speedups: dict[str, dict[str, float]] = {}
    for name in configs:
        per_config = [_measure_subprocess(name, k) for k in SHARD_COUNTS]
        _assert_identity(per_config)
        runs.extend(per_config)
        base = per_config[0]["events_per_sec"]
        speedups[name] = {
            str(r["shards"]): round(r["events_per_sec"] / base, 2)
            for r in per_config
            if r["shards"] != 1
        }
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": _git_head(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
        "speedups": speedups,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), help="run one config in-process")
    parser.add_argument(
        "--shards", type=int, default=1, help="shard count K for --config (default 1)"
    )
    parser.add_argument("--json", action="store_true", help="print the record as JSON only")
    parser.add_argument(
        "--append", metavar="PATH", help="append a trajectory record to this JSONL file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the measurement to {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)

    if args.config:
        record = measure_config(args.config, args.shards)
        print(json.dumps(record, sort_keys=True))
        return 0

    if args.append:
        # Nightly trajectory: the cheap gate config at K=1 and K=4.
        from benchmarks.trajectory import append_jsonl

        k1 = _measure_subprocess("gate", 1)
        k4 = _measure_subprocess("gate", 4)
        _assert_identity([k1, k4])
        record = {
            "bench": "shard",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "commit": _git_head(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "events_per_sec_k1": k1["events_per_sec"],
            "events_per_sec_k4": k4["events_per_sec"],
            "speedup_k4": round(k4["events_per_sec"] / k1["events_per_sec"], 2),
            "peak_rss_mb_k4": k4["peak_rss_mb"],
        }
        line = append_jsonl(args.append, record)
        print(f"appended to {args.append}: {line}")
        return 0

    record = measure()
    if args.write_baseline:
        baseline = {}
        if BASELINE_PATH.exists():
            baseline = json.loads(BASELINE_PATH.read_text())
        baseline["measured"] = record
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
