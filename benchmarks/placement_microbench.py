"""Placement microbenchmark for the scheduled bench-trajectory job.

Measures the two placement kernels the simulator leans on — vectorized
``best_fit_server`` queries against the availability mirror, and one
full DollyMP schedule pass on the paper's 30-node testbed — and emits
one JSON record.  The CI cron job appends the record to
``benchmarks/results/trajectory.jsonl`` and uploads it, building a
wall-time trajectory of the hot path across commits::

    python -m benchmarks.placement_microbench                 # print record
    python -m benchmarks.placement_microbench --append <path> # append JSONL

Unlike :mod:`benchmarks.check_regression` (a pass/fail gate against a
recorded baseline), this module never fails on slow measurements — it
only records them.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.cluster.heterogeneity import paper_cluster_30_nodes, trace_sim_cluster
from repro.core.online import DollyMPScheduler
from repro.sim.engine import SimulationEngine
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs

from benchmarks.conftest import SEED

__all__ = ["measure", "main"]


def _git_head() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def measure_best_fit_us(num_servers: int = 10_000, queries: int = 2_000) -> float:
    """Mean microseconds per vectorized ``best_fit_server`` query."""
    cluster = trace_sim_cluster(num_servers, seed=SEED)
    jobs = jobs_from_specs(GoogleTraceGenerator(seed=SEED).generate(50))
    demands = [j.phases[0].demand for j in jobs]
    cluster.best_fit_server(demands[0])  # warmup
    t0 = time.perf_counter()
    for i in range(queries):
        cluster.best_fit_server(demands[i % len(demands)])
    return 1e6 * (time.perf_counter() - t0) / queries


def measure_schedule_pass_ms(rounds: int = 3) -> float:
    """Mean milliseconds per DollyMP schedule pass on the 30-node testbed
    (same protocol as the regression gate's schedule-pass check)."""
    jobs = jobs_from_specs(
        GoogleTraceGenerator(seed=SEED, mean_theta=60.0).generate(
            40, mean_interarrival=0.0
        )
    )
    sched = DollyMPScheduler(max_clones=2)
    engine = SimulationEngine(
        paper_cluster_30_nodes(), sched, jobs, seed=SEED, max_time=1e9
    )
    for job in engine.jobs:
        engine.active_jobs[job.job_id] = job
    sched.recompute_priorities(engine.view)
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        sched.schedule(engine.view)
        times.append(time.perf_counter() - t0)
    return 1e3 * sum(times) / rounds


def measure() -> dict:
    """One trajectory record (timestamps/host fields are wall-clock —
    this is a benchmark, not simulation logic)."""
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": _git_head(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "best_fit_us": round(measure_best_fit_us(), 3),
        "schedule_pass_ms": round(measure_schedule_pass_ms(), 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--append",
        metavar="PATH",
        help="append the record to this JSONL file (created if missing)",
    )
    args = parser.parse_args(argv)
    record = measure()
    if args.append:
        from benchmarks.trajectory import append_jsonl

        line = append_jsonl(args.append, record)
        print(f"appended to {args.append}: {line}")
    else:
        print(json.dumps(record, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
