"""Fig. 8 — trace-driven simulation: per-job duration and resource-usage
ratios, DollyMP² versus Tetris/DRF.

The paper replays Google traces on a 30K-server simulator with 5-second
scheduling slots and reports:

* (a) CDF of job-duration ratios DollyMP²/Tetris: "at least 40% of jobs
  obtain a reduction by 30% in job flowtime ... and the average speedup
  is 22%";
* (b) CDF of resource-usage ratios DollyMP²/DRF: many jobs double their
  consumption, but because DollyMP clones small jobs the overall extra
  usage stays moderate (paper: +60%); makespan drops (paper: −18%);
* DRF ≈ Tetris at this load.

Scaled-down by default (150 servers / 150 jobs); REPRO_BENCH_SCALE=paper
runs the full size.
"""

import numpy as np

from repro.analysis.cdf import empirical_cdf
from repro.analysis.report import format_table, ratio_cdf

from benchmarks.conftest import run_once, save_figure_text


def test_fig8_trace_ratios(benchmark, trace_runs):
    results = run_once(benchmark, lambda: trace_runs)

    d2, tetris, drf = results["DollyMP^2"], results["Tetris"], results["DRF"]

    dur_ratio = ratio_cdf(d2, tetris, metric="flowtime")
    use_ratio = ratio_cdf(d2, drf, metric="usage")

    x, f = empirical_cdf(dur_ratio)
    qs = [0.1, 0.25, 0.5, 0.75, 0.9]
    rows = [["duration d2/tetris"] + [float(np.quantile(dur_ratio, q)) for q in qs]]
    rows.append(["usage d2/drf"] + [float(np.quantile(use_ratio, q)) for q in qs])
    table = format_table(["ratio"] + [f"p{int(100 * q)}" for q in qs], rows)
    summary = format_table(
        ["metric", "value"],
        [
            ["mean speedup vs Tetris", float(1 - dur_ratio.mean())],
            ["jobs ≥30% faster", float(np.mean(dur_ratio <= 0.7))],
            ["total usage vs DRF", float(d2.total_usage / drf.total_usage)],
            ["makespan vs Tetris", float(d2.makespan / tetris.makespan)],
            ["DRF/Tetris mean flowtime", float(drf.mean_flowtime / tetris.mean_flowtime)],
        ],
    )
    save_figure_text("fig8_trace_ratios", table + "\n\n" + summary)

    # (a) a substantial fraction of jobs sees ≥30% lower flowtime and the
    # average is a clear speedup (paper: 40% of jobs / 22% average).
    assert np.mean(dur_ratio <= 0.7) >= 0.2
    assert dur_ratio.mean() < 0.95
    # (b) many jobs consume more resources under cloning, yet the total
    # stays bounded (paper: +60%; the scaled-down cluster is idler, so
    # cloning is more liberal — we allow up to +150%).
    assert use_ratio.mean() >= 1.0
    assert d2.total_usage <= 2.5 * drf.total_usage
    # Makespan does not regress (paper: −18%).
    assert d2.makespan <= 1.05 * tetris.makespan
