"""Fig. 7 — cumulative total flowtime as jobs arrive over time.

Same runs as Figs. 5/6; the figure plots the accumulated flowtime
against the job arrival index.  Paper's headline: "DollyMP can reduce
the overall job flowtime by nearly 50% (30%) when comparing to the
Capacity scheduler (Tetris)" — our scaled-down reproduction asserts
≥20% against both, with the final totals and the series written out.
"""

import numpy as np

from repro.analysis.report import format_table

from benchmarks.conftest import run_once, save_figure_text


def test_fig7_cumulative_flowtime(benchmark, heavy_load_runs):
    results = run_once(benchmark, lambda: heavy_load_runs)

    text_parts = []
    for app in ("pagerank", "wordcount"):
        rows = []
        series = {}
        for name, res in results[app].items():
            idx, cum = res.cumulative_flowtime_series()
            series[name] = cum
            rows.append([name, float(cum[-1])])
        # Sample the cumulative series at deciles of the job index.
        n = len(next(iter(series.values())))
        sample_idx = [max(1, round(q * n)) - 1 for q in (0.25, 0.5, 0.75, 1.0)]
        table1 = format_table(["scheduler", "total_flowtime"], rows)
        table2 = format_table(
            ["job_index"] + list(series.keys()),
            [
                [i + 1] + [float(series[name][i]) for name in series]
                for i in sample_idx
            ],
        )
        text_parts.append(f"[{app}]\n{table1}\n\n{table2}")
    save_figure_text("fig7_cumulative_flowtime", "\n\n".join(text_parts))

    combined = {
        n: results["pagerank"][n].total_flowtime
        + results["wordcount"][n].total_flowtime
        for n in results["pagerank"]
    }
    # Headline reductions over the whole suite (paper: ~50% vs Capacity,
    # ~30% vs Tetris, ~40% vs DRF — we assert ≥20%/≥25%/strict win).
    assert combined["DollyMP^2"] < 0.8 * combined["Capacity"]
    assert combined["DollyMP^2"] < 0.75 * combined["Tetris"]
    assert combined["DollyMP^2"] < combined["DRF"]
    for app in ("pagerank", "wordcount"):
        total = {n: r.total_flowtime for n, r in results[app].items()}
        # DollyMP² wins each experiment individually.
        assert total["DollyMP^2"] < total["Capacity"], app
        assert total["DollyMP^2"] < total["Tetris"], app
        # The cumulative series is monotone and DollyMP's stays below
        # Capacity's over the last half of arrivals.
        _, cum_d = results[app]["DollyMP^2"].cumulative_flowtime_series()
        _, cum_c = results[app]["Capacity"].cumulative_flowtime_series()
        half = len(cum_d) // 2
        assert np.all(cum_d[half:] <= cum_c[half:]), app
