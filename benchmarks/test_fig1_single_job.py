"""Fig. 1 — running time of a repeated WordCount job.

A 4 GB WordCount job is submitted 8 times, each after the previous one
finishes ("to eliminate the effect of the scheduling policy"), on the
30-node heterogeneous cluster.  The paper's findings, which we assert:

* running times vary a lot under the Capacity scheduler (speculation
  launches backups too late) and under DollyMP⁰;
* DollyMP¹/DollyMP² are far more stable, and DollyMP² cuts the average
  running time by ≈20% versus Capacity.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.schedulers.fifo import CapacityScheduler
from repro.sim.runner import run_simulation
from repro.workload.mapreduce import wordcount_job

from benchmarks.conftest import DEPLOY_CV, SEED, run_once, save_figure_text

NUM_REPEATS = 8
#: Back-to-back submission: gap far exceeding any single job's runtime.
GAP = 2_000.0

SCHEDULERS = {
    "Capacity": lambda: CapacityScheduler(),
    "DollyMP^0": lambda: DollyMPScheduler(max_clones=0),
    "DollyMP^1": lambda: DollyMPScheduler(max_clones=1),
    "DollyMP^2": lambda: DollyMPScheduler(max_clones=2),
}


def jobs():
    return [
        wordcount_job(4.0, arrival_time=i * GAP, job_id=500 + i, cv=DEPLOY_CV)
        for i in range(NUM_REPEATS)
    ]


def run_fig1():
    out = {}
    for name, make in SCHEDULERS.items():
        res = run_simulation(
            paper_cluster_30_nodes(), make(), jobs(), seed=SEED, max_time=1e7
        )
        out[name] = res.running_times()
    return out


def test_fig1_repeated_wordcount(benchmark):
    runtimes = run_once(benchmark, run_fig1)

    rows = []
    for name, times in runtimes.items():
        rows.append(
            [name]
            + [float(t) for t in times]
            + [float(np.mean(times)), float(np.std(times))]
        )
    headers = ["scheduler"] + [f"run{i + 1}" for i in range(NUM_REPEATS)] + ["mean", "std"]
    save_figure_text("fig1_single_job", format_table(headers, rows))

    cap_mean = np.mean(runtimes["Capacity"])
    d0_mean = np.mean(runtimes["DollyMP^0"])
    d2_mean = np.mean(runtimes["DollyMP^2"])
    # DollyMP^0 performs "quite poor ... close to the capacity scheduler".
    assert abs(d0_mean - cap_mean) / cap_mean < 0.35
    # DollyMP^2 reduces the average running time (paper: ≈20%).
    assert d2_mean < 0.92 * cap_mean
    # Cloning stabilizes: DollyMP^2's spread well below Capacity's.
    assert np.std(runtimes["DollyMP^2"]) < np.std(runtimes["Capacity"])
