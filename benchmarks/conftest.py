"""Shared infrastructure for the figure-regeneration benchmarks.

Every bench regenerates one figure of the paper (see DESIGN.md §4): it
runs the figure's workload under the figure's schedulers, prints the
same rows/series the paper plots, writes them to
``benchmarks/results/<figure>.txt`` and asserts the figure's *shape*
(who wins, roughly by what factor).

Scale: the paper's deployment uses 500-job workloads on 328 cores and a
30K-server trace simulator.  The default bench scale is laptop-sized
(same cluster, fewer/smaller jobs at equivalent load); set
``REPRO_BENCH_SCALE=paper`` to run the full-size experiments.

Expensive multi-scheduler runs are cached per session: Figs. 5, 6 and 7
read the same heavy-load runs; Figs. 8, 9 and 11 read the same
trace-simulation suite.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.cluster.heterogeneity import paper_cluster_30_nodes, trace_sim_cluster
from repro.core.online import DollyMPScheduler
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.fifo import CapacityScheduler
from repro.schedulers.graphene import GrapheneScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.runner import run_simulation
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs
from repro.workload.mapreduce import pagerank_job, wordcount_job

RESULTS_DIR = Path(__file__).parent / "results"

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper"

#: Deployment-workload sizing (Sec. 6.2).  The scaled-down default keeps
#: the *load regime* of the paper's heavy experiments — sustained
#: arrival rate above the service rate so queueing dominates flowtime —
#: while shrinking totals to laptop scale.  Inter-arrival gaps are per
#: app because PageRank jobs carry ~3× WordCount's work.
HEAVY_NUM_JOBS = 500 if PAPER_SCALE else 250
HEAVY_GAP = {"pagerank": 20.0, "wordcount": 20.0} if PAPER_SCALE else {
    "pagerank": 1.5,
    "wordcount": 1.2,
}
HEAVY_INPUT_GB = 10.0 if PAPER_SCALE else 4.0
LIGHT_NUM_JOBS = 100 if PAPER_SCALE else 60
LIGHT_INTERARRIVAL = 200.0 if PAPER_SCALE else 60.0
#: Straggler intensity (task-time cv) for the deployment workloads; the
#: testbed sees stragglers up to 8× (Sec. 1), which a fitted Pareto
#: reaches at cv ≈ 0.8-1.0 far more often than at the builder default.
DEPLOY_CV = 0.8

#: Trace-simulation sizing (Sec. 6.3).
TRACE_SERVERS = 30_000 if PAPER_SCALE else 150
TRACE_JOBS = 1_000 if PAPER_SCALE else 150
TRACE_INTERARRIVAL = 20.0 if PAPER_SCALE else 20.0
TRACE_SLOT = 5.0  # "the scheduling interval ... to be 5 seconds"

SEED = 2022


def save_figure_text(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


# ----------------------------------------------------------------------
# Deployment workloads (Sec. 6.2)
# ----------------------------------------------------------------------
def deployment_jobs(app: str, num_jobs: int, interarrival: float) -> list:
    """The paper's workload suite (Sec. 6.2): job sizes "picked uniformly
    at random from the Google traces", realized as PageRank (half big,
    half ~big/10 input) and WordCount jobs whose input sizes follow a
    trace-like heavy-tailed mixture around the nominal big size.
    """
    import numpy as np

    rng = np.random.default_rng(SEED + 77)
    big = HEAVY_INPUT_GB
    jobs = []
    for i in range(num_jobs):
        t = i * interarrival
        jid = 100_000 + i
        if app == "pagerank":
            size = big if i % 2 == 0 else big / 10.0
            jobs.append(
                pagerank_job(size, iterations=3, arrival_time=t, job_id=jid, cv=DEPLOY_CV)
            )
        elif app == "wordcount":
            # Trace-drawn sizes around the nominal with a heavy tail
            # (the Google-trace job-size distribution).
            size = float(np.clip(rng.lognormal(np.log(big), 1.0), big / 8, 4 * big))
            jobs.append(wordcount_job(size, arrival_time=t, job_id=jid, cv=DEPLOY_CV))
        elif app == "mixed":
            if i % 2 == 0:
                size = float(
                    np.clip(rng.lognormal(np.log(big / 2), 1.0), big / 16, 4 * big)
                )
                jobs.append(wordcount_job(size, arrival_time=t, job_id=jid, cv=DEPLOY_CV))
            else:
                size = big if i % 4 == 1 else big / 10.0
                jobs.append(
                    pagerank_job(
                        size, iterations=3, arrival_time=t, job_id=jid, cv=DEPLOY_CV
                    )
                )
        else:
            raise ValueError(f"unknown app {app!r}")
    return jobs


HEAVY_SCHEDULERS = {
    "Capacity": CapacityScheduler,
    "Tetris": TetrisScheduler,
    "DRF": DRFScheduler,
    "DollyMP^0": lambda: DollyMPScheduler(max_clones=0),
    "DollyMP^2": lambda: DollyMPScheduler(max_clones=2),
}


@pytest.fixture(scope="session")
def heavy_load_runs():
    """Heavy-load deployment runs shared by Figs. 5, 6 and 7.

    {app: {scheduler: SimulationResult}} for the PageRank and WordCount
    experiments of Sec. 6.2.2.
    """
    out = {}
    for app in ("pagerank", "wordcount"):
        per = {}
        for name, make in HEAVY_SCHEDULERS.items():
            per[name] = run_simulation(
                paper_cluster_30_nodes(),
                make(),
                deployment_jobs(app, HEAVY_NUM_JOBS, HEAVY_GAP[app]),
                seed=SEED,
                max_time=1e8,
            )
        out[app] = per
    return out


# ----------------------------------------------------------------------
# Trace-driven simulation suite (Sec. 6.3)
# ----------------------------------------------------------------------
TRACE_SCHEDULERS = {
    "Tetris": TetrisScheduler,
    "DRF": DRFScheduler,
    "Carbyne": CarbyneScheduler,
    "Graphene": GrapheneScheduler,
    "DollyMP^0": lambda: DollyMPScheduler(max_clones=0),
    "DollyMP^1": lambda: DollyMPScheduler(max_clones=1),
    "DollyMP^2": lambda: DollyMPScheduler(max_clones=2),
    "DollyMP^3": lambda: DollyMPScheduler(max_clones=3),
}


def trace_jobs(mean_interarrival: float):
    gen = GoogleTraceGenerator(seed=SEED, mean_theta=30.0)
    return jobs_from_specs(gen.generate(TRACE_JOBS, mean_interarrival=mean_interarrival))


def _run_trace_suite(mean_interarrival: float):
    out = {}
    for name, make in TRACE_SCHEDULERS.items():
        out[name] = run_simulation(
            trace_sim_cluster(TRACE_SERVERS, seed=SEED),
            make(),
            trace_jobs(mean_interarrival),
            seed=SEED,
            schedule_interval=TRACE_SLOT,
            max_time=1e8,
        )
    return out


@pytest.fixture(scope="session")
def trace_runs():
    """Moderate-load trace runs (Fig. 8's regime: "the cluster load is
    not high") — slotted scheduling (5 s) on the heterogeneous cluster."""
    return _run_trace_suite(TRACE_INTERARRIVAL)


@pytest.fixture(scope="session")
def trace_runs_heavy():
    """Heavily-loaded trace runs (the regime of Figs. 9 and 11: clones
    compete with queued work, so the δ budget binds).  The 16× arrival
    rate pushes the scaled-down cluster to ≈0.8 utilization."""
    return _run_trace_suite(TRACE_INTERARRIVAL / 16.0)
