"""Trace-ingestion throughput benchmark (rows/sec, peak RSS).

Materializes a deterministic Google-2011 fixture (the gzip-compressed
worst case for the parser) and streams it end-to-end through the
ingestion pipeline — reader, ordering, assembly, demand scaling,
emission — reporting rows/sec, job/task yield and process peak RSS.

Two configs probe the pipeline's two promises:

* ``gate``  — 150K rows; the per-commit throughput gate re-measured by
  :mod:`benchmarks.check_regression`.
* ``ref1m`` — 1M rows; the bounded-memory reference.  Its peak RSS must
  stay flat relative to ``gate`` (``rss_growth`` in the record): peak
  memory is a function of trace *concurrency*, never of row count.

Usage::

    python -m benchmarks.ingest_bench                     # both configs
    python -m benchmarks.ingest_bench --config gate       # one, in-process
    python -m benchmarks.ingest_bench --append <path>     # trajectory record
    python -m benchmarks.ingest_bench --write-baseline    # refresh BENCH_ingest.json

Each config runs in a subprocess so peak-RSS numbers (``ru_maxrss`` is
process-lifetime-monotonic) aren't polluted across configs.  Fixtures
are reused from ``$REPRO_TRACE_FIXTURES`` when set (the CI cache dir),
else generated into a temporary directory.  The pass/fail enforcement
lives in :mod:`benchmarks.check_regression`; this module only measures.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

__all__ = ["CONFIGS", "SCHEMA", "measure_config", "main"]

RESULTS = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS / "BENCH_ingest.json"

#: Fixture sizes.  150K rows keeps the per-commit gate a few seconds;
#: 1M rows is the acceptance reference for the bounded-memory claim.
CONFIGS: dict[str, dict] = {
    "gate": dict(rows=150_000),
    "ref1m": dict(rows=1_000_000),
}

SCHEMA = "google2011"
FIXTURE_SEED = 0


def _git_head() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def measure_config(name: str) -> dict:
    """Materialize one fixture and stream it through the full pipeline.

    Imports live here (not module top) so the subprocess protocol pays
    interpreter+import cost outside the timed region.
    """
    from repro.workload.ingest import materialize, normalize_stream, open_reader

    rows = CONFIGS[name]["rows"]
    fixture_dir = os.environ.get("REPRO_TRACE_FIXTURES")
    tmp = None
    if not fixture_dir:
        tmp = tempfile.TemporaryDirectory()
        fixture_dir = tmp.name
    try:
        path = materialize(
            fixture_dir, rows=rows, seed=FIXTURE_SEED, schemas=(SCHEMA,)
        )[SCHEMA]
        t0 = time.perf_counter()
        jobs = tasks = 0
        for spec in normalize_stream(open_reader(path, SCHEMA)):
            jobs += 1
            tasks += spec.num_tasks()
        wall = time.perf_counter() - t0
    finally:
        if tmp is not None:
            tmp.cleanup()
    return {
        "config": name,
        "schema": SCHEMA,
        "rows": rows,
        "wall_s": round(wall, 3),
        "rows_per_sec": round(rows / wall, 1),
        "jobs": jobs,
        "tasks": tasks,
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
    }


def _measure_subprocess(name: str) -> dict:
    """Measure one config in a fresh interpreter."""
    out = subprocess.run(
        [sys.executable, "-m", "benchmarks.ingest_bench", "--config", name, "--json"],
        capture_output=True,
        text=True,
        cwd=Path(__file__).resolve().parent.parent,
    )
    if out.returncode != 0:
        raise RuntimeError(f"ingest_bench subprocess ({name}) failed:\n{out.stderr}")
    return json.loads(out.stdout.splitlines()[-1])


def measure() -> dict:
    """Both configs plus the RSS-boundedness ratio between them."""
    runs = [_measure_subprocess(name) for name in CONFIGS]
    by_config = {r["config"]: r for r in runs}
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": _git_head(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
        # ~6.7x the rows should cost ~1x the memory; check_regression
        # fails the gate when this ratio creeps toward linear growth.
        "rss_growth": round(
            by_config["ref1m"]["peak_rss_mb"] / by_config["gate"]["peak_rss_mb"], 2
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), help="run one config in-process")
    parser.add_argument("--json", action="store_true", help="print the record as JSON only")
    parser.add_argument(
        "--append", metavar="PATH", help="append a trajectory record to this JSONL file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the measurement to {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)

    if args.config:
        record = measure_config(args.config)
        print(json.dumps(record, sort_keys=True))
        return 0

    record = measure()

    if args.append:
        by_config = {r["config"]: r for r in record["runs"]}
        line = json.dumps(
            {
                "bench": "ingest",
                "timestamp": record["timestamp"],
                "commit": record["commit"],
                "python": record["python"],
                "machine": record["machine"],
                "rows_per_sec": by_config["gate"]["rows_per_sec"],
                "peak_rss_mb": by_config["gate"]["peak_rss_mb"],
                "ref1m_rows_per_sec": by_config["ref1m"]["rows_per_sec"],
                "ref1m_peak_rss_mb": by_config["ref1m"]["peak_rss_mb"],
                "rss_growth": record["rss_growth"],
            },
            sort_keys=True,
        )
        from benchmarks.trajectory import append_jsonl

        line = append_jsonl(args.append, json.loads(line))
        print(f"appended to {args.append}: {line}")
        return 0

    if args.write_baseline:
        baseline = {}
        if BASELINE_PATH.exists():
            baseline = json.loads(BASELINE_PATH.read_text())
        baseline["measured"] = record
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
