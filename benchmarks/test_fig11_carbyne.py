"""Fig. 11 — DollyMP² versus Carbyne (state of the art) under heavy load.

Paper: "nearly 30% of jobs achieve a reduction in job completion time by
more than 80%.  In the meanwhile, around 60% of jobs consume the same
amount of resources under these two schedulers ... DollyMP² reduces the
average job completion time by 25% comparing to Carbyne."  The paper
also explains that Graphene "performs similarly to Tetris for jobs with
sequential dependencies", which is why only Carbyne is plotted — we
verify that equivalence here as well.
"""

import numpy as np

from repro.analysis.report import format_table, ratio_cdf

from benchmarks.conftest import run_once, save_figure_text


def test_fig11_vs_carbyne(benchmark, trace_runs_heavy):
    results = run_once(benchmark, lambda: trace_runs_heavy)

    d2, carbyne = results["DollyMP^2"], results["Carbyne"]
    dur_ratio = ratio_cdf(d2, carbyne, metric="flowtime")
    use_ratio = ratio_cdf(d2, carbyne, metric="usage")

    qs = [0.1, 0.25, 0.5, 0.75, 0.9]
    table = format_table(
        ["ratio"] + [f"p{int(100 * q)}" for q in qs],
        [
            ["duration d2/carbyne"] + [float(np.quantile(dur_ratio, q)) for q in qs],
            ["usage d2/carbyne"] + [float(np.quantile(use_ratio, q)) for q in qs],
        ],
    )
    summary = format_table(
        ["metric", "value"],
        [
            ["mean flowtime reduction", float(1 - d2.mean_flowtime / carbyne.mean_flowtime)],
            ["jobs ≥50% faster", float(np.mean(dur_ratio <= 0.5))],
            ["jobs with ~equal usage", float(np.mean(use_ratio < 1.35))],
        ],
    )
    save_figure_text("fig11_carbyne", table + "\n\n" + summary)

    # DollyMP² beats Carbyne on mean flowtime (paper: ~25%).
    assert d2.mean_flowtime < 0.95 * carbyne.mean_flowtime
    # A meaningful fraction of jobs sees large reductions (paper: ~30%
    # of jobs improve by >80%; we assert ≥10% improve by >50%).
    assert np.mean(dur_ratio <= 0.5) >= 0.1
    # A sizable fraction of jobs consume near-equal resources (never
    # cloned).  The tolerance is wide because, unlike the deployed
    # system, the simulator resamples task durations per run, which
    # alone perturbs per-job usage (see EXPERIMENTS.md).
    assert np.mean(use_ratio < 1.35) >= 0.15

    # Graphene ≈ Tetris for sequential DAGs (Sec. 6.3.2's justification).
    graphene, tetris = results["Graphene"], results["Tetris"]
    assert (
        abs(graphene.total_flowtime - tetris.total_flowtime)
        / tetris.total_flowtime
        < 0.15
    )
