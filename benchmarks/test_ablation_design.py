"""Ablations of DollyMP's design choices (beyond the paper's figures).

DESIGN.md calls out three load-bearing choices in DollyMP's design;
each gets an ablation on a shared heavy mixed workload:

1. **Knapsack priorities vs plain SRPT/SVF** — Algorithm 1's claimed
   contribution is beating both pure orderings it interpolates between.
2. **δ clone budget** — the Sec. 4.1 "clone small jobs within a budget"
   rule; sweeping δ shows unlimited cloning is *not* optimal under load.
3. **Deviation weight r** — e = θ + r·σ penalizes high-variance phases;
   r = 0 ignores variance entirely.
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.schedulers.svf import SVFScheduler
from repro.sim.runner import run_simulation

from benchmarks.conftest import SEED, deployment_jobs, run_once, save_figure_text

NUM_JOBS = 120
GAP = 1.5


def _run(sched):
    return run_simulation(
        paper_cluster_30_nodes(),
        sched,
        deployment_jobs("pagerank", NUM_JOBS, GAP),
        seed=SEED,
        max_time=1e8,
    )


@pytest.fixture(scope="module")
def ablation_runs():
    return {
        "SRPT": _run(SRPTScheduler()),
        "SVF": _run(SVFScheduler()),
        "DollyMP^0": _run(DollyMPScheduler(max_clones=0)),
        "DollyMP^2 δ=0": _run(DollyMPScheduler(max_clones=2, delta=0.0)),
        "DollyMP^2 δ=0.3": _run(DollyMPScheduler(max_clones=2, delta=0.3)),
        "DollyMP^2 δ=1.0": _run(DollyMPScheduler(max_clones=2, delta=1.0)),
        "DollyMP^2 r=0": _run(DollyMPScheduler(max_clones=2, r=0.0)),
        "DollyMP^2 target": _run(
            DollyMPScheduler(max_clones=2, use_category_target=True)
        ),
    }


def test_ablation_design_choices(benchmark, ablation_runs):
    results = run_once(benchmark, lambda: ablation_runs)
    rows = [
        [name, float(r.total_flowtime), float(r.mean_running_time),
         r.clones_launched, float(r.total_usage)]
        for name, r in results.items()
    ]
    save_figure_text(
        "ablation_design",
        format_table(
            ["variant", "total_flowtime", "mean_runtime", "clones", "usage"], rows
        ),
    )

    # 1. Algorithm 1 (DollyMP⁰, no cloning confound) is competitive with
    # both pure orderings it interpolates between (SVF is a strong
    # baseline on this mix, so a 10% band is allowed).
    d0 = results["DollyMP^0"].total_flowtime
    assert d0 <= 1.05 * results["SRPT"].total_flowtime
    assert d0 <= 1.10 * results["SVF"].total_flowtime

    # 2. Clone budget: δ=0 (no clones) loses to δ=0.3, and the budgeted
    # variant is within a few percent of (or better than) unlimited
    # cloning under load; δ=0 really disables cloning.
    f0 = results["DollyMP^2 δ=0"].total_flowtime
    f03 = results["DollyMP^2 δ=0.3"].total_flowtime
    f1 = results["DollyMP^2 δ=1.0"].total_flowtime
    assert f03 < f0
    assert f03 <= 1.10 * f1
    assert results["DollyMP^2 δ=0"].clones_launched == 0

    # 3. Deviation weight: r=1.5 (paper default) performs comparably to
    # r=0 (the variance penalty is not load-bearing at this scale).
    assert f03 <= 1.10 * results["DollyMP^2 r=0"].total_flowtime

    # 4. Cor. 4.1's r_j-targeted cloning is conservative (it clones only
    # when the category deadline demands it) — within 15% of default.
    assert results["DollyMP^2 target"].total_flowtime <= 1.15 * f03
