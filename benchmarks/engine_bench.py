"""End-to-end engine throughput benchmark (events/sec, placements/sec).

Runs the full simulation loop — event queue, DollyMP priorities, clone
fill, action choke point, accounting — on trace-simulator clusters at
30K and 100K servers and reports throughput plus peak RSS.  Two modes:

* ``current`` — the engine as built (batched drains, lazy priorities,
  vectorized knapsack/clone fill);
* ``legacy``  — the same binary with every ``REPRO_SCALAR_*`` /
  ``REPRO_EAGER_PRIORITIES`` escape hatch enabled, reproducing the
  pre-batching scheduler behaviour for an apples-to-apples speedup.

Both modes produce bit-identical ``SimulationResult`` values (that is
the whole point of the escape hatches), so events/sec ratios are pure
wall-time ratios over identical work.

Usage::

    python -m benchmarks.engine_bench                     # all configs, fresh
    python -m benchmarks.engine_bench --config ref30k     # one config, both modes
    python -m benchmarks.engine_bench --append <path>     # trajectory record
    python -m benchmarks.engine_bench --write-baseline    # refresh BENCH_engine.json

Each (config, mode) measurement runs in a subprocess so peak-RSS numbers
(``ru_maxrss`` is process-lifetime-monotonic) aren't polluted across
configs.  The pass/fail enforcement lives in
:mod:`benchmarks.check_regression`; this module only measures.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

__all__ = ["CONFIGS", "LEGACY_ENV", "measure_config", "main"]

RESULTS = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS / "BENCH_engine.json"

#: Reference runs.  ``ref30k`` is the 30K-server run the ≥5× acceptance
#: criterion is judged on; ``gate`` is the smaller run the per-commit
#: regression gate re-measures; ``ref100k`` probes memory at 100K servers.
#:
#: The workload is the dense small-job regime of the Google traces ("95%
#: of jobs are small", Sec. 1): jobs of 1–10 tasks arriving four per
#: second, with ~10-minute tasks so thousands of jobs are active at
#: once.  That is the scaling regime ROADMAP item 2 targets — the
#: priority recompute, the knapsack oracle and the event loop all carry
#: a multi-thousand-job roster, as real-trace ingestion will.
CONFIGS: dict[str, dict] = {
    "ref30k": dict(num_servers=30_000, num_jobs=4_000, mean_interarrival=0.25),
    "ref100k": dict(num_servers=100_000, num_jobs=1_500, mean_interarrival=0.25),
    "gate": dict(num_servers=30_000, num_jobs=800, mean_interarrival=0.25),
}

MEAN_THETA = 600.0  # ~10-minute tasks keep the roster thousands deep

#: Environment enabling every scalar/eager escape hatch at once.
LEGACY_ENV = {
    "REPRO_SCALAR_PRIORITIES": "1",
    "REPRO_EAGER_PRIORITIES": "1",
    "REPRO_SCALAR_CLONE_FILL": "1",
}

SEED = 2022
SCHEDULE_INTERVAL = 5.0  # the 5-second slots of Sec. 6.3


def _git_head() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def measure_config(name: str) -> dict:
    """Run one reference simulation in-process and report throughput.

    Imports live here (not module top) so the subprocess protocol can set
    escape-hatch environment variables before any repro module reads them.
    """
    from repro.cluster.heterogeneity import trace_sim_cluster
    from repro.core.online import DollyMPScheduler
    from repro.sim.engine import SimulationEngine
    from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs

    class SmallJobTrace(GoogleTraceGenerator):
        """The small-job regime: every job draws from the trace
        analysis's dominant 1–10 task bucket."""

        def sample_job_size(self) -> int:
            return int(self.rng.integers(1, 11))

    cfg = CONFIGS[name]
    cluster = trace_sim_cluster(cfg["num_servers"], seed=SEED)
    jobs = jobs_from_specs(
        SmallJobTrace(seed=SEED, mean_theta=MEAN_THETA).generate(
            cfg["num_jobs"], mean_interarrival=cfg["mean_interarrival"]
        )
    )
    engine = SimulationEngine(
        cluster,
        DollyMPScheduler(max_clones=2),
        jobs,
        seed=SEED,
        schedule_interval=SCHEDULE_INTERVAL,
        max_time=1e9,
    )
    t0 = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - t0
    # Engines without the counter (pre-batching) are reconstructed from
    # the result: every launched copy pops one COPY_FINISH (stale ones
    # included), every job one JOB_ARRIVAL, every slotted pass one tick.
    events = getattr(engine, "events_processed", None)
    if events is None:
        events = (
            result.copies_launched
            + len(result.records)
            + len(result.schedule_pass_seconds)
        )
    return {
        "config": name,
        "num_servers": cfg["num_servers"],
        "num_jobs": cfg["num_jobs"],
        "wall_s": round(wall, 3),
        "events": int(events),
        "events_per_sec": round(events / wall, 1),
        "copies_launched": result.copies_launched,
        "tasks_placed_per_sec": round(result.copies_launched / wall, 1),
        "simulated_time": round(result.simulated_time, 3),
        "total_flowtime": result.total_flowtime,
        "peak_rss_mb": round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1),
    }


def _measure_subprocess(name: str, mode: str) -> dict:
    """Measure one (config, mode) pair in a fresh interpreter."""
    env = dict(os.environ)
    for key in LEGACY_ENV:
        env.pop(key, None)
    if mode == "legacy":
        env.update(LEGACY_ENV)
    out = subprocess.run(
        [sys.executable, "-m", "benchmarks.engine_bench", "--config", name, "--json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=Path(__file__).resolve().parent.parent,
    )
    if out.returncode != 0:
        raise RuntimeError(
            f"engine_bench subprocess ({name}, {mode}) failed:\n{out.stderr}"
        )
    record = json.loads(out.stdout.splitlines()[-1])
    record["mode"] = mode
    return record


def measure(*, legacy: bool = True, configs: tuple[str, ...] = ("ref30k", "ref100k")) -> dict:
    """Full measurement: every config in ``current`` mode, plus a
    ``legacy`` (all-escape-hatches) run of ref30k for the speedup."""
    runs = [_measure_subprocess(name, "current") for name in configs]
    record: dict = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": _git_head(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
    }
    if legacy:
        legacy_run = _measure_subprocess("ref30k", "legacy")
        runs.append(legacy_run)
        current = next(r for r in runs if r["config"] == "ref30k" and r["mode"] == "current")
        if current["total_flowtime"] != legacy_run["total_flowtime"]:
            raise RuntimeError(
                "legacy/current runs diverged — escape hatches are not "
                f"equivalent: {current['total_flowtime']!r} vs "
                f"{legacy_run['total_flowtime']!r}"
            )
        record["speedup_ref30k"] = round(
            current["events_per_sec"] / legacy_run["events_per_sec"], 2
        )
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), help="run one config in-process")
    parser.add_argument("--json", action="store_true", help="print the record as JSON only")
    parser.add_argument("--no-legacy", action="store_true", help="skip the legacy-mode run")
    parser.add_argument(
        "--append", metavar="PATH", help="append a trajectory record to this JSONL file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the measurement to {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)

    if args.config:
        record = measure_config(args.config)
        print(json.dumps(record, sort_keys=True))
        return 0

    if args.append:
        # Nightly trajectory: one cheap record (gate config, current mode).
        run = _measure_subprocess("gate", "current")
        record = {
            "bench": "engine",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "commit": _git_head(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "events_per_sec": run["events_per_sec"],
            "tasks_placed_per_sec": run["tasks_placed_per_sec"],
            "wall_s": run["wall_s"],
            "peak_rss_mb": run["peak_rss_mb"],
        }
        from benchmarks.trajectory import append_jsonl

        line = append_jsonl(args.append, record)
        print(f"appended to {args.append}: {line}")
        return 0

    record = measure(legacy=not args.no_legacy)
    record["runs"].append(_measure_subprocess("gate", "current"))
    if args.write_baseline:
        baseline = {}
        if BASELINE_PATH.exists():
            baseline = json.loads(BASELINE_PATH.read_text())
        baseline["measured"] = record
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
