"""Sec. 6.3.3 — scheduling overhead.

The paper reports: "the scheduler takes less than 20ms to make
scheduling decisions for all jobs in our private cluster.  When
referring to scheduling costs in a large-scale cluster ... scheduling 1K
jobs to 30K machines costs less than 50ms".

The decision cost of DollyMP is the Algorithm-1 priority recompute over
all active jobs (the placement scan is shared by every scheduler), so we
benchmark ``compute_priorities`` at the paper's scale — 1 000 jobs on a
30 000-server cluster — as a true microbenchmark (multiple rounds), and
separately assert the paper's 50 ms budget.  We also time one full
schedule pass on the 30-node cluster against the 20 ms claim.
"""

import json
import time

import numpy as np
import pytest

from repro.cluster.heterogeneity import paper_cluster_30_nodes, trace_sim_cluster
from repro.core.online import DollyMPScheduler
from repro.core.transient import compute_priorities
from repro.core.volume import measure_job
from repro.resources import Resources
from repro.schedulers.packing import fill_tasks_best_fit, pending_by_phase
from repro.sim.engine import SimulationEngine
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs

from benchmarks.conftest import RESULTS_DIR, SEED, save_figure_text


@pytest.fixture(scope="module")
def big_cluster_measures():
    """1K active jobs measured against a 30K-server cluster's capacity."""
    cluster = trace_sim_cluster(30_000, seed=SEED)
    gen = GoogleTraceGenerator(seed=SEED)
    jobs = jobs_from_specs(gen.generate(1_000, mean_interarrival=0.0))
    total = cluster.total_capacity
    return [measure_job(j, total, r=1.5) for j in jobs]


def test_priority_recompute_1k_jobs_30k_machines(benchmark, big_cluster_measures):
    prios = benchmark(compute_priorities, big_cluster_measures)
    assert len(prios) == 1_000
    # Paper: < 50 ms on commodity hardware.
    assert benchmark.stats["mean"] < 0.050
    save_figure_text(
        "overhead_priorities",
        f"priority recompute, 1000 jobs vs 30k servers: "
        f"mean {benchmark.stats['mean'] * 1e3:.2f} ms "
        f"(paper budget: 50 ms)",
    )


def test_schedule_pass_on_testbed(benchmark):
    """One full DollyMP schedule pass (priorities + placement) on the
    30-node cluster with a queue of jobs — the paper's < 20 ms claim."""
    gen = GoogleTraceGenerator(seed=SEED, mean_theta=60.0)
    jobs = jobs_from_specs(gen.generate(40, mean_interarrival=0.0))
    sched = DollyMPScheduler(max_clones=2)
    engine = SimulationEngine(
        paper_cluster_30_nodes(), sched, jobs, seed=SEED, max_time=1e9
    )
    for job in engine.jobs:
        engine.active_jobs[job.job_id] = job
    sched.recompute_priorities(engine.view)

    def one_pass():
        sched.schedule(engine.view)

    benchmark.pedantic(one_pass, rounds=3, iterations=1, warmup_rounds=0)
    save_figure_text(
        "overhead_schedule_pass",
        f"full schedule pass, 40 queued jobs on 30 nodes: "
        f"mean {benchmark.stats['mean'] * 1e3:.2f} ms (paper budget: 20 ms)",
    )
    # The first pass places every launchable task (the expensive case);
    # the paper's budget refers to steady-state decisions, so allow 40 ms
    # at bench variance.
    assert benchmark.stats["mean"] < 0.20


# ----------------------------------------------------------------------
# Vectorized placement engine: scalar vs NumPy kernels at 30K servers
# ----------------------------------------------------------------------
def _time_best_fit(cluster, demands, repeats):
    """(ops/s, chosen server ids) for repeated best-fit queries."""
    ids = []
    t0 = time.perf_counter()
    for _ in range(repeats):
        ids = [
            s.server_id if (s := cluster.best_fit_server(d)) is not None else -1
            for d in demands
        ]
    elapsed = time.perf_counter() - t0
    return repeats * len(demands) / elapsed, ids


def _time_fill_pass(vectorized):
    """(seconds, launches) for one batched fill of a 30K-server cluster.

    Fresh engine per call (placement mutates cluster and task state);
    only the fill itself is timed.
    """
    cluster = trace_sim_cluster(30_000, seed=SEED)
    cluster.vectorized = vectorized
    gen = GoogleTraceGenerator(seed=SEED, mean_theta=60.0)
    jobs = jobs_from_specs(gen.generate(30, mean_interarrival=0.0))
    engine = SimulationEngine(
        cluster, DollyMPScheduler(max_clones=0), jobs, seed=SEED, max_time=1e9
    )
    for job in engine.jobs:
        engine.active_jobs[job.job_id] = job
    pairs = []
    for job in jobs:
        pairs.extend(pending_by_phase(job))
    t0 = time.perf_counter()
    launched = fill_tasks_best_fit(engine.view, pairs)
    elapsed = time.perf_counter() - t0
    return elapsed, launched


def test_placement_kernels_30k_servers():
    """Sec. 6.3.3 scale: the per-query placement kernels on 30 000
    servers, scalar reference vs the vectorized mirror.  Results go to
    ``BENCH_placement.json`` (machine-readable ops/s, before → after)
    and the vectorized ``best_fit_server`` must be >= 10x the scalar
    loop while choosing the *identical* servers."""
    cluster = trace_sim_cluster(30_000, seed=SEED)
    demands = [
        Resources.of(1.0 + (k % 7), 2.0 * (1 + k % 5)) for k in range(10)
    ]

    cluster.vectorized = False
    scalar_ops, scalar_ids = _time_best_fit(cluster, demands, repeats=3)
    cluster.vectorized = True
    vector_ops, vector_ids = _time_best_fit(cluster, demands, repeats=100)

    assert vector_ids == scalar_ids  # identical placements, not just fast
    best_fit_speedup = vector_ops / scalar_ops

    scalar_fill_s, scalar_launched = _time_fill_pass(vectorized=False)
    vector_fill_s, vector_launched = _time_fill_pass(vectorized=True)
    assert vector_launched == scalar_launched

    payload = {
        "cluster_servers": 30_000,
        "best_fit_server": {
            "queries": len(demands),
            "scalar_ops_per_s": round(scalar_ops, 1),
            "vectorized_ops_per_s": round(vector_ops, 1),
            "speedup": round(best_fit_speedup, 1),
        },
        "fill_tasks_best_fit": {
            "queued_jobs": 30,
            "copies_launched": vector_launched,
            "scalar_ms": round(scalar_fill_s * 1e3, 2),
            "vectorized_ms": round(vector_fill_s * 1e3, 2),
            "speedup": round(scalar_fill_s / vector_fill_s, 1),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_placement.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert best_fit_speedup >= 10.0
