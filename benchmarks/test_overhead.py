"""Sec. 6.3.3 — scheduling overhead.

The paper reports: "the scheduler takes less than 20ms to make
scheduling decisions for all jobs in our private cluster.  When
referring to scheduling costs in a large-scale cluster ... scheduling 1K
jobs to 30K machines costs less than 50ms".

The decision cost of DollyMP is the Algorithm-1 priority recompute over
all active jobs (the placement scan is shared by every scheduler), so we
benchmark ``compute_priorities`` at the paper's scale — 1 000 jobs on a
30 000-server cluster — as a true microbenchmark (multiple rounds), and
separately assert the paper's 50 ms budget.  We also time one full
schedule pass on the 30-node cluster against the 20 ms claim.
"""

import numpy as np
import pytest

from repro.cluster.heterogeneity import paper_cluster_30_nodes, trace_sim_cluster
from repro.core.online import DollyMPScheduler
from repro.core.transient import compute_priorities
from repro.core.volume import measure_job
from repro.sim.engine import SimulationEngine
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs

from benchmarks.conftest import SEED, save_figure_text


@pytest.fixture(scope="module")
def big_cluster_measures():
    """1K active jobs measured against a 30K-server cluster's capacity."""
    cluster = trace_sim_cluster(30_000, seed=SEED)
    gen = GoogleTraceGenerator(seed=SEED)
    jobs = jobs_from_specs(gen.generate(1_000, mean_interarrival=0.0))
    total = cluster.total_capacity
    return [measure_job(j, total, r=1.5) for j in jobs]


def test_priority_recompute_1k_jobs_30k_machines(benchmark, big_cluster_measures):
    prios = benchmark(compute_priorities, big_cluster_measures)
    assert len(prios) == 1_000
    # Paper: < 50 ms on commodity hardware.
    assert benchmark.stats["mean"] < 0.050
    save_figure_text(
        "overhead_priorities",
        f"priority recompute, 1000 jobs vs 30k servers: "
        f"mean {benchmark.stats['mean'] * 1e3:.2f} ms "
        f"(paper budget: 50 ms)",
    )


def test_schedule_pass_on_testbed(benchmark):
    """One full DollyMP schedule pass (priorities + placement) on the
    30-node cluster with a queue of jobs — the paper's < 20 ms claim."""
    gen = GoogleTraceGenerator(seed=SEED, mean_theta=60.0)
    jobs = jobs_from_specs(gen.generate(40, mean_interarrival=0.0))
    sched = DollyMPScheduler(max_clones=2)
    engine = SimulationEngine(
        paper_cluster_30_nodes(), sched, jobs, seed=SEED, max_time=1e9
    )
    for job in engine.jobs:
        engine.active_jobs[job.job_id] = job
    sched.recompute_priorities(engine.view)

    def one_pass():
        sched.schedule(engine.view)

    benchmark.pedantic(one_pass, rounds=3, iterations=1, warmup_rounds=0)
    save_figure_text(
        "overhead_schedule_pass",
        f"full schedule pass, 40 queued jobs on 30 nodes: "
        f"mean {benchmark.stats['mean'] * 1e3:.2f} ms (paper budget: 20 ms)",
    )
    # The first pass places every launchable task (the expensive case);
    # the paper's budget refers to steady-state decisions, so allow 40 ms
    # at bench variance.
    assert benchmark.stats["mean"] < 0.20
