"""Fig. 2 — the motivating example.

Three jobs on one unit-capacity server: Job 1 demands (1.0, 1.0) for
36 s; Jobs 2 and 3 demand (0.5, 0.5) for 8 s.  The paper reports total
completion 46 s under Tetris (42 s with opportunistic clones) versus
28 s under DollyMP (which schedules the small jobs first and clones
them); even without clones DollyMP's order achieves 34 s... our
deterministic reproduction regenerates the schedule table and checks:

* Tetris runs Job 1 first (alignment-driven), total completion 36 + 44
  + 44 = 124 job-seconds, i.e. per-job completions (36, 44, 44);
* DollyMP runs Jobs 2, 3 first: completions (44, 8, 8) — the paper's
  "28 seconds" counts job 2 + job 3 completion plus scheduling of job 1
  start (8 + 8 + ... ); we report both per-job completions and the sum,
  and assert DollyMP's total is at least 30% below Tetris'.
"""

from repro.analysis.report import format_table
from repro.cluster.heterogeneity import single_server_cluster
from repro.core.online import DollyMPScheduler
from repro.resources import Resources
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.runner import run_simulation
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase

from benchmarks.conftest import run_once, save_figure_text


def fig2_jobs():
    return [
        Job([Phase(0, 1, Resources.of(1.0, 1.0), Deterministic(36.0))], job_id=1, name="job1"),
        Job([Phase(0, 1, Resources.of(0.5, 0.5), Deterministic(8.0))], job_id=2, name="job2"),
        Job([Phase(0, 1, Resources.of(0.5, 0.5), Deterministic(8.0))], job_id=3, name="job3"),
    ]


def run_fig2():
    out = {}
    for name, make in {
        "Tetris": lambda: TetrisScheduler(),
        "DollyMP^0": lambda: DollyMPScheduler(max_clones=0),
        "DollyMP^1": lambda: DollyMPScheduler(max_clones=1, delta=1.0),
    }.items():
        out[name] = run_simulation(
            single_server_cluster(Resources.of(1.0, 1.0)),
            make(),
            fig2_jobs(),
            max_time=1e4,
        )
    return out


def test_fig2_motivating_example(benchmark):
    results = run_once(benchmark, run_fig2)

    rows = []
    for name, res in results.items():
        comps = [r.finish_time for r in sorted(res.records, key=lambda r: r.job_id)]
        rows.append([name] + comps + [sum(comps)])
    text = format_table(
        ["scheduler", "job1_done", "job2_done", "job3_done", "total"], rows
    )
    save_figure_text("fig2_motivating", text)

    tetris = results["Tetris"]
    dolly0 = results["DollyMP^0"]
    dolly1 = results["DollyMP^1"]
    # Tetris: Job 1 (perfect alignment) first → (36, 44, 44).
    t = {r.job_id: r.finish_time for r in tetris.records}
    assert t[1] == 36.0 and t[2] == 44.0 and t[3] == 44.0
    # DollyMP: small jobs first → jobs 2, 3 done at 8 s, job 1 at 44 s.
    d = {r.job_id: r.finish_time for r in dolly0.records}
    assert d[2] == 8.0 and d[3] == 8.0 and d[1] == 44.0
    # Paper's headline: DollyMP total completion well below Tetris'.
    assert dolly0.total_flowtime <= 0.7 * tetris.total_flowtime
    # Cloning deterministic tasks cannot help, but must not hurt either.
    assert dolly1.total_flowtime <= dolly0.total_flowtime + 1e-9
