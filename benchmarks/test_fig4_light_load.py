"""Fig. 4 — lightly-loaded regime: total flowtime (a) and running-time
CDF (b).

100 jobs (half PageRank, half WordCount) with inter-arrivals long enough
that "only a few jobs need to wait for available resources".  Paper's
findings, asserted here:

* job flowtime ≈ job running time (no queueing);
* Tetris performs quite similarly to the Capacity scheduler;
* DollyMP² cuts mean flowtime by ≈10% versus Capacity and its
  running-time CDF dominates (e.g. the paper's "95% of jobs within
  350 s vs 80% under Capacity" read);
* DollyMP² outperforms DollyMP¹ (more clones help when the cluster is
  idle).
"""

import numpy as np

from repro.analysis.cdf import fraction_below, percentile
from repro.analysis.report import cdf_table, comparison_table
from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.schedulers.fifo import CapacityScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.runner import run_simulation

from benchmarks.conftest import (
    LIGHT_INTERARRIVAL,
    LIGHT_NUM_JOBS,
    SEED,
    deployment_jobs,
    run_once,
    save_figure_text,
)

SCHEDULERS = {
    "Capacity": lambda: CapacityScheduler(),
    "Tetris": lambda: TetrisScheduler(),
    "DollyMP^0": lambda: DollyMPScheduler(max_clones=0),
    "DollyMP^1": lambda: DollyMPScheduler(max_clones=1),
    "DollyMP^2": lambda: DollyMPScheduler(max_clones=2),
}


def run_fig4():
    out = {}
    for name, make in SCHEDULERS.items():
        out[name] = run_simulation(
            paper_cluster_30_nodes(),
            make(),
            deployment_jobs("mixed", LIGHT_NUM_JOBS, LIGHT_INTERARRIVAL),
            seed=SEED,
            max_time=1e8,
        )
    return out


def test_fig4_light_load(benchmark):
    results = run_once(benchmark, run_fig4)

    table = comparison_table(results)
    runtime_series = {n: r.running_times() for n, r in results.items()}
    points = sorted({percentile(v, q) for v in runtime_series.values() for q in (0.5, 0.8, 0.95)})
    cdf = cdf_table(runtime_series, points, label="runtime_s")
    save_figure_text("fig4_light_load", table + "\n\n" + cdf)

    cap = results["Capacity"]
    tetris = results["Tetris"]
    d1 = results["DollyMP^1"]
    d2 = results["DollyMP^2"]

    # Lightly loaded: flowtime ≈ running time for every scheduler.
    for res in results.values():
        assert res.mean_flowtime <= 1.2 * res.mean_running_time
    # Tetris ≈ Capacity in this regime.
    assert abs(tetris.mean_flowtime - cap.mean_flowtime) / cap.mean_flowtime < 0.25
    # DollyMP² beats Capacity by a clear margin (paper: ≈10%).
    assert d2.mean_flowtime < 0.92 * cap.mean_flowtime
    # DollyMP² ≤ DollyMP¹ (more clones help when resources are idle).
    assert d2.mean_running_time <= d1.mean_running_time * 1.02
    # CDF domination at the Capacity 80th percentile (the "95% vs 80%"
    # read): at the runtime where Capacity reaches 80%, DollyMP² is
    # strictly further along.
    x80 = percentile(runtime_series["Capacity"], 0.8)
    assert fraction_below(runtime_series["DollyMP^2"], x80) > 0.9
