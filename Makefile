# Repro development targets.  `make check` is the full gate CI runs —
# it delegates to tools/check.sh, which executes each gate below
# fail-fast and prints a PASS/FAIL summary line per gate.  CI invokes
# `make check` directly so the gate list lives in exactly one place.

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

# Coverage floor lives in pyproject.toml ([tool.coverage.report]).
COV_FAIL_UNDER = $(shell sed -n 's/^fail_under *= *//p' pyproject.toml)

.PHONY: check lint test smoke replay-smoke fault-smoke engine-smoke service-smoke trace-smoke shard-smoke bench-check coverage bench-trajectory

check:
	@MAKE="$(MAKE)" sh tools/check.sh

# Full analyzer: per-file rules + whole-program dataflow + stale-waiver
# check, gated against the committed baseline.  The SARIF report lands
# in artifacts/lint/ (uploaded by CI); findings still print as text.
lint:
	$(PYTHON) -m tools.repro_lint --unused-ignores --format sarif \
		--output artifacts/lint/repro_lint.sarif src tests benchmarks

test:
	$(PYTHON) -m pytest -x -q

smoke:
	REPRO_SANITIZE=1 $(PYTHON) -m repro.devtools.smoke

replay-smoke:
	$(PYTHON) -m repro.devtools.replay_smoke

fault-smoke:
	$(PYTHON) -m repro.devtools.fault_smoke

engine-smoke:
	$(PYTHON) -m repro.devtools.engine_smoke

service-smoke:
	$(PYTHON) -m repro.devtools.service_smoke

# Honors REPRO_TRACE_FIXTURES (CI points it at a cached directory keyed
# on the fixture generator's source hash; warm runs skip generation).
trace-smoke:
	$(PYTHON) -m repro.devtools.trace_smoke

# Chaos run at K=1 vs K=4 shards: byte-identical results, journals and
# traces (modulo shard provenance), plus a mid-run freeze/revive leg.
shard-smoke:
	$(PYTHON) -m repro.devtools.shard_smoke

bench-check:
	$(PYTHON) -m benchmarks.check_regression

# Enforced in CI (pytest-cov is installed there); locally the gate
# degrades to a skip when pytest-cov isn't available, since the repo
# must work without installing anything.
coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -x -q --cov=repro --cov=tools \
			--cov-report=term --cov-fail-under=$(COV_FAIL_UNDER); \
	else \
		echo "coverage: pytest-cov not installed, skipping (floor $(COV_FAIL_UNDER)% enforced in CI)"; \
	fi

# Appends one line each to benchmarks/results/trajectory.jsonl (cron job):
# placement microbench + end-to-end engine throughput (gate config) +
# trace-ingestion throughput (rows/sec, peak RSS) + sharded-engine
# scaling (gate config at K=1 and K=4, identity-checked).
bench-trajectory:
	$(PYTHON) -m benchmarks.placement_microbench --append benchmarks/results/trajectory.jsonl
	$(PYTHON) -m benchmarks.engine_bench --append benchmarks/results/trajectory.jsonl
	$(PYTHON) -m benchmarks.ingest_bench --append benchmarks/results/trajectory.jsonl
	$(PYTHON) -m benchmarks.shard_bench --append benchmarks/results/trajectory.jsonl
