# Repro development targets.  `make check` is the full gate CI runs:
# static analysis, the tier-1 test suite, a sanitizer-enabled smoke
# simulation, and the benchmark regression guard.

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: check lint test smoke replay-smoke bench-check

check: lint test smoke replay-smoke bench-check

lint:
	$(PYTHON) -m tools.repro_lint src tests benchmarks

test:
	$(PYTHON) -m pytest -x -q

smoke:
	REPRO_SANITIZE=1 $(PYTHON) -m repro.devtools.smoke

replay-smoke:
	$(PYTHON) -m repro.devtools.replay_smoke

bench-check:
	$(PYTHON) -m benchmarks.check_regression
