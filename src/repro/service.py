"""Long-lived scheduler service: ``python -m repro serve``.

The service layer of the session API (DESIGN.md §5.8).  The engine runs
as a persistent process consuming job specs line-by-line from a JSONL
stream (stdin or a file), scheduling them as they arrive:

* **graceful drain** — end-of-stream (EOF) or SIGTERM/SIGINT stops the
  intake; jobs already admitted run to completion, then the session
  finalizes and prints the usual result summary;
* **periodic checkpoints** — ``--checkpoint-path``/``--checkpoint-every``
  overwrite an atomic checkpoint on simulated-time boundaries, and
  ``--restore`` revives a session from one and re-attaches the stream;
* **live metrics** — ``--metrics-textfile`` republishes the Prometheus
  exposition to a text file and ``--metrics-addr`` serves it over HTTP
  while the session runs, instead of end-of-run-only export.

Each input line is one job in the `repro-trace-v1` job schema (see
``workload/google_trace.py``); ``python -m repro trace --jsonl`` emits a
compatible stream.  Determinism: the served session's result is
bit-identical to a one-shot ``run()`` over the same job list, because
arrival ingestion never reorders the (time, kind, seq) event order —
see ``workload/arrivals.py``.
"""

from __future__ import annotations

import json
import queue
import signal
import sys
import threading
from contextlib import ExitStack
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.observability.live import (
    MetricsServer,
    TextfilePublisher,
    combine_publishers,
    parse_metrics_addr,
)
from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import SimulationResult
from repro.sim.session import SimulationSession
from repro.workload.arrivals import JsonlSource

__all__ = ["SignalAwareLineFeed", "serve", "cmd_serve", "add_serve_parser"]


class SignalAwareLineFeed:
    """Iterates lines from a text stream, unblockable by ``close()``.

    A plain file iterator blocks the engine inside ``readline`` while
    waiting for the next arrival, where a signal handler could not end
    the session promptly.  This feed reads on a daemon thread into a
    queue; ``close()`` (called from the SIGTERM/SIGINT handler) turns
    the *next* line request into end-of-stream, which the arrival
    source reports as exhausted — the graceful-drain path.  Lines still
    buffered at close are dropped: shutdown means "stop admitting".
    """

    def __init__(self, stream: TextIO | Iterable[str]) -> None:
        self._queue: queue.Queue[str | None] = queue.Queue(maxsize=1024)
        self._closed = threading.Event()
        self._thread = threading.Thread(
            target=self._pump, args=(stream,), name="repro-arrivals", daemon=True
        )
        self._thread.start()

    def _pump(self, stream: TextIO | Iterable[str]) -> None:
        try:
            for line in stream:
                if self._closed.is_set():
                    return
                self._queue.put(line)
        finally:
            self._queue.put(None)

    def close(self) -> None:
        self._closed.set()

    def __iter__(self) -> Iterator[str]:
        return self

    def __next__(self) -> str:
        while True:
            if self._closed.is_set():
                raise StopIteration
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is None:
                raise StopIteration
            return item


def _open_arrivals(path: str) -> tuple[Iterable[str], bool]:
    """(line iterable, is_replayable_file) for an ``--arrivals`` value."""
    if path == "-":
        return sys.stdin, False
    return open(path, "r", encoding="utf-8"), True


def serve(
    engine: SimulationEngine,
    *,
    feed: SignalAwareLineFeed,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: float = 0.0,
    on_metrics=None,
    metrics_every: float = 0.0,
    install_signals: bool = True,
) -> SimulationResult:
    """Run one service session to completion (EOF or signal + drain)."""
    session = SimulationSession(
        engine,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        on_metrics=on_metrics,
        metrics_every=metrics_every,
    )
    previous = {}
    if install_signals:
        def _stop(signum, frame):
            feed.close()

        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _stop)
    try:
        return session.run()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def cmd_serve(args) -> int:
    # Local import: cli imports this module, and the helpers used here
    # live in cli.
    from repro.cli import (
        _fault_profile_for,
        _finish_observability,
        make_cluster,
        make_scheduler,
    )
    from repro.observability import Observability

    with ExitStack() as stack:
        raw, replayable = _open_arrivals(args.arrivals)
        if replayable:
            stack.callback(raw.close)
        feed = SignalAwareLineFeed(raw)

        if args.restore:
            engine = load_checkpoint(args.restore)
            source = engine.arrivals
            if not isinstance(source, JsonlSource):
                raise SystemExit(
                    f"{args.restore}: checkpointed session has a "
                    f"{type(source).__name__} arrival source, not a JSONL stream"
                )
            # A file restarted from its beginning must be fast-forwarded
            # past the jobs the checkpointed session already consumed;
            # stdin is assumed to resume where the previous leg stopped.
            source.attach(feed, skip_consumed=replayable)
            print(
                f"restored session at t={engine.now:g} "
                f"({len(engine.active_jobs)} active jobs, "
                f"{source.consumed} arrivals consumed)",
                file=sys.stderr,
            )
        else:
            obs = _observability_for_serve(args, Observability)
            fault_profile, churn_seed = _fault_profile_for(args)
            engine = SimulationEngine(
                make_cluster(args.cluster, args.seed),
                make_scheduler(args.scheduler),
                JsonlSource(feed),
                seed=args.seed,
                schedule_interval=args.slot,
                observability=obs,
                fault_profile=fault_profile,
                churn_seed=churn_seed,
            )

        publishers = []
        if args.metrics_textfile:
            publishers.append(
                TextfilePublisher(args.metrics_textfile, include_wall=args.include_wall)
            )
        if args.metrics_addr:
            host, port = parse_metrics_addr(args.metrics_addr)
            server = MetricsServer(host, port, include_wall=args.include_wall)
            stack.callback(server.close)
            bound = server.address
            print(f"metrics endpoint on http://{bound[0]}:{bound[1]}/metrics",
                  file=sys.stderr)
            publishers.append(server)

        result = serve(
            engine,
            feed=feed,
            checkpoint_path=args.checkpoint_path,
            checkpoint_every=args.checkpoint_every,
            on_metrics=combine_publishers(*publishers),
            metrics_every=args.metrics_every,
        )

    for key, value in result.summary().items():
        print(f"{key:>24s}: {value:.3f}")
    if args.summary_out:
        Path(args.summary_out).write_text(
            json.dumps(result.summary(), sort_keys=True, separators=(",", ":")) + "\n"
        )
        print(f"summary -> {args.summary_out}")
    _finish_observability(engine.observability, args)
    return 0


def _observability_for_serve(args, Observability):
    """A bundle whenever any live or end-of-run export was requested."""
    if (
        args.metrics_textfile
        or args.metrics_addr
        or args.metrics_out
        or args.spans_out
        or args.profile
    ):
        return Observability(profile=args.profile or None)
    return None


def add_serve_parser(sub, *, add_common, add_observability, add_faults) -> None:
    """Install the ``serve`` subcommand on the CLI's subparser registry."""
    p = sub.add_parser(
        "serve",
        help="consume a JSONL arrival stream as a long-lived scheduler service",
    )
    p.add_argument(
        "--arrivals", default="-",
        help="JSONL job-spec stream: a path, or '-' for stdin (default)",
    )
    p.add_argument("--scheduler", default="dollymp2")
    p.add_argument(
        "--checkpoint-path",
        help="overwrite an atomic engine checkpoint at this path",
    )
    p.add_argument(
        "--checkpoint-every", type=float, default=0.0,
        help="checkpoint cadence in simulated seconds (0 = final only)",
    )
    p.add_argument(
        "--restore",
        help="revive the session from this checkpoint and re-attach the stream",
    )
    p.add_argument(
        "--metrics-textfile",
        help="republish Prometheus text here on each metrics cadence",
    )
    p.add_argument(
        "--metrics-addr",
        help="serve GET /metrics on host:port while the session runs",
    )
    p.add_argument(
        "--metrics-every", type=float, default=0.0,
        help="live-metrics cadence in simulated seconds (0 = every instant)",
    )
    p.add_argument("--summary-out", help="write the final result summary JSON here")
    add_common(p)
    add_observability(p)
    add_faults(p)
    p.set_defaults(func=cmd_serve)
