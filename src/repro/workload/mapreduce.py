"""MapReduce-style job builders (WordCount, PageRank).

The paper's deployment workload runs two applications (Sec. 6.2):
WordCount jobs over 10 GB (and 4 GB in the Fig. 1 motivation) and
PageRank jobs over 1 GB / 10 GB inputs.  The scheduler only observes
phases, task counts, demands and duration statistics, so the builders
produce DAGs with the right structure:

* WordCount — a map phase (one task per HDFS block) followed by a reduce
  phase;
* PageRank — an iterative chain of map→reduce supersteps.

Task durations are Pareto Type-I fitted around per-block processing
rates, giving the heavy-tailed straggler behaviour the testbed exhibits.
"""

from __future__ import annotations

import math

from repro.resources import Resources
from repro.workload.distributions import ParetoType1
from repro.workload.job import Job
from repro.workload.phase import Phase

__all__ = ["wordcount_job", "pagerank_job", "mapreduce_job"]

#: HDFS block size in GB — determines map task count (128 MB blocks).
BLOCK_GB = 0.128

#: Default straggler intensity: coefficient of variation of task times.
#: The testbed observes stragglers "up to 8× slower" (Sec. 1) and the
#: trace analysis up to 20× (Sec. 6.3); cv = 0.5 under a fitted Pareto
#: yields a tail consistent with the 8× deployment observations.
DEFAULT_CV = 0.5


def _blocks(input_gb: float) -> int:
    return max(1, math.ceil(input_gb / BLOCK_GB))


def mapreduce_job(
    *,
    num_map: int,
    num_reduce: int,
    map_theta: float,
    reduce_theta: float,
    map_demand: Resources = Resources.of(1, 2),
    reduce_demand: Resources = Resources.of(1, 4),
    cv: float = DEFAULT_CV,
    arrival_time: float = 0.0,
    name: str = "mapreduce",
    job_id: int | None = None,
    shuffle_delay: float = 0.0,
) -> Job:
    """A generic two-phase map→reduce job with Pareto task times.

    ``shuffle_delay`` models the map→reduce data transfer: the reduce
    phase may start only that many seconds after the map phase finishes
    (0 = instantaneous handoff, the default used by the paper benches).
    """
    if num_map < 1 or num_reduce < 1:
        raise ValueError("map and reduce phases need at least one task each")
    phases = [
        Phase(
            0,
            num_map,
            map_demand,
            ParetoType1.from_moments(map_theta, cv * map_theta),
            name="map",
        ),
        Phase(
            1,
            num_reduce,
            reduce_demand,
            ParetoType1.from_moments(reduce_theta, cv * reduce_theta),
            name="reduce",
            parents=(0,),
            start_delay=shuffle_delay,
        ),
    ]
    return Job(phases, arrival_time=arrival_time, name=name, job_id=job_id)


def wordcount_job(
    input_gb: float,
    *,
    arrival_time: float = 0.0,
    cv: float = DEFAULT_CV,
    seconds_per_block: float = 12.0,
    reduce_fraction: float = 0.25,
    job_id: int | None = None,
) -> Job:
    """A WordCount job over ``input_gb`` of input.

    One map task per 128 MB block; reduce tasks a fixed fraction of map
    tasks ("we generate a fixed portion of map tasks and reduce tasks",
    Sec. 6.2).  Reduce work scales with the map output volume.
    """
    if input_gb <= 0:
        raise ValueError(f"input size must be positive, got {input_gb}")
    n_map = _blocks(input_gb)
    n_reduce = max(1, round(n_map * reduce_fraction))
    map_theta = seconds_per_block
    # WordCount reduce handles the aggregated counts: cheap per reducer
    # but scaling with input split across reducers.
    reduce_theta = max(4.0, 0.5 * seconds_per_block * n_map / n_reduce * 0.2)
    return mapreduce_job(
        num_map=n_map,
        num_reduce=n_reduce,
        map_theta=map_theta,
        reduce_theta=reduce_theta,
        cv=cv,
        arrival_time=arrival_time,
        name=f"wordcount-{input_gb:g}GB",
        job_id=job_id,
    )


def pagerank_job(
    input_gb: float,
    *,
    iterations: int = 3,
    arrival_time: float = 0.0,
    cv: float = DEFAULT_CV,
    seconds_per_block: float = 15.0,
    job_id: int | None = None,
) -> Job:
    """A PageRank job: ``iterations`` chained map→reduce supersteps.

    Every superstep re-reads the rank/link data, so each iteration has
    the full map-task parallelism; reduce re-aggregates ranks.
    """
    if input_gb <= 0:
        raise ValueError(f"input size must be positive, got {input_gb}")
    if iterations < 1:
        raise ValueError(f"need at least one iteration, got {iterations}")
    n_map = _blocks(input_gb)
    n_reduce = max(1, n_map // 4)
    phases: list[Phase] = []
    for it in range(iterations):
        map_idx = 2 * it
        phases.append(
            Phase(
                map_idx,
                n_map,
                Resources.of(1, 2),
                ParetoType1.from_moments(seconds_per_block, cv * seconds_per_block),
                name=f"iter{it}-map",
                parents=(map_idx - 1,) if it > 0 else (),
            )
        )
        reduce_theta = max(4.0, seconds_per_block * 0.4)
        phases.append(
            Phase(
                map_idx + 1,
                n_reduce,
                Resources.of(1, 4),
                ParetoType1.from_moments(reduce_theta, cv * reduce_theta),
                name=f"iter{it}-reduce",
                parents=(map_idx,),
            )
        )
    return Job(
        phases,
        arrival_time=arrival_time,
        name=f"pagerank-{input_gb:g}GB",
        job_id=job_id,
    )
