"""A job phase: a set of parallel tasks with shared statistics.

Phase φ_j^k of the paper has n_j^k identical-statistics tasks, a per-task
demand (c_j^k, m_j^k), an execution-time mean θ_j^k and standard
deviation σ_j^k (known on arrival, Sec. 3), plus DAG parents P(φ_j^k).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.resources import Resources
from repro.workload.distributions import Deterministic, ExecutionTimeDistribution
from repro.workload.speedup import NoSpeedup, ParetoSpeedup, SpeedupFunction
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.job import Job

__all__ = ["Phase"]


class Phase:
    """One phase of a DAG job."""

    __slots__ = (
        "job",
        "index",
        "name",
        "demand",
        "distribution",
        "speedup",
        "parents",
        "tasks",
        "start_delay",
        "_finished_count",
        "_pending_count",
    )

    def __init__(
        self,
        index: int,
        num_tasks: int,
        demand: Resources,
        distribution: ExecutionTimeDistribution,
        *,
        name: str | None = None,
        parents: tuple[int, ...] = (),
        speedup: SpeedupFunction | None = None,
        start_delay: float = 0.0,
    ) -> None:
        if num_tasks < 1:
            raise ValueError(f"phase needs at least one task, got {num_tasks}")
        if demand.cpu <= 0 and demand.mem <= 0:
            raise ValueError("phase tasks must demand some resource")
        if any(p >= index for p in parents):
            raise ValueError("parents must precede the phase (indices < own index)")
        if start_delay < 0:
            raise ValueError(f"start_delay must be non-negative, got {start_delay}")
        self.job: Optional["Job"] = None  # set by Job.__init__
        self.index = index
        self.name = name if name is not None else f"phase{index}"
        self.demand = demand
        self.distribution = distribution
        self.parents = tuple(sorted(set(parents)))
        #: Seconds after the last parent finishes before this phase's
        #: tasks may launch — models the shuffle/data-transfer gap
        #: between dependent phases (0 = instantaneous handoff).
        self.start_delay = float(start_delay)
        self.tasks = [Task(self, i) for i in range(num_tasks)]
        # Finished- and pending-task counters (maintained by
        # Task.add_copy/Task.complete) — phase readiness and the
        # scheduler's pending scans are checked constantly, so neither
        # may be a scan.
        self._finished_count = 0
        self._pending_count = num_tasks
        if speedup is not None:
            self.speedup = speedup
        else:
            self.speedup = _default_speedup(distribution)

    # ------------------------------------------------------------------
    # Statistics (θ, σ, effective processing time)
    # ------------------------------------------------------------------
    @property
    def theta(self) -> float:
        """θ_j^k — mean task execution time."""
        return self.distribution.mean

    @property
    def sigma(self) -> float:
        """σ_j^k — standard deviation of task execution time."""
        return self.distribution.std

    def effective_time(self, r: float) -> float:
        """e_j^k = θ + r·σ (Sec. 5): the variance-penalized phase length.

        ``r`` is DollyMP's deviation weight (the experiments use r = 1.5).
        """
        return self.theta + r * self.sigma

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def unfinished_tasks(self) -> list[Task]:
        return [t for t in self.tasks if t.state is not TaskState.FINISHED]

    def pending_tasks(self) -> list[Task]:
        return [t for t in self.tasks if t.state is TaskState.PENDING]

    def running_tasks(self) -> list[Task]:
        return [t for t in self.tasks if t.state is TaskState.RUNNING]

    def task_finished(self) -> None:
        """Hook called by :meth:`Task.complete`."""
        self._finished_count += 1
        if self._finished_count > len(self.tasks):
            raise RuntimeError(f"phase {self.name}: finished-count overflow")

    def task_left_pending(self) -> None:
        """Hook called by :meth:`Task.add_copy`/:meth:`Task.complete`
        when a task leaves the PENDING state.  (A task re-enters it only
        through :meth:`Task.requeue`, when a fault orphaned it.)"""
        self._pending_count -= 1
        if self._pending_count < 0:
            raise RuntimeError(f"phase {self.name}: pending-count underflow")

    def task_requeued(self) -> None:
        """Hook called by :meth:`Task.requeue`: a fault-orphaned task
        re-entered the PENDING state."""
        self._pending_count += 1
        if self._pending_count > len(self.tasks):
            raise RuntimeError(f"phase {self.name}: pending-count overflow")

    @property
    def num_unfinished(self) -> int:
        """n_j^k(t) of Eq. (16)."""
        return len(self.tasks) - self._finished_count

    @property
    def num_pending(self) -> int:
        """Tasks with no copy launched yet — O(1), not a scan."""
        return self._pending_count

    @property
    def num_running(self) -> int:
        """Tasks launched but not finished — O(1), not a scan."""
        return len(self.tasks) - self._finished_count - self._pending_count

    @property
    def is_finished(self) -> bool:
        return self._finished_count == len(self.tasks)

    def finish_time(self) -> Optional[float]:
        """λ_j^k — when the last task finished, or None if unfinished."""
        if not self.is_finished:
            return None
        return max(t.finish_time for t in self.tasks)  # type: ignore[type-var]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        jid = self.job.job_id if self.job is not None else "?"
        return f"Phase(j={jid}, k={self.index}, n={self.num_tasks}, θ={self.theta:g})"


def _default_speedup(dist: ExecutionTimeDistribution) -> SpeedupFunction:
    """Derive the speedup function the scheduler should assume.

    Per Sec. 3, DollyMP fits a Pareto to the reported (θ, σ) — even when
    the true distribution is not Pareto — and uses Eq. (3).  Degenerate
    (zero-variance) phases get :class:`NoSpeedup`, matching the fact that
    cloning a deterministic task cannot help.
    """
    if isinstance(dist, Deterministic) or dist.std == 0:
        return NoSpeedup()
    std = dist.std
    if std == float("inf"):
        # Heavy tail with infinite variance: fit with cv=2 as a pragmatic
        # stand-in (α → small, speedup bound large).
        std = 2.0 * dist.mean
    return ParetoSpeedup.from_moments(dist.mean, std)
