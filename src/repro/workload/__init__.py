"""Workload model: tasks, phases, DAG jobs, execution-time distributions,
speedup functions, synthetic Google-trace generation and MapReduce-style
job builders."""

from repro.workload.distributions import (
    ExecutionTimeDistribution,
    Deterministic,
    ParetoType1,
    LogNormal,
    ShiftedExponential,
    EmpiricalDistribution,
)
from repro.workload.speedup import (
    SpeedupFunction,
    ParetoSpeedup,
    NoSpeedup,
    TabulatedSpeedup,
    required_clones,
)
from repro.workload.task import Task, TaskCopy, TaskState
from repro.workload.phase import Phase
from repro.workload.job import Job
from repro.workload.mapreduce import wordcount_job, pagerank_job, mapreduce_job
from repro.workload.google_trace import (
    GoogleTraceGenerator,
    TraceJobSpec,
    save_trace,
    load_trace,
    jobs_from_specs,
)
from repro.workload.arrivals import (
    fixed_interarrival,
    poisson_arrivals,
    arrivals_from_list,
)

__all__ = [
    "ExecutionTimeDistribution",
    "Deterministic",
    "ParetoType1",
    "LogNormal",
    "ShiftedExponential",
    "EmpiricalDistribution",
    "SpeedupFunction",
    "ParetoSpeedup",
    "NoSpeedup",
    "TabulatedSpeedup",
    "required_clones",
    "Task",
    "TaskCopy",
    "TaskState",
    "Phase",
    "Job",
    "wordcount_job",
    "pagerank_job",
    "mapreduce_job",
    "GoogleTraceGenerator",
    "TraceJobSpec",
    "save_trace",
    "load_trace",
    "jobs_from_specs",
    "fixed_interarrival",
    "poisson_arrivals",
    "arrivals_from_list",
]
