"""Tasks and task copies (originals and clones).

A :class:`Task` is the unit of scheduling; launching it on a server
creates a :class:`TaskCopy`.  Cloning launches additional copies of the
same task — the paper's semantics are *first-copy-wins*: the task
finishes when its earliest copy finishes and the remaining copies are
killed (Secs. 3 and 5).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

from repro.resources import Resources

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.phase import Phase

__all__ = ["Task", "TaskCopy", "TaskState"]

_copy_counter = itertools.count()


class TaskState(enum.Enum):
    PENDING = "pending"      # no copy launched yet
    RUNNING = "running"      # >= 1 live copy
    FINISHED = "finished"    # first copy completed


class TaskCopy:
    """One execution attempt of a task on a specific server."""

    __slots__ = (
        "copy_uid",
        "task",
        "server_id",
        "start_time",
        "duration",
        "is_clone",
        "_killed",
        "_finished",
    )

    def __init__(
        self,
        task: "Task",
        server_id: int,
        start_time: float,
        duration: float,
        *,
        is_clone: bool,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"copy duration must be positive, got {duration}")
        self.copy_uid = next(_copy_counter)
        self.task = task
        self.server_id = server_id
        self.start_time = float(start_time)
        self.duration = float(duration)
        self.is_clone = is_clone
        self._killed = False
        self._finished = False

    @property
    def finish_time(self) -> float:
        return self.start_time + self.duration

    @property
    def live(self) -> bool:
        return not self._killed and not self._finished

    # killed/finished are setters so the owning task's live-copy counter
    # (read on every cloning decision) stays in sync automatically.
    @property
    def killed(self) -> bool:
        return self._killed

    @killed.setter
    def killed(self, value: bool) -> None:
        if value and self.live:
            self.task._live_count -= 1
        self._killed = value

    @property
    def finished(self) -> bool:
        return self._finished

    @finished.setter
    def finished(self, value: bool) -> None:
        if value and self.live:
            self.task._live_count -= 1
        self._finished = value

    def __hash__(self) -> int:
        return self.copy_uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "clone" if self.is_clone else "orig"
        return (
            f"TaskCopy({self.task.uid}/{kind}@{self.server_id}, "
            f"t={self.start_time:g}+{self.duration:g})"
        )


class Task:
    """A single task of a job phase.

    Tasks of a phase share the phase's resource demand and execution-time
    statistics (Sec. 3); each carries its own copies and completion state.
    """

    __slots__ = (
        "phase",
        "index",
        "copies",
        "state",
        "finish_time",
        "preferred_servers",
        "fault_losses",
        "_live_count",
    )

    def __init__(self, phase: "Phase", index: int) -> None:
        self.phase = phase
        self.index = index
        self.copies: list[TaskCopy] = []
        self.state = TaskState.PENDING
        self.finish_time: Optional[float] = None
        #: Servers holding this task's input replicas (data locality);
        #: empty means unconstrained.
        self.preferred_servers: tuple[int, ...] = ()
        #: Copies lost to injected faults (server crashes / copy
        #: failures).  Lifetime copy caps subtract this, so a task that
        #: lost work to a fault may be relaunched without tripping the
        #: ``max_copies_per_task`` guard.
        self.fault_losses = 0
        # Live-copy counter, kept in sync by add_copy/copy_ended — read
        # on every cloning decision, so it must not be a scan.
        self._live_count = 0

    # ------------------------------------------------------------------
    @property
    def uid(self) -> tuple[int, int, int]:
        """(job_id, phase_index, task_index) — globally unique."""
        return (self.phase.job.job_id, self.phase.index, self.index)

    @property
    def demand(self) -> Resources:
        return self.phase.demand

    @property
    def job(self):
        return self.phase.job

    # ------------------------------------------------------------------
    def live_copies(self) -> list[TaskCopy]:
        return [c for c in self.copies if c.live]

    @property
    def num_live_copies(self) -> int:
        return self._live_count

    @property
    def has_run(self) -> bool:
        return bool(self.copies)

    @property
    def start_time(self) -> Optional[float]:
        """When the first copy was launched (None when pending)."""
        if not self.copies:
            return None
        return min(c.start_time for c in self.copies)

    def add_copy(self, copy: TaskCopy) -> None:
        if self.state is TaskState.FINISHED:
            raise RuntimeError(f"task {self.uid} already finished")
        self.copies.append(copy)
        self._live_count += 1
        if self.state is TaskState.PENDING:
            self.phase.task_left_pending()
        self.state = TaskState.RUNNING

    def requeue(self) -> None:
        """Return an orphaned task to PENDING (fault recovery).

        Called by the engine when a fault killed the task's last live
        copy: the task re-enters the pending pool and schedulers place
        it again like any never-launched task.  Dead copies stay in
        ``copies`` — their occupancy already counted toward the run's
        resource usage.
        """
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(
                f"task {self.uid}: cannot requeue from state {self.state.value}"
            )
        if self._live_count != 0:
            raise RuntimeError(
                f"task {self.uid}: requeue with {self._live_count} live copies"
            )
        self.state = TaskState.PENDING
        self.phase.task_requeued()

    def complete(self, time: float) -> None:
        """Mark the task finished at ``time`` (first copy won)."""
        if self.state is TaskState.FINISHED:
            raise RuntimeError(f"task {self.uid} finished twice")
        if self.state is TaskState.PENDING:
            self.phase.task_left_pending()
        self.state = TaskState.FINISHED
        self.finish_time = time
        self.phase.task_finished()

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task{self.uid}[{self.state.value}, copies={len(self.copies)}]"
