"""Synthetic Google-cluster trace generation and trace file I/O.

The paper's workload suite and 30K-server simulations replay Google
cluster traces [Reiss et al. 2011], which are not redistributable here.
We therefore synthesize traces matching every statistic the paper quotes:

* the traces provide *job size* (total task count) and per-task CPU and
  memory demands (Sec. 6.2);
* "95% of jobs are small" (Sec. 1, quoting the Google trace analysis);
* task times within a phase "can vary substantially (the stragglers could
  be 20× slow as the normal tasks)" and "70% of job phases contain a
  fraction of more than 15% task stragglers" (Sec. 6.3).

:class:`GoogleTraceGenerator` emits :class:`TraceJobSpec` records —
schema-compatible with a JSON trace file, so a real trace converted to
the same JSON can be replayed through :func:`load_trace` unchanged.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.resources import Resources
from repro.workload.distributions import ParetoType1
from repro.workload.job import Job
from repro.workload.phase import Phase

__all__ = [
    "PhaseSpec",
    "TraceJobSpec",
    "GoogleTraceGenerator",
    "jobs_from_specs",
    "job_from_spec",
    "save_trace",
    "load_trace",
    "spec_to_dict",
    "spec_from_dict",
]


@dataclass(frozen=True)
class PhaseSpec:
    """Serializable description of one phase."""

    num_tasks: int
    cpu: float
    mem: float
    theta: float
    sigma: float
    parents: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.theta <= 0:
            raise ValueError("theta must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")


@dataclass(frozen=True)
class TraceJobSpec:
    """Serializable description of one job.

    ``job_id`` is optional for compatibility with pre-existing trace
    files; when present it pins the materialized Job's identity, which
    streamed/restarted sessions need (the process-local fallback counter
    is not stable across restore legs)."""

    name: str
    arrival_time: float
    phases: tuple[PhaseSpec, ...] = field(default_factory=tuple)
    job_id: int | None = None

    def num_tasks(self) -> int:
        return sum(p.num_tasks for p in self.phases)


# Discrete demand menu mirroring the bucketed CPU/memory requests of the
# Google traces (values in cores / GB); weights skew toward small requests.
# Frozen: shared module state must stay immutable (repro-lint RL014).
_DEMAND_MENU: tuple[tuple[float, float, float], ...] = (
    # (cpu, mem, weight)
    (0.5, 1.0, 0.25),
    (1.0, 2.0, 0.40),
    (2.0, 4.0, 0.22),
    (4.0, 8.0, 0.10),
    (8.0, 16.0, 0.03),
)


class GoogleTraceGenerator:
    """Generates synthetic Google-trace-like job specs.

    Parameters
    ----------
    seed:
        RNG seed; every call sequence is reproducible.
    straggler_phase_fraction:
        Fraction of phases that are straggler-prone (paper: 0.70).
    straggler_cv:
        Coefficient of variation of task times in straggler-prone phases.
        A fitted Pareto with cv = 1.0 has tail index α ≈ 2.41, putting the
        99.9th percentile near 20× the minimum — the paper's extreme.
    normal_cv:
        cv of well-behaved phases.
    mean_theta:
        Median-ish task duration scale (seconds).  The default 30 s is in
        line with the paper's 5 s scheduling slot being "comparable to the
        duration of small tasks".
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        straggler_phase_fraction: float = 0.70,
        straggler_cv: float = 1.0,
        normal_cv: float = 0.2,
        mean_theta: float = 30.0,
    ) -> None:
        if not 0.0 <= straggler_phase_fraction <= 1.0:
            raise ValueError("straggler_phase_fraction must be in [0, 1]")
        self.rng = np.random.default_rng(seed)
        self.straggler_phase_fraction = straggler_phase_fraction
        self.straggler_cv = straggler_cv
        self.normal_cv = normal_cv
        self.mean_theta = mean_theta

    # ------------------------------------------------------------------
    def sample_job_size(self) -> int:
        """Heavy-tailed total task count: mostly small jobs, a thin tail
        of large ones (95% small, as the trace analysis reports)."""
        u = self.rng.random()
        if u < 0.60:
            return int(self.rng.integers(1, 11))          # tiny: 1-10 tasks
        if u < 0.90:
            return int(self.rng.integers(11, 101))        # small: 11-100
        if u < 0.99:
            return int(self.rng.integers(101, 501))       # medium
        return int(self.rng.integers(501, 2001))          # large tail

    def sample_demand(self) -> Resources:
        weights = np.array([w for _, _, w in _DEMAND_MENU])
        k = int(self.rng.choice(len(_DEMAND_MENU), p=weights / weights.sum()))
        cpu, mem, _ = _DEMAND_MENU[k]
        return Resources.of(cpu, mem)

    def sample_theta(self) -> float:
        """Lognormal task duration around ``mean_theta`` with a wide body;
        95% of resulting *jobs* stay far below the two-hour mark."""
        return float(self.rng.lognormal(np.log(self.mean_theta), 0.8))

    def sample_num_phases(self) -> int:
        u = self.rng.random()
        if u < 0.40:
            return 1
        if u < 0.85:
            return 2
        return int(self.rng.integers(3, 6))

    def make_job_spec(self, arrival_time: float, index: int) -> TraceJobSpec:
        n_tasks = self.sample_job_size()
        n_phases = min(self.sample_num_phases(), n_tasks)
        # Split tasks across phases: first phase (map-like) largest.
        splits = self.rng.dirichlet(np.linspace(2.0, 1.0, n_phases)) * n_tasks
        counts = np.maximum(1, np.round(splits).astype(int))
        phases: list[PhaseSpec] = []
        for k in range(n_phases):
            demand = self.sample_demand()
            theta = self.sample_theta()
            straggly = self.rng.random() < self.straggler_phase_fraction
            cv = self.straggler_cv if straggly else self.normal_cv
            phases.append(
                PhaseSpec(
                    num_tasks=int(counts[k]),
                    cpu=demand.cpu,
                    mem=demand.mem,
                    theta=theta,
                    sigma=cv * theta,
                    parents=(k - 1,) if k > 0 else (),
                )
            )
        return TraceJobSpec(
            name=f"trace-job-{index}",
            arrival_time=float(arrival_time),
            phases=tuple(phases),
        )

    def generate(
        self,
        num_jobs: int,
        *,
        mean_interarrival: float = 20.0,
        start: float = 0.0,
    ) -> list[TraceJobSpec]:
        """Generate ``num_jobs`` specs with exponential inter-arrivals."""
        if num_jobs < 0:
            raise ValueError("num_jobs must be non-negative")
        if mean_interarrival < 0:
            raise ValueError("mean_interarrival must be non-negative")
        t = start
        specs: list[TraceJobSpec] = []
        for i in range(num_jobs):
            specs.append(self.make_job_spec(t, i))
            if mean_interarrival > 0:
                t += float(self.rng.exponential(mean_interarrival))
        return specs


# ----------------------------------------------------------------------
# Spec → Job materialization
# ----------------------------------------------------------------------
def jobs_from_specs(specs: Sequence[TraceJobSpec]) -> list[Job]:
    """Materialize :class:`Job` objects (Pareto-fitted task times)."""
    jobs: list[Job] = []
    for spec in specs:
        phases = []
        for k, ps in enumerate(spec.phases):
            if ps.sigma > 0:
                dist = ParetoType1.from_moments(ps.theta, ps.sigma)
            else:
                from repro.workload.distributions import Deterministic

                dist = Deterministic(ps.theta)
            phases.append(
                Phase(
                    k,
                    ps.num_tasks,
                    Resources.of(ps.cpu, ps.mem),
                    dist,
                    parents=tuple(ps.parents),
                    name=f"{spec.name}-p{k}",
                )
            )
        jobs.append(
            Job(
                phases,
                arrival_time=spec.arrival_time,
                name=spec.name,
                job_id=spec.job_id,
            )
        )
    return jobs


def job_from_spec(spec: TraceJobSpec) -> Job:
    """Materialize a single spec (streaming-source counterpart of
    :func:`jobs_from_specs`)."""
    return jobs_from_specs([spec])[0]


# ----------------------------------------------------------------------
# Trace file I/O (JSON) — real traces converted to this schema replay
# identically through the same path.
# ----------------------------------------------------------------------
def save_trace(specs: Sequence[TraceJobSpec], path: str | Path) -> None:
    payload = {
        "format": "repro-trace-v1",
        "jobs": [spec_to_dict(s) for s in specs],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def spec_to_dict(spec: TraceJobSpec) -> dict:
    """One spec as a plain JSON-ready dict (trace files, JSONL lines)."""
    d = {**asdict(spec), "phases": [asdict(p) for p in spec.phases]}
    if spec.job_id is None:
        del d["job_id"]  # keep old-schema files byte-stable
    return d


def spec_from_dict(j: dict) -> TraceJobSpec:
    """Parse one job-spec dict — the shared decoder for trace-file
    entries and JSONL stream lines."""
    phases = tuple(
        PhaseSpec(
            num_tasks=p["num_tasks"],
            cpu=p["cpu"],
            mem=p["mem"],
            theta=p["theta"],
            sigma=p["sigma"],
            parents=tuple(p["parents"]),
        )
        for p in j["phases"]
    )
    return TraceJobSpec(
        name=j["name"],
        arrival_time=j["arrival_time"],
        phases=phases,
        job_id=j.get("job_id"),
    )


def load_trace(path: str | Path) -> list[TraceJobSpec]:
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-trace-v1":
        raise ValueError(f"unrecognized trace format in {path}")
    return [spec_from_dict(j) for j in payload["jobs"]]
