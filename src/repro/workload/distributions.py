"""Task execution-time distributions.

The paper characterizes each phase's task time Θ by a mean θ and standard
deviation σ known at job arrival (Sec. 3) and fits a Type-I Pareto
distribution to derive the cloning speedup function (Eqs. 2–3).  This
module provides that Pareto model (with the closed-form moment fit), the
deterministic model used in the no-straggler discussion after Thm. 2, and
two alternatives (lognormal, shifted-exponential) that the straggler
literature also uses, so benches can test robustness of the cloning
policy to the fitted family being wrong.

All distributions sample through an explicit ``numpy.random.Generator``
for reproducibility and vectorize via ``sample_many`` in hot paths.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "ExecutionTimeDistribution",
    "Deterministic",
    "ParetoType1",
    "LogNormal",
    "ShiftedExponential",
    "EmpiricalDistribution",
]


@runtime_checkable
class ExecutionTimeDistribution(Protocol):
    """Protocol for task execution-time models."""

    @property
    def mean(self) -> float:  # θ in the paper
        ...

    @property
    def std(self) -> float:  # σ in the paper
        ...

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one execution time (> 0)."""
        ...

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` execution times at once."""
        ...


class Deterministic:
    """A fixed execution time — the no-straggler regime (Thm. 2 discussion)."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"execution time must be positive, got {value}")
        self.value = float(value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def std(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    def __repr__(self) -> str:
        return f"Deterministic({self.value:g})"


class ParetoType1:
    """Type-I Pareto: Pr{Θ > x} = (x_m / x)^α for x ≥ x_m (Eq. 2).

    Mean exists for α > 1 (θ = α·x_m/(α−1)); variance for α > 2
    (σ² = α·x_m² / ((α−1)²(α−2))).
    """

    __slots__ = ("x_m", "alpha")

    def __init__(self, x_m: float, alpha: float) -> None:
        if x_m <= 0:
            raise ValueError(f"x_m must be positive, got {x_m}")
        if alpha <= 1:
            raise ValueError(f"alpha must exceed 1 for a finite mean, got {alpha}")
        self.x_m = float(x_m)
        self.alpha = float(alpha)

    @property
    def mean(self) -> float:
        return self.alpha * self.x_m / (self.alpha - 1.0)

    @property
    def std(self) -> float:
        a = self.alpha
        if a <= 2:
            return math.inf
        return self.x_m * math.sqrt(a / (a - 2.0)) / (a - 1.0)

    def sample(self, rng: np.random.Generator) -> float:
        # Inverse CDF: x = x_m * U^{-1/α}
        u = rng.random()
        # rng.random() ∈ [0, 1); guard the measure-zero exact 0.
        if u == 0.0:
            u = np.nextafter(0.0, 1.0)
        return self.x_m * u ** (-1.0 / self.alpha)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        u[u == 0.0] = np.nextafter(0.0, 1.0)
        return self.x_m * u ** (-1.0 / self.alpha)

    def survival(self, x: float) -> float:
        """Pr{Θ > x} — Eq. (2)."""
        if x <= self.x_m:
            return 1.0
        return (self.x_m / x) ** self.alpha

    def min_of(self, r: int) -> "ParetoType1":
        """Distribution of the minimum of ``r`` i.i.d. copies.

        The minimum of r Type-I Paretos with tail index α is Type-I Pareto
        with tail index r·α — the fact behind the cloning speedup.
        """
        if r < 1:
            raise ValueError("need at least one copy")
        return ParetoType1(self.x_m, self.alpha * r)

    @staticmethod
    def from_moments(mean: float, std: float) -> "ParetoType1":
        """Fit (x_m, α) from a mean and standard deviation.

        With cv = σ/θ, the Pareto coefficient of variation satisfies
        cv² = 1 / (α(α−2)), giving α = 1 + sqrt(1 + 1/cv²) and
        x_m = θ(α−1)/α.  Requires σ > 0 (use :class:`Deterministic` for
        σ = 0) and yields α > 2 always, so the fitted model has finite
        variance matching the inputs.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if std <= 0:
            raise ValueError("std must be positive; use Deterministic for std == 0")
        t = (mean / std) ** 2  # = 1/cv² = α(α−2)
        # α = 1 + sqrt(1 + t) squanders the significant bits of α − 2
        # when t is tiny (huge cv), and the fitted variance depends on
        # exactly that difference.  sqrt(1 + t) − 1 = t/(1 + sqrt(1 + t))
        # computes the excess over 2 without cancellation.
        alpha = 2.0 + t / (1.0 + math.sqrt(1.0 + t))
        x_m = mean * (alpha - 1.0) / alpha
        return ParetoType1(x_m, alpha)

    def __repr__(self) -> str:
        return f"ParetoType1(x_m={self.x_m:g}, alpha={self.alpha:g})"


class LogNormal:
    """Lognormal execution time, fitted from a mean and standard deviation."""

    __slots__ = ("mu", "sigma", "_mean", "_std")

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self._mean = math.exp(mu + sigma**2 / 2.0)
        self._std = self._mean * math.sqrt(math.expm1(sigma**2))

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return self._std

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    @staticmethod
    def from_moments(mean: float, std: float) -> "LogNormal":
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        sigma2 = math.log1p((std / mean) ** 2)
        mu = math.log(mean) - sigma2 / 2.0
        return LogNormal(mu, math.sqrt(sigma2))

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu:g}, sigma={self.sigma:g})"


class ShiftedExponential:
    """shift + Exp(rate): a common straggler model (constant work plus an
    exponential slowdown tail)."""

    __slots__ = ("shift", "rate")

    def __init__(self, shift: float, rate: float) -> None:
        if shift < 0:
            raise ValueError(f"shift must be non-negative, got {shift}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.shift = float(shift)
        self.rate = float(rate)

    @property
    def mean(self) -> float:
        return self.shift + 1.0 / self.rate

    @property
    def std(self) -> float:
        return 1.0 / self.rate

    def sample(self, rng: np.random.Generator) -> float:
        return self.shift + float(rng.exponential(1.0 / self.rate))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.shift + rng.exponential(1.0 / self.rate, size=n)

    def __repr__(self) -> str:
        return f"ShiftedExponential(shift={self.shift:g}, rate={self.rate:g})"


class EmpiricalDistribution:
    """Resample from observed task durations.

    The paper's trace simulator "set[s] the running time of each clone to
    be the same as that of a task randomly chosen from the same job phase"
    (Sec. 6.3) — this class implements exactly that sampling scheme and is
    also used to replay measured per-phase duration samples from traces.
    """

    __slots__ = ("values", "_mean", "_std")

    def __init__(self, values: Sequence[float]) -> None:
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError("empirical distribution needs at least one value")
        if np.any(arr <= 0):
            raise ValueError("execution times must be positive")
        self.values = arr
        self._mean = float(arr.mean())
        # ddof=0: these are the population moments the scheduler is given.
        self._std = float(arr.std())

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return self._std

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.values[rng.integers(0, self.values.size)])

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        idx = rng.integers(0, self.values.size, size=n)
        return self.values[idx]

    def __repr__(self) -> str:
        return f"EmpiricalDistribution(n={self.values.size}, mean={self._mean:g})"
