"""Deterministic raw-trace fixture generation.

Real traces are hundreds of gigabytes and not redistributable, so the
repo commits only ~200-row excerpts per schema
(``tests/fixtures/traces/``) and *materializes* anything larger on
demand from this seeded generator: same (schema, rows, seed) → byte
identical file, on any machine, forever.  CI caches the materialized
fixtures keyed on a fingerprint of this module's source
(:func:`generator_fingerprint`), so the 1M-row ingestion benchmark
never regenerates unless the generator itself changes.

The synthetic traffic is shaped like the published statistics: jobs
arrive in a Poisson stream, task counts are heavy-tailed small, task
durations are lognormal around a minute, and requests draw from a
bucketed menu.  Event rows are emitted through a bounded merge heap, so
generation is itself O(active jobs) in memory — a 1M-row fixture
streams to disk without ever existing in RAM.
"""

from __future__ import annotations

import gzip
import hashlib
import heapq
import io
import json
from pathlib import Path
from types import MappingProxyType
from typing import Callable, Iterator, Mapping

import numpy as np

__all__ = [
    "FIXTURE_SCHEMAS",
    "fixture_filename",
    "write_fixture",
    "materialize",
    "generator_fingerprint",
]

FIXTURE_SCHEMAS: tuple[str, ...] = ("google2011", "google2019", "alibaba2018")

# Frozen: shared module state must stay immutable (repro-lint RL014).
_EXT: Mapping[str, str] = MappingProxyType(
    {"google2011": "csv.gz", "google2019": "jsonl", "alibaba2018": "csv"}
)

_US = 1_000_000  # seconds → microseconds for Google timestamps


def fixture_filename(schema: str, rows: int, seed: int) -> str:
    """Canonical fixture name, parameterized so caches never collide."""
    return f"{schema}-r{rows}-s{seed}.{_EXT[schema]}"


def generator_fingerprint() -> str:
    """sha256 of this module's source — the CI fixture-cache key."""
    return hashlib.sha256(Path(__file__).read_bytes()).hexdigest()


# ----------------------------------------------------------------------
# Shared synthetic job model
# ----------------------------------------------------------------------
def _job_stream(rng: np.random.Generator) -> Iterator[dict]:
    """Endless arrival-ordered jobs: tasks, durations, demands, phases."""
    t = 0.0
    ordinal = 0
    while True:
        n_tasks = int(1 + min(rng.geometric(0.18), 60))
        wait = float(rng.exponential(2.0))
        durations = rng.lognormal(np.log(60.0), 0.7, size=n_tasks)
        # A slice of straggler-prone jobs gets a stretched tail task.
        if rng.random() < 0.6 and n_tasks > 1:
            durations[int(rng.integers(n_tasks))] *= float(
                rng.uniform(3.0, 20.0)
            )
        cpu = float(rng.choice((0.02, 0.05, 0.1, 0.25, 0.5)))
        mem = float(rng.choice((0.01, 0.05, 0.1, 0.2, 0.4)))
        n_phases = int(rng.integers(1, 4))
        yield {
            "ordinal": ordinal,
            "arrival": t,
            "n_tasks": n_tasks,
            "wait": wait,
            "durations": [round(float(d), 3) for d in durations],
            "cpu": cpu,
            "mem": mem,
            "n_phases": n_phases,
        }
        ordinal += 1
        t += float(rng.exponential(30.0))


def _merge_rows(
    rng: np.random.Generator,
    rows_of_job: Callable[[dict], list[tuple[float, str]]],
    limit: int,
) -> Iterator[str]:
    """Merge per-job (time, line) events into one time-sorted stream.

    Jobs arrive in time order and every event of a job is at or after
    its arrival, so popping the heap up to the next arrival yields a
    globally sorted stream while holding only in-flight jobs' events.
    """
    heap: list[tuple[float, int, str]] = []
    seq = 0
    emitted = 0
    for job in _job_stream(rng):
        while heap and heap[0][0] <= job["arrival"]:
            yield heapq.heappop(heap)[2]
            emitted += 1
            if emitted >= limit:
                return
        for when, line in rows_of_job(job):
            heapq.heappush(heap, (when, seq, line))
            seq += 1
    # unreachable: _job_stream is endless; the return above terminates.


# ----------------------------------------------------------------------
# Per-schema row renderers
# ----------------------------------------------------------------------
def _google2011_rows(job: dict) -> list[tuple[float, str]]:
    job_id = 6_250_000_000 + job["ordinal"]
    user = f"user{job['ordinal'] % 97}"
    out: list[tuple[float, str]] = []
    for i in range(job["n_tasks"]):
        submit = job["arrival"]
        schedule = submit + job["wait"]
        finish = schedule + job["durations"][i]
        for when, code in ((submit, 0), (schedule, 1), (finish, 4)):
            out.append(
                (
                    when,
                    f"{int(when * _US)},,{job_id},{i},,{code},{user},2,1,"
                    f"{job['cpu']:g},{job['mem']:g},,\n",
                )
            )
    return out


def _google2019_rows(job: dict) -> list[tuple[float, str]]:
    collection = 380_000_000_000 + job["ordinal"]
    out: list[tuple[float, str]] = []
    for i in range(job["n_tasks"]):
        submit = job["arrival"]
        schedule = submit + job["wait"]
        finish = schedule + job["durations"][i]
        for when, kind in (
            (submit, "SUBMIT"),
            (schedule, "SCHEDULE"),
            (finish, "FINISH"),
        ):
            obj = {
                "time": int(when * _US),
                "collection_id": str(collection),
                "instance_index": i,
                "type": kind,
                "resource_request": {"cpus": job["cpu"], "memory": job["mem"]},
            }
            out.append((when, json.dumps(obj, sort_keys=True) + "\n"))
    return out


def _alibaba2018_rows(job: dict) -> list[tuple[float, str]]:
    job_name = f"j_{job['ordinal']}"
    n_phases = min(job["n_phases"], job["n_tasks"])
    per_phase = max(1, job["n_tasks"] // n_phases)
    out: list[tuple[float, str]] = []
    start = job["arrival"]
    for k in range(1, n_phases + 1):
        duration = max(1.0, job["durations"][(k - 1) % len(job["durations"])])
        end = start + duration
        task_name = f"M{k}" if k == 1 else f"R{k}_{k - 1}"
        plan_cpu = job["cpu"] * 1000.0  # fractions → percent-of-core units
        plan_mem = job["mem"] * 100.0  # fractions → normalized [0, 100]
        out.append(
            (
                start,
                f"{task_name},{per_phase},{job_name},1,Terminated,"
                f"{start:.1f},{end:.1f},{plan_cpu:g},{plan_mem:g}\n",
            )
        )
        start = end + 1.0
    return out


#: Frozen: shared module state must stay immutable (repro-lint RL014).
_RENDERERS: Mapping[str, Callable[[dict], list[tuple[float, str]]]] = (
    MappingProxyType({
        "google2011": _google2011_rows,
        "google2019": _google2019_rows,
        "alibaba2018": _alibaba2018_rows,
    })
)


# ----------------------------------------------------------------------
# File writers
# ----------------------------------------------------------------------
def write_fixture(
    schema: str, path: str | Path, *, rows: int, seed: int = 0
) -> int:
    """Write exactly ``rows`` trace rows of ``schema`` to ``path``.

    Byte-deterministic: the gzip member is written with ``mtime=0`` and
    no filename, so identical parameters produce identical files.
    Returns the number of rows written.
    """
    if schema not in FIXTURE_SCHEMAS:
        raise ValueError(
            f"unknown fixture schema {schema!r}; choose from {FIXTURE_SCHEMAS}"
        )
    if rows < 1:
        raise ValueError("rows must be >= 1")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(seed)
    lines = _merge_rows(rng, _RENDERERS[schema], rows)
    tmp = path.with_name(path.name + ".tmp")
    written = 0
    with open(tmp, "wb") as fh:
        if path.name.endswith(".gz"):
            with gzip.GzipFile(
                filename="", mode="wb", fileobj=fh, mtime=0
            ) as gz, io.TextIOWrapper(gz, encoding="utf-8") as text:
                for line in lines:
                    text.write(line)
                    written += 1
        else:
            with io.TextIOWrapper(fh, encoding="utf-8") as text:
                for line in lines:
                    text.write(line)
                    written += 1
    tmp.replace(path)
    return written


def materialize(
    out_dir: str | Path,
    *,
    rows: int,
    seed: int = 0,
    schemas: tuple[str, ...] = FIXTURE_SCHEMAS,
) -> dict[str, Path]:
    """Ensure fixtures exist under ``out_dir``; skip files already there.

    The skip makes CI cache restores free: a cache hit means every file
    exists and nothing is regenerated.  Returns schema → path.
    """
    out_dir = Path(out_dir)
    paths: dict[str, Path] = {}
    for schema in schemas:
        target = out_dir / fixture_filename(schema, rows, seed)
        if not target.exists():
            write_fixture(schema, target, rows=rows, seed=seed)
        paths[schema] = target
    return paths
