"""Streaming trace-row → :class:`TraceJobSpec` normalization.

The assembler consumes the uniform :class:`~.readers.TraceRow` stream
and emits fully-formed job specs in non-decreasing arrival order — the
contract every :class:`~repro.workload.arrivals.ArrivalSource` needs —
while holding only *open* jobs in memory.  Peak RSS is therefore a
function of trace **concurrency** (jobs in flight at once, plus the
reorder window), not of trace **length**: a 200-row excerpt and a
200-million-row month cost the same working set.

Pipeline stages, all single-pass:

1. **Ordering** — rows may arrive up to ``reorder_window`` seconds out
   of order (Alibaba's batch_task table interleaves by job, not time);
   a min-heap delays each row until the watermark passes.  A row older
   than the watermark is an *out-of-order timestamp* error, never a
   silent drop.
2. **Assembly** — per-job builders accumulate task events (Google) or
   task groups (Alibaba).  Duplicate task submissions / duplicate task
   groups and rows for already-emitted jobs are *duplicate id* errors.
3. **Demand scaling** — raw schema units map deterministically to
   cores/GB via a per-schema :class:`DemandScale`; a request exceeding
   the schema's machine capacity is a *capacity* error.
4. **Finalization** — a job closes once the watermark passes ``linger``
   seconds of job inactivity while no task is running, or at end of
   stream.  Closure is never eager: a Google job may submit more tasks
   after the current ones all finished, and a scheduled task may run for
   days before its FINISH row, so only sustained *idle* silence (or EOF)
   ends a job.
5. **Emission** — closed jobs wait in an arrival-ordered pending heap
   until no open or future job can precede them, then stream out with
   dense stream-ordinal ``job_id``s (0, 1, 2, …).

Every numeric derivation (θ from the observed duration mean, σ from the
population standard deviation, demand means) is a pure function of the
input bytes, so two ingestions of the same file are byte-identical —
the property the ``trace-smoke`` CI gate pins.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from repro.workload.google_trace import PhaseSpec, TraceJobSpec
from repro.workload.ingest.errors import TraceFormatError
from repro.workload.ingest.readers import TraceReader, TraceRow

__all__ = [
    "DemandScale",
    "SCHEMA_SCALES",
    "REORDER_WINDOWS",
    "normalize_stream",
]


@dataclass(frozen=True)
class DemandScale:
    """Deterministic raw-units → (cores, GB) mapping for one schema.

    ``max_cpu``/``max_mem`` bound the *raw* request a single row may
    carry — one machine's worth in the schema's own units.  A row above
    the bound is malformed (a task that can never be placed), reported
    as a capacity error rather than scaled down silently.
    ``floor_cpu``/``floor_mem`` replace all-zero requests (common in the
    Google traces for free-tier work) so materialized phases always
    demand some resource.
    """

    cpu: float
    mem: float
    max_cpu: float
    max_mem: float
    floor_cpu: float = 0.05
    floor_mem: float = 0.05

    def apply(self, cpu: float | None, mem: float | None, row: TraceRow,
              *, schema: str, path) -> tuple[float, float]:
        raw_cpu = cpu if cpu is not None else 0.0
        raw_mem = mem if mem is not None else 0.0
        if raw_cpu < 0 or raw_mem < 0:
            raise TraceFormatError(
                f"negative resource request (cpu={raw_cpu:g}, mem={raw_mem:g})",
                path=path, line=row.line, schema=schema,
            )
        if raw_cpu > self.max_cpu or raw_mem > self.max_mem:
            raise TraceFormatError(
                f"resource request exceeds machine capacity "
                f"(cpu={raw_cpu:g}/{self.max_cpu:g}, "
                f"mem={raw_mem:g}/{self.max_mem:g} raw units)",
                path=path, line=row.line, schema=schema,
            )
        scaled_cpu = raw_cpu * self.cpu
        scaled_mem = raw_mem * self.mem
        if scaled_cpu <= 0.0 and scaled_mem <= 0.0:
            return self.floor_cpu, self.floor_mem
        return scaled_cpu, scaled_mem


#: Per-schema scaling.  Google requests are fractions of the largest
#: machine — modelled as 32 cores / 64 GB, matching the simulator's
#: mid-size server classes.  Alibaba plan_cpu is percent-of-core
#: (100 = 1 core, machines are 96 cores) and plan_mem is normalized to
#: 100 = one machine's memory, mapped onto the same 64 GB machine.
#: Frozen: shared module state must stay immutable (repro-lint RL014).
SCHEMA_SCALES: Mapping[str, DemandScale] = MappingProxyType({
    "google2011": DemandScale(cpu=32.0, mem=64.0, max_cpu=1.0, max_mem=1.0),
    "google2019": DemandScale(cpu=32.0, mem=64.0, max_cpu=1.0, max_mem=1.0),
    "alibaba2018": DemandScale(cpu=0.01, mem=0.64, max_cpu=9600.0, max_mem=100.0),
})

#: How far out of time order each schema's rows may legally arrive (s).
#: Google event tables are timestamp-sorted; Alibaba batch_task is
#: grouped by job, so intervals interleave within a generous window.
#: Frozen: shared module state must stay immutable (repro-lint RL014).
REORDER_WINDOWS: Mapping[str, float] = MappingProxyType({
    "google2011": 0.0,
    "google2019": 0.0,
    "alibaba2018": 900.0,
})

#: Emitted-job keys remembered for duplicate detection.  Bounded so the
#: working set stays independent of trace length; duplicates further
#: apart than this many jobs are indistinguishable from new jobs.
CLOSED_KEY_MEMORY = 100_000


class _TaskAcc:
    """Lifecycle accumulator for one Google task."""

    __slots__ = ("cpu", "mem", "scheduled_at", "duration", "done", "running")

    def __init__(self, cpu: float | None, mem: float | None) -> None:
        self.cpu = cpu
        self.mem = mem
        self.scheduled_at: float | None = None
        self.duration: float | None = None
        self.done = False
        self.running = False


class _JobBuilder:
    """Accumulates one trace job until it can be finalized."""

    __slots__ = (
        "key", "arrival", "last_activity", "tasks", "groups", "kind",
        "ordinal", "running",
    )

    def __init__(self, key: str, arrival: float, kind: str, ordinal: int) -> None:
        self.key = key
        self.arrival = arrival
        self.last_activity = arrival
        self.kind = kind
        self.ordinal = ordinal
        # Scheduled-but-unterminated tasks: while > 0 the job is live no
        # matter how long its tasks run, so the linger sweep skips it.
        self.running = 0
        # event-based: task index → _TaskAcc
        self.tasks: dict[int, _TaskAcc] = {}
        # group-based: list of (phase_name, parents, instances, duration,
        #                       cpu, mem) in row order
        self.groups: list[tuple[str, tuple[int, ...], int, float | None,
                                float | None, float | None]] = []

def _mean_std(values: list[float]) -> tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return mean, math.sqrt(max(var, 0.0))


def _build_event_spec(
    builder: _JobBuilder,
    *,
    schema: str,
    epoch: float,
    default_theta: float,
    min_theta: float,
) -> TraceJobSpec:
    """One single-phase spec from a Google task-event job."""
    durations = sorted(
        t.duration for t in builder.tasks.values() if t.duration is not None
    )
    if durations:
        theta, sigma = _mean_std(durations)
    else:
        theta, sigma = default_theta, 0.0
    theta = max(theta, min_theta)
    # Demand: mean scaled request over the submitted tasks (requests
    # were validated and scaled when each task was ingested).
    cpus = [t.cpu for t in builder.tasks.values()]
    mems = [t.mem for t in builder.tasks.values()]
    cpu = sum(cpus) / len(cpus)
    mem = sum(mems) / len(mems)
    phase = PhaseSpec(
        num_tasks=len(builder.tasks),
        cpu=cpu,
        mem=mem,
        theta=theta,
        sigma=sigma,
        parents=(),
    )
    return TraceJobSpec(
        name=f"{schema}-{builder.key}",
        arrival_time=builder.arrival - epoch,
        phases=(phase,),
    )


def _build_group_spec(
    builder: _JobBuilder,
    *,
    schema: str,
    epoch: float,
    default_theta: float,
    min_theta: float,
) -> TraceJobSpec:
    """A DAG spec from an Alibaba task-group job.

    DAG-named groups (``M1``, ``J3_1_2``) are ordered by phase number
    and re-indexed densely; parent references to phases absent from the
    excerpt are dropped (truncation artefact), while a parent that does
    not *precede* its child after ordering is a malformed DAG.  Opaque
    ``task_…`` names become independent phases in row order.
    """
    dag = [g for g in builder.groups if g[0].isdigit()]
    opaque = [g for g in builder.groups if not g[0].isdigit()]
    dag.sort(key=lambda g: int(g[0]))
    rank = {name: i for i, (name, *_rest) in enumerate(dag)}
    phases: list[PhaseSpec] = []
    for i, (name, parents, instances, duration, cpu, mem) in enumerate(dag):
        mapped = tuple(
            sorted(rank[str(p)] for p in parents if str(p) in rank)
        )
        if any(p >= i for p in mapped):
            raise TraceFormatError(
                f"job {builder.key!r}: phase {name} lists a non-preceding "
                f"parent (cyclic or self-referential DAG)",
                schema=schema,
            )
        theta = max(duration if duration is not None else default_theta, min_theta)
        phases.append(
            PhaseSpec(
                num_tasks=instances,
                cpu=cpu if cpu is not None else 0.0,
                mem=mem if mem is not None else 0.0,
                theta=theta,
                sigma=0.0,
                parents=mapped,
            )
        )
    for _name, _parents, instances, duration, cpu, mem in opaque:
        theta = max(duration if duration is not None else default_theta, min_theta)
        phases.append(
            PhaseSpec(
                num_tasks=instances,
                cpu=cpu if cpu is not None else 0.0,
                mem=mem if mem is not None else 0.0,
                theta=theta,
                sigma=0.0,
                parents=(),
            )
        )
    return TraceJobSpec(
        name=f"{schema}-{builder.key}",
        arrival_time=builder.arrival - epoch,
        phases=tuple(phases),
    )


def _ordered(
    rows: Iterable[TraceRow], window: float, *, schema: str, path
) -> Iterator[TraceRow]:
    """Release rows in time order, tolerating ``window`` of disorder."""
    if window <= 0.0:
        last = -math.inf
        for row in rows:
            if row.time < last:
                raise TraceFormatError(
                    f"out-of-order timestamp {row.time:g} after {last:g}",
                    path=path, line=row.line, schema=schema,
                )
            last = row.time
            yield row
        return
    heap: list[tuple[float, int, TraceRow]] = []
    seq = 0
    watermark = -math.inf
    for row in rows:
        if row.time < watermark - window:
            raise TraceFormatError(
                f"out-of-order timestamp {row.time:g} is more than "
                f"{window:g}s behind the stream high-water mark {watermark:g}",
                path=path, line=row.line, schema=schema,
            )
        watermark = max(watermark, row.time)
        heapq.heappush(heap, (row.time, seq, row))
        seq += 1
        while heap and heap[0][0] <= watermark - window:
            yield heapq.heappop(heap)[2]
    while heap:
        yield heapq.heappop(heap)[2]


def normalize_stream(
    reader: TraceReader,
    *,
    scale: DemandScale | None = None,
    window: tuple[float, float] | None = None,
    min_tasks: int | None = None,
    max_tasks: int | None = None,
    max_jobs: int | None = None,
    default_theta: float = 30.0,
    min_theta: float = 1e-3,
    linger: float = 3600.0,
    reorder_window: float | None = None,
    rebase: bool = True,
) -> Iterator[TraceJobSpec]:
    """Stream :class:`TraceJobSpec` records out of a raw trace reader.

    ``window=(start, end)`` keeps only jobs arriving inside the raw-time
    interval (see :func:`~repro.workload.ingest.filters.find_peak_window`)
    and rebases arrivals to the window start.  ``min_tasks``/``max_tasks``
    are the concentrated-task filter; ``max_jobs`` stops the stream
    early (fixture excerpts, smoke runs).  Emitted specs carry dense
    stream-ordinal ``job_id``s and non-decreasing ``arrival_time``.
    """
    schema = reader.schema
    path = reader.path
    if scale is None:
        scale = SCHEMA_SCALES[schema]
    if reorder_window is None:
        reorder_window = REORDER_WINDOWS[schema]

    open_jobs: dict[str, _JobBuilder] = {}
    closed_keys: OrderedDict[str, None] = OrderedDict()
    # Min-heap of finalized specs keyed by (raw arrival, open ordinal):
    # builders open in arrival order, so the tie-break is deterministic.
    pending: list[tuple[float, int, TraceJobSpec]] = []
    opened = 0
    emitted = 0
    epoch: float | None = None

    def remember_closed(key: str) -> None:
        closed_keys[key] = None
        if len(closed_keys) > CLOSED_KEY_MEMORY:
            closed_keys.popitem(last=False)

    def finalize(builder: _JobBuilder) -> None:
        base = epoch if epoch is not None else 0.0
        if window is not None:
            if not (window[0] <= builder.arrival < window[1]):
                remember_closed(builder.key)
                return
            base = window[0] if rebase else 0.0
        if builder.kind == "event":
            spec = _build_event_spec(
                builder, schema=schema, epoch=base,
                default_theta=default_theta, min_theta=min_theta,
            )
        else:
            spec = _build_group_spec(
                builder, schema=schema, epoch=base,
                default_theta=default_theta, min_theta=min_theta,
            )
        remember_closed(builder.key)
        n = spec.num_tasks()
        if min_tasks is not None and n < min_tasks:
            return
        if max_tasks is not None and n > max_tasks:
            return
        heapq.heappush(pending, (builder.arrival, builder.ordinal, spec))

    def releasable() -> Iterator[TraceJobSpec]:
        """Emit pending specs no open job can still precede."""
        nonlocal emitted
        while pending:
            if max_jobs is not None and emitted >= max_jobs:
                return
            arrival = pending[0][0]
            if open_jobs and min(b.arrival for b in open_jobs.values()) < arrival:
                return
            _, _, spec = heapq.heappop(pending)
            spec = replace(spec, job_id=emitted)
            emitted += 1
            yield spec

    def ingest_event(row: TraceRow, builder: _JobBuilder) -> None:
        builder.last_activity = max(builder.last_activity, row.time)
        if row.event == "submit":
            if row.task in builder.tasks:
                raise TraceFormatError(
                    f"duplicate submit for task {row.task} of job "
                    f"{builder.key!r}",
                    path=path, line=row.line, schema=schema,
                )
            cpu, mem = scale.apply(row.cpu, row.mem, row, schema=schema, path=path)
            builder.tasks[row.task] = _TaskAcc(cpu, mem)
            return
        acc = builder.tasks.get(row.task)
        if acc is None:
            # SCHEDULE/FINISH for a task submitted before the excerpt
            # started: open an implicit submission so durations count.
            cpu, mem = scale.apply(row.cpu, row.mem, row, schema=schema, path=path)
            acc = _TaskAcc(cpu, mem)
            builder.tasks[row.task] = acc
        if row.event == "schedule":
            acc.scheduled_at = row.time
            acc.done = False
            if not acc.running:
                acc.running = True
                builder.running += 1
        elif row.event == "finish":
            if acc.scheduled_at is not None:
                acc.duration = row.time - acc.scheduled_at
            acc.done = True
            if acc.running:
                acc.running = False
                builder.running -= 1
        elif row.event == "dead":
            acc.done = True
            if acc.running:
                acc.running = False
                builder.running -= 1

    def ingest_group(row: TraceRow, builder: _JobBuilder) -> None:
        builder.last_activity = max(
            builder.last_activity, row.end if row.end is not None else row.time
        )
        if any(g[0] == row.phase for g in builder.groups):
            raise TraceFormatError(
                f"duplicate task group {row.phase!r} in job {builder.key!r}",
                path=path, line=row.line, schema=schema,
            )
        # Validate the request eagerly so the error names this line.
        cpu, mem = scale.apply(row.cpu, row.mem, row, schema=schema, path=path)
        duration = (row.end - row.time) if row.end is not None else None
        builder.groups.append(
            (row.phase, row.parents, row.instances, duration, cpu, mem)
        )

    # Stale-job sweeps run on a coarse trace-time stride, not per row,
    # so the linger scan costs O(open) once per stride instead of per row.
    sweep_stride = max(linger / 4.0, 1.0)
    next_sweep = -math.inf

    for row in _ordered(reader.rows(), reorder_window, schema=schema, path=path):
        if max_jobs is not None and emitted >= max_jobs:
            return
        if epoch is None and rebase:
            epoch = row.time
        builder = open_jobs.get(row.job)
        if builder is None:
            if row.job in closed_keys:
                raise TraceFormatError(
                    f"duplicate job id {row.job!r}: job was already "
                    "finalized earlier in the stream",
                    path=path, line=row.line, schema=schema,
                )
            # A first-visible event that isn't a submit means the job
            # began before the excerpt; its arrival is the first row seen.
            builder = _JobBuilder(row.job, row.time, row.kind, opened)
            opened += 1
            open_jobs[row.job] = builder
        if row.kind == "event":
            ingest_event(row, builder)
        else:
            ingest_group(row, builder)
        # Jobs close by inactivity (linger), never eagerly: a Google job
        # may submit more tasks after all current ones finished, so
        # "all tasks done" is not evidence the job ended.  A job with a
        # scheduled-but-unterminated task is live however long that task
        # runs — its eventual FINISH row must not hit a closed key.
        if row.time >= next_sweep:
            next_sweep = row.time + sweep_stride
            horizon = row.time - linger
            stale = sorted(
                k for k, b in open_jobs.items()
                if b.running == 0 and b.last_activity < horizon
            )
            for k in stale:
                finalize(open_jobs.pop(k))
        yield from releasable()

    for key in sorted(open_jobs):
        finalize(open_jobs.pop(key))
    yield from releasable()
