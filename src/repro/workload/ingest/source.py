"""`TraceIngestSource` — real traces as a session arrival source.

Wraps any :class:`~repro.workload.google_trace.TraceJobSpec` iterator —
typically :func:`~repro.workload.ingest.normalize.normalize_stream`
over a raw trace file — as a pull-based
:class:`~repro.workload.arrivals.ArrivalSource`, so real cluster
traffic flows through ``run``, ``serve``, checkpoints and replay on the
exact same path as every other workload.  Materialization is one spec
at a time, so engine + source peak RSS tracks cluster concurrency, not
trace length.

Checkpoint semantics mirror :class:`~repro.workload.arrivals.JsonlSource`:
pickling detaches the live iterator and keeps only the consumed count
and ordering watermark; :meth:`attach` re-binds a fresh spec stream
(``skip_consumed=True`` fast-forwards a stream restarted from the
beginning of the same file).  Because ingestion is deterministic, a
re-ingested file yields byte-identical specs, so the revived session
continues bit-exactly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.workload.google_trace import TraceJobSpec, job_from_spec
from repro.workload.arrivals import ArrivalSource
from repro.workload.job import Job

__all__ = ["TraceIngestSource"]


class TraceIngestSource(ArrivalSource):
    """Pull arrivals out of a (lazily ingested) trace-spec stream."""

    eager = False

    def __init__(self, specs: Iterable[TraceJobSpec]) -> None:
        self._specs: Iterator[TraceJobSpec] | None = iter(specs)
        self._exhausted = False
        self._consumed = 0
        self._last_arrival = float("-inf")

    @classmethod
    def from_file(
        cls, path: str | Path, schema: str, **normalize_kwargs
    ) -> "TraceIngestSource":
        """Open ``path`` under ``schema`` and stream it through
        :func:`~repro.workload.ingest.normalize.normalize_stream`."""
        from repro.workload.ingest.normalize import normalize_stream
        from repro.workload.ingest.readers import open_reader

        return cls(normalize_stream(open_reader(path, schema), **normalize_kwargs))

    def take(self) -> Job | None:
        if self._exhausted:
            return None
        if self._specs is None:
            raise RuntimeError(
                "TraceIngestSource is detached (restored from checkpoint); "
                "call attach(specs) before resuming the session"
            )
        try:
            spec = next(self._specs)
        except StopIteration:
            self._exhausted = True
            return None
        if spec.job_id is None:
            # Stream-ordinal id: stable across restore legs, unlike the
            # process-global job counter.
            spec = type(spec)(
                name=spec.name,
                arrival_time=spec.arrival_time,
                phases=spec.phases,
                job_id=self._consumed,
            )
        if spec.arrival_time < self._last_arrival:
            raise ValueError(
                f"job {spec.job_id}: arrival {spec.arrival_time:g} out of "
                f"order (previous arrival {self._last_arrival:g})"
            )
        self._last_arrival = spec.arrival_time
        self._consumed += 1
        return job_from_spec(spec)

    def attach(
        self, specs: Iterable[TraceJobSpec], *, skip_consumed: bool = True
    ) -> None:
        """Re-bind a spec stream after a checkpoint restore."""
        it = iter(specs)
        if skip_consumed:
            for seen in range(self._consumed):
                if next(it, None) is None:
                    raise ValueError(
                        f"stream ended after {seen} specs while fast-forwarding "
                        f"past {self._consumed} already-consumed jobs"
                    )
        self._specs = it
        self._exhausted = False

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def consumed(self) -> int:
        return self._consumed

    def __getstate__(self):
        return {
            "_specs": None,
            "_exhausted": self._exhausted,
            "_consumed": self._consumed,
            "_last_arrival": self._last_arrival,
        }
