"""Streaming real-trace ingestion (DESIGN.md §5.9).

Turns raw Google 2011 / Google 2019 / Alibaba 2018 cluster-trace files
into the simulator's :class:`~repro.workload.google_trace.TraceJobSpec`
stream in bounded memory, and exposes them as an
:class:`~repro.workload.arrivals.ArrivalSource` so real traffic flows
through ``run``/``serve``/checkpoint/replay unchanged.

Layering::

    readers    raw file → TraceRow stream (schema shape validation)
    normalize  TraceRow → TraceJobSpec   (ordering, assembly, scaling)
    filters    peak-window location over the raw stream
    source     TraceIngestSource: specs → engine arrivals
    validate   real-vs-synthetic distribution reports
    fixtures   deterministic raw-trace generation (tests, CI, bench)
    cli        `python -m repro ingest` convert/validate/stats/fixture
"""

from repro.workload.ingest.errors import TraceFormatError
from repro.workload.ingest.filters import find_peak_window
from repro.workload.ingest.fixtures import (
    FIXTURE_SCHEMAS,
    fixture_filename,
    generator_fingerprint,
    materialize,
    write_fixture,
)
from repro.workload.ingest.normalize import (
    SCHEMA_SCALES,
    DemandScale,
    normalize_stream,
)
from repro.workload.ingest.readers import (
    READER_SCHEMAS,
    Alibaba2018Reader,
    Google2011Reader,
    Google2019Reader,
    TraceReader,
    TraceRow,
    open_reader,
)
from repro.workload.ingest.source import TraceIngestSource
from repro.workload.ingest.validate import (
    STRAGGLER_CV,
    StreamStats,
    synthetic_stats,
    tv_distance,
    validation_report,
)

__all__ = [
    "TraceFormatError",
    "find_peak_window",
    "FIXTURE_SCHEMAS",
    "fixture_filename",
    "generator_fingerprint",
    "materialize",
    "write_fixture",
    "SCHEMA_SCALES",
    "DemandScale",
    "normalize_stream",
    "READER_SCHEMAS",
    "Alibaba2018Reader",
    "Google2011Reader",
    "Google2019Reader",
    "TraceReader",
    "TraceRow",
    "open_reader",
    "TraceIngestSource",
    "STRAGGLER_CV",
    "StreamStats",
    "synthetic_stats",
    "tv_distance",
    "validation_report",
]
