"""``python -m repro ingest`` — convert / validate / stats / fixture.

Every subcommand streams: peak RSS is a function of trace concurrency,
never of row count (the ``trace-smoke`` gate and the ingestion
benchmark both measure this).

Examples::

    # Raw Google 2011 task_events → repro-trace-v1 JSONL (serve input)
    python -m repro ingest convert task_events.csv.gz \\
        --schema google2011 --jsonl --out jobs.jsonl

    # Busiest 2 hours only, concentrated jobs (>= 20 tasks)
    python -m repro ingest convert batch_task.csv --schema alibaba2018 \\
        --peak-window 7200 --min-tasks 20 --jsonl --out peak.jsonl

    # Distribution sketch + peak RSS of a month-scale file
    python -m repro ingest stats task_events.csv.gz --schema google2011

    # Real-vs-synthetic validation report (canonical JSON)
    python -m repro ingest validate task_events.csv.gz \\
        --schema google2011 --out report.json

    # Materialize the deterministic fixture corpus (CI cache target)
    python -m repro ingest fixture --out-dir .cache/trace-fixtures \\
        --rows 200000 --seed 0
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
from pathlib import Path

from repro.workload.google_trace import save_trace, spec_to_dict
from repro.workload.ingest.filters import find_peak_window
from repro.workload.ingest.fixtures import (
    FIXTURE_SCHEMAS,
    generator_fingerprint,
    materialize,
)
from repro.workload.ingest.normalize import normalize_stream
from repro.workload.ingest.readers import READER_SCHEMAS, open_reader
from repro.workload.ingest.validate import (
    StreamStats,
    dumps_canonical,
    synthetic_stats,
    validation_report,
)

__all__ = ["add_ingest_parser"]


def _peak_rss_mb() -> float:
    """Process-lifetime peak RSS in MB (ru_maxrss is KB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        rss //= 1024
    return rss / 1024.0


def _add_pipeline_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("trace", help="raw trace file (csv / csv.gz / jsonl)")
    p.add_argument(
        "--schema", required=True, choices=sorted(READER_SCHEMAS),
        help="trace schema of the input file",
    )
    p.add_argument(
        "--peak-window", type=float, metavar="SECONDS",
        help="keep only the busiest window of this many seconds "
             "(adds one extra streaming pass to locate it)",
    )
    p.add_argument(
        "--min-tasks", type=int,
        help="concentrated-task filter: drop jobs with fewer tasks",
    )
    p.add_argument(
        "--max-tasks", type=int,
        help="drop jobs with more tasks than this",
    )
    p.add_argument("--max-jobs", type=int, help="stop after this many jobs")
    p.add_argument(
        "--linger", type=float, default=3600.0,
        help="trace-time seconds of inactivity before a job finalizes",
    )


def _spec_stream(args):
    window = None
    if args.peak_window is not None:
        window = find_peak_window(
            open_reader(args.trace, args.schema), args.peak_window
        )
        print(
            f"peak window: [{window[0]:g}, {window[1]:g})s raw trace time",
            file=sys.stderr,
        )
    return normalize_stream(
        open_reader(args.trace, args.schema),
        window=window,
        min_tasks=args.min_tasks,
        max_tasks=args.max_tasks,
        max_jobs=args.max_jobs,
        linger=args.linger,
    )


def cmd_convert(args) -> int:
    specs = _spec_stream(args)
    if args.jsonl:
        out = sys.stdout if args.out == "-" else open(args.out, "w")
        jobs = tasks = 0
        try:
            for spec in specs:
                out.write(json.dumps(spec_to_dict(spec), sort_keys=True) + "\n")
                jobs += 1
                tasks += spec.num_tasks()
        finally:
            if out is not sys.stdout:
                out.close()
    else:
        if args.out == "-":
            raise SystemExit("ingest convert: --out - requires --jsonl")
        # repro-trace-v1 JSON is one document; this path buffers the
        # spec list and is meant for excerpt-sized conversions.
        materialized = list(specs)
        save_trace(materialized, args.out)
        jobs = len(materialized)
        tasks = sum(s.num_tasks() for s in materialized)
    print(
        f"converted {jobs} jobs / {tasks} tasks from {args.schema} -> {args.out}",
        file=sys.stderr if args.out == "-" else sys.stdout,
    )
    return 0


def cmd_stats(args) -> int:
    stats = StreamStats().extend(_spec_stream(args))
    payload = {
        "format": "repro-ingest-stats/v1",
        "schema": args.schema,
        "trace": str(args.trace),
        "stats": stats.to_dict(),
        # Wall-side measurement, reported for the bounded-memory claim;
        # excluded from canonical comparisons by being top-level here.
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"stats -> {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_validate(args) -> int:
    real = StreamStats().extend(_spec_stream(args))
    if real.jobs == 0:
        raise SystemExit(f"ingest validate: no jobs survived ingestion of {args.trace}")
    synth = synthetic_stats(
        jobs=real.jobs,
        mean_interarrival=real.mean_interarrival,
        seed=args.seed,
    )
    text = dumps_canonical(validation_report(real, synth))
    if args.out:
        Path(args.out).write_text(text)
        print(f"validation report -> {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_fixture(args) -> int:
    schemas = (
        FIXTURE_SCHEMAS if args.schema == "all" else (args.schema,)
    )
    paths = materialize(
        args.out_dir, rows=args.rows, seed=args.seed, schemas=schemas
    )
    for schema in schemas:
        path = paths[schema]
        print(f"{schema}: {path} ({path.stat().st_size} bytes)")
    print(f"generator fingerprint: {generator_fingerprint()}")
    return 0


def add_ingest_parser(sub, *, name: str = "ingest") -> None:
    """Attach the ingest subcommand tree to the main CLI's subparsers."""
    p = sub.add_parser(
        name, help="stream real cluster traces into the simulator's job schema"
    )
    isub = p.add_subparsers(dest="ingest_command", required=True)

    cp = isub.add_parser(
        "convert", help="raw trace → repro-trace-v1 JSON/JSONL job specs"
    )
    _add_pipeline_flags(cp)
    cp.add_argument("--out", required=True, help="output path (- for stdout, JSONL only)")
    cp.add_argument(
        "--jsonl", action="store_true",
        help="stream one job-spec per line (bounded memory; serve input)",
    )
    cp.set_defaults(func=cmd_convert)

    sp = isub.add_parser(
        "stats", help="streaming distribution sketch + peak RSS of a trace"
    )
    _add_pipeline_flags(sp)
    sp.add_argument("--out", help="write the JSON report here instead of stdout")
    sp.set_defaults(func=cmd_stats)

    vp = isub.add_parser(
        "validate",
        help="real-vs-synthetic validation report (canonical JSON)",
    )
    _add_pipeline_flags(vp)
    vp.add_argument("--out", help="write the report here instead of stdout")
    vp.add_argument(
        "--seed", type=int, default=0, help="seed of the synthetic baseline"
    )
    vp.set_defaults(func=cmd_validate)

    fp = isub.add_parser(
        "fixture", help="materialize deterministic raw-trace fixtures"
    )
    fp.add_argument(
        "--schema", default="all", choices=("all", *FIXTURE_SCHEMAS),
    )
    fp.add_argument("--out-dir", required=True)
    fp.add_argument("--rows", type=int, default=200)
    fp.add_argument("--seed", type=int, default=0)
    fp.set_defaults(func=cmd_fixture)
