"""Structured errors for the trace-ingestion pipeline.

Every malformed input — truncated gzip members, out-of-order
timestamps, unknown event types, duplicate job/task ids, rows exceeding
machine capacity, short or non-numeric rows — raises
:class:`TraceFormatError` carrying the source path, the 1-based line
number and the schema name, so a failure inside a multi-gigabyte trace
names the exact offending row instead of silently dropping it.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["TraceFormatError"]


class TraceFormatError(ValueError):
    """A trace file violated its schema contract.

    Attributes
    ----------
    path:   source file (None for in-memory streams)
    line:   1-based line number of the offending row (None when the
            error is not attributable to a single row, e.g. a gzip
            stream truncated mid-member)
    schema: reader schema name (``google2011`` / ``google2019`` /
            ``alibaba2018``)
    reason: the bare message, without the location prefix
    """

    def __init__(
        self,
        reason: str,
        *,
        path: str | Path | None = None,
        line: int | None = None,
        schema: str | None = None,
    ) -> None:
        self.reason = reason
        self.path = str(path) if path is not None else None
        self.line = line
        self.schema = schema
        where = []
        if schema is not None:
            where.append(schema)
        if self.path is not None:
            where.append(self.path)
        if line is not None:
            where.append(f"line {line}")
        prefix = ":".join(where)
        super().__init__(f"{prefix}: {reason}" if prefix else reason)
