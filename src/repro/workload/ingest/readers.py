"""Chunked streaming readers for the three supported trace schemas.

Each reader turns one raw trace file into an iterator of uniform
:class:`TraceRow` records without ever holding more than one buffered
chunk of lines in memory.  The three schemas:

* **google2011** — the 2011 Google cluster trace ``task_events`` tables:
  gzipped CSV, 13 columns, timestamps in microseconds, integer event
  codes, CPU/memory requests normalized to the largest machine
  (fractions in [0, 1]).
* **google2019** — the 2019 Google (Borg) trace instance-event export:
  newline-delimited JSON objects with ``time``/``collection_id``/
  ``instance_index``/``type``/``resource_request`` fields; event types
  are either enum strings or the BigQuery integer codes.
* **alibaba2018** — the Alibaba 2018 ``batch_task`` table: plain CSV,
  one row per task *group* (a phase of ``instance_num`` identical
  instances), DAG encoded in the task name (``M1``, ``R2_1``,
  ``J3_1_2`` — trailing ``_k`` parts name parent phases), plan_cpu in
  units of 1/100 core, plan_mem normalized.

Readers are intentionally dumb: they validate row *shape* (column
count, numeric fields, known event codes) and convert units to seconds,
but all cross-row semantics — timestamp ordering, duplicate detection,
capacity limits, job assembly — live in :mod:`.normalize`, which is
shared across schemas.  Malformed rows raise
:class:`~repro.workload.ingest.errors.TraceFormatError` with the file
path and 1-based line number; nothing is ever silently dropped.
"""

from __future__ import annotations

import gzip
import io
import json
from dataclasses import dataclass
from pathlib import Path
from types import MappingProxyType
from typing import Callable, Iterator, Mapping, Protocol, runtime_checkable

from repro.workload.ingest.errors import TraceFormatError

__all__ = [
    "TraceRow",
    "TraceReader",
    "Google2011Reader",
    "Google2019Reader",
    "Alibaba2018Reader",
    "open_reader",
    "READER_SCHEMAS",
]

#: Lines buffered per chunk — the only per-file working set a reader owns.
CHUNK_LINES = 8192

_MICROS = 1e-6  # Google timestamps are microseconds since trace epoch


@dataclass(frozen=True)
class TraceRow:
    """One normalized-shape row, schema differences reduced to fields.

    Google rows are *task events* (``kind="event"``): a lifecycle event
    of one task.  Alibaba rows are *task groups* (``kind="group"``): an
    entire phase of ``instances`` identical tasks with an observed
    [start, end) interval.  ``cpu``/``mem`` stay in raw schema units;
    :mod:`.normalize` applies the deterministic demand scaling.
    """

    time: float  # seconds since the trace epoch
    job: str  # trace job key (job ID / collection_id / job_name)
    line: int  # 1-based line number in the source file
    kind: str  # "event" | "group"
    # -- task-event fields (Google) --
    task: int | None = None
    event: str | None = None  # "submit" | "schedule" | "finish" | "dead" | "other"
    cpu: float | None = None
    mem: float | None = None
    # -- task-group fields (Alibaba) --
    phase: str | None = None
    parents: tuple[int, ...] = ()
    instances: int | None = None
    end: float | None = None  # group end time (seconds); None when unknown


@runtime_checkable
class TraceReader(Protocol):
    """Common protocol: a named schema over a lazily-streamed row iterator."""

    schema: str
    path: Path

    def rows(self) -> Iterator[TraceRow]:
        """Yield rows in file order, raising TraceFormatError on bad input."""
        ...


def _open_lines(path: Path, schema: str) -> Iterator[tuple[int, str]]:
    """Stream ``(line_no, line)`` pairs, transparently gunzipping.

    Reads in :data:`CHUNK_LINES` batches so the file handle advances in
    large sequential reads while memory stays one chunk deep.  A gzip
    member truncated mid-stream (EOFError / BadGzipFile mid-iteration)
    becomes a TraceFormatError naming the last complete line.
    """
    raw: io.TextIOBase
    if path.suffix == ".gz":
        raw = io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    else:
        raw = open(path, "r", encoding="utf-8")
    line_no = 0
    try:
        with raw:
            while True:
                try:
                    chunk = raw.readlines(CHUNK_LINES * 128)
                except (EOFError, gzip.BadGzipFile, OSError) as exc:
                    raise TraceFormatError(
                        f"truncated or corrupt stream after line {line_no}: {exc}",
                        path=path,
                        schema=schema,
                    ) from exc
                if not chunk:
                    return
                for line in chunk:
                    line_no += 1
                    yield line_no, line
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"undecodable bytes after line {line_no}: {exc}",
            path=path,
            schema=schema,
        ) from exc


def _float_field(
    value: str, what: str, *, path: Path, line: int, schema: str
) -> float | None:
    if value == "":
        return None
    try:
        return float(value)
    except ValueError:
        raise TraceFormatError(
            f"non-numeric {what} {value!r}", path=path, line=line, schema=schema
        ) from None


# ----------------------------------------------------------------------
# google2011 — task_events CSV (gzipped)
# ----------------------------------------------------------------------
#: Event-code → lifecycle bucket (Reiss et al. schema v2).  SUBMIT opens
#: a task, SCHEDULE starts its service interval, FINISH ends it
#: successfully, EVICT/FAIL/KILL/LOST end it without success, the
#: UPDATE_* codes change pending/running attributes and carry no
#: lifecycle meaning here.
_G2011_EVENTS: Mapping[int, str] = MappingProxyType({
    0: "submit",
    1: "schedule",
    2: "dead",  # EVICT
    3: "dead",  # FAIL
    4: "finish",
    5: "dead",  # KILL
    6: "dead",  # LOST
    7: "other",  # UPDATE_PENDING
    8: "other",  # UPDATE_RUNNING
})

_G2011_COLUMNS = 13


class Google2011Reader:
    """Google 2011 ``task_events`` part files (``*.csv.gz`` or plain csv)."""

    schema = "google2011"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def rows(self) -> Iterator[TraceRow]:
        for line_no, line in _open_lines(self.path, self.schema):
            line = line.rstrip("\n")
            if not line:
                continue
            cols = line.split(",")
            if len(cols) != _G2011_COLUMNS:
                raise TraceFormatError(
                    f"expected {_G2011_COLUMNS} columns, got {len(cols)}",
                    path=self.path,
                    line=line_no,
                    schema=self.schema,
                )
            time_us = _float_field(
                cols[0], "timestamp", path=self.path, line=line_no, schema=self.schema
            )
            if time_us is None:
                raise TraceFormatError(
                    "missing timestamp", path=self.path, line=line_no, schema=self.schema
                )
            try:
                task_index = int(cols[3])
                event_code = int(cols[5])
            except ValueError:
                raise TraceFormatError(
                    f"non-integer task index / event type {cols[3]!r}/{cols[5]!r}",
                    path=self.path,
                    line=line_no,
                    schema=self.schema,
                ) from None
            event = _G2011_EVENTS.get(event_code)
            if event is None:
                raise TraceFormatError(
                    f"unknown event type {event_code}",
                    path=self.path,
                    line=line_no,
                    schema=self.schema,
                )
            yield TraceRow(
                time=time_us * _MICROS,
                job=cols[2],
                line=line_no,
                kind="event",
                task=task_index,
                event=event,
                cpu=_float_field(
                    cols[9], "cpu request", path=self.path, line=line_no,
                    schema=self.schema,
                ),
                mem=_float_field(
                    cols[10], "memory request", path=self.path, line=line_no,
                    schema=self.schema,
                ),
            )


# ----------------------------------------------------------------------
# google2019 — instance-event newline-JSON
# ----------------------------------------------------------------------
#: The 2019 trace's enum names (BigQuery integer codes index this tuple).
_G2019_TYPES: tuple[str, ...] = (
    "SUBMIT",
    "QUEUE",
    "ENABLE",
    "SCHEDULE",
    "EVICT",
    "FAIL",
    "FINISH",
    "KILL",
    "LOST",
    "UPDATE_PENDING",
    "UPDATE_RUNNING",
)

_G2019_BUCKET: Mapping[str, str] = MappingProxyType({
    "SUBMIT": "submit",
    "QUEUE": "other",
    "ENABLE": "other",
    "SCHEDULE": "schedule",
    "EVICT": "dead",
    "FAIL": "dead",
    "FINISH": "finish",
    "KILL": "dead",
    "LOST": "dead",
    "UPDATE_PENDING": "other",
    "UPDATE_RUNNING": "other",
})


class Google2019Reader:
    """Google 2019 (Borg) instance events as newline-delimited JSON."""

    schema = "google2019"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def _event_name(self, raw: object, line_no: int) -> str:
        if isinstance(raw, bool):  # bool is an int subclass; reject explicitly
            raw = None
        if isinstance(raw, int):
            if 0 <= raw < len(_G2019_TYPES):
                return _G2019_TYPES[raw]
            raise TraceFormatError(
                f"unknown event type {raw}",
                path=self.path, line=line_no, schema=self.schema,
            )
        if isinstance(raw, str) and raw.upper() in _G2019_BUCKET:
            return raw.upper()
        raise TraceFormatError(
            f"unknown event type {raw!r}",
            path=self.path, line=line_no, schema=self.schema,
        )

    def rows(self) -> Iterator[TraceRow]:
        for line_no, line in _open_lines(self.path, self.schema):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"invalid JSON: {exc.msg}",
                    path=self.path, line=line_no, schema=self.schema,
                ) from None
            if not isinstance(obj, dict):
                raise TraceFormatError(
                    "row is not a JSON object",
                    path=self.path, line=line_no, schema=self.schema,
                )
            try:
                time_us = float(obj["time"])
                job = str(obj["collection_id"])
                task_index = int(obj["instance_index"])
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceFormatError(
                    f"missing or malformed required field: {exc}",
                    path=self.path, line=line_no, schema=self.schema,
                ) from None
            name = self._event_name(obj.get("type"), line_no)
            request = obj.get("resource_request") or {}
            if not isinstance(request, dict):
                raise TraceFormatError(
                    "resource_request is not an object",
                    path=self.path, line=line_no, schema=self.schema,
                )
            cpu = request.get("cpus")
            mem = request.get("memory")
            yield TraceRow(
                time=time_us * _MICROS,
                job=job,
                line=line_no,
                kind="event",
                task=task_index,
                event=_G2019_BUCKET[name],
                cpu=float(cpu) if cpu is not None else None,
                mem=float(mem) if mem is not None else None,
            )


# ----------------------------------------------------------------------
# alibaba2018 — batch_task CSV
# ----------------------------------------------------------------------
_ALI_COLUMNS = 9


def _parse_dag_name(name: str) -> tuple[str, tuple[int, ...]]:
    """``"J3_1_2"`` → (``"3"``, parents ``(1, 2)``); non-DAG names pass
    through with no parents (the trace's ``task_XXXX`` independent tasks)."""
    head, _, rest = name.partition("_")
    digits = head.lstrip(
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
    )
    if not digits.isdigit() or digits == head:
        return name, ()
    parents = []
    for part in rest.split("_") if rest else []:
        if not part.isdigit():
            return name, ()  # task_1234-style opaque name, not a DAG id
        parents.append(int(part))
    return digits, tuple(parents)


class Alibaba2018Reader:
    """Alibaba 2018 ``batch_task.csv`` (optionally gzipped).

    Columns: task_name, instance_num, job_name, task_type, status,
    start_time, end_time, plan_cpu, plan_mem.
    """

    schema = "alibaba2018"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def rows(self) -> Iterator[TraceRow]:
        for line_no, line in _open_lines(self.path, self.schema):
            line = line.rstrip("\n")
            if not line:
                continue
            cols = line.split(",")
            if len(cols) != _ALI_COLUMNS:
                raise TraceFormatError(
                    f"expected {_ALI_COLUMNS} columns, got {len(cols)}",
                    path=self.path, line=line_no, schema=self.schema,
                )
            task_name, inst, job_name = cols[0], cols[1], cols[2]
            try:
                instances = int(inst)
            except ValueError:
                raise TraceFormatError(
                    f"non-integer instance_num {inst!r}",
                    path=self.path, line=line_no, schema=self.schema,
                ) from None
            if instances < 1:
                raise TraceFormatError(
                    f"instance_num must be >= 1, got {instances}",
                    path=self.path, line=line_no, schema=self.schema,
                )
            start = _float_field(
                cols[5], "start_time", path=self.path, line=line_no, schema=self.schema
            )
            if start is None:
                raise TraceFormatError(
                    "missing start_time", path=self.path, line=line_no,
                    schema=self.schema,
                )
            end = _float_field(
                cols[6], "end_time", path=self.path, line=line_no, schema=self.schema
            )
            phase, parents = _parse_dag_name(task_name)
            yield TraceRow(
                time=start,
                job=job_name,
                line=line_no,
                kind="group",
                phase=phase,
                parents=parents,
                instances=instances,
                cpu=_float_field(
                    cols[7], "plan_cpu", path=self.path, line=line_no,
                    schema=self.schema,
                ),
                mem=_float_field(
                    cols[8], "plan_mem", path=self.path, line=line_no,
                    schema=self.schema,
                ),
                end=end if end is not None and end > start else None,
            )


#: schema name → reader class, the CLI/--schema registry.
# Frozen: shared module state must stay immutable (repro-lint RL014).
READER_SCHEMAS: Mapping[str, Callable[[str | Path], TraceReader]] = MappingProxyType({
    "google2011": Google2011Reader,
    "google2019": Google2019Reader,
    "alibaba2018": Alibaba2018Reader,
})


def open_reader(path: str | Path, schema: str) -> TraceReader:
    """Instantiate the reader for ``schema`` over ``path``."""
    try:
        factory = READER_SCHEMAS[schema]
    except KeyError:
        raise ValueError(
            f"unknown trace schema {schema!r}; choose from "
            f"{', '.join(sorted(READER_SCHEMAS))}"
        ) from None
    return factory(path)
