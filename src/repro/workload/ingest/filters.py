"""Trace windowing and concentration filters.

Real month-long traces are far larger than any single study needs; the
standard methodology (and ROADMAP item 1) is to cut the **peak window**
— the busiest ``duration`` seconds of the trace — and optionally keep
only **concentrated** jobs (task counts inside a band), so the
simulated interval reflects production load rather than the quiet tail.

:func:`find_peak_window` is a separate streaming pass over the raw
reader: it histograms job-opening rows into fixed-width buckets (memory
proportional to trace *span*, not row count) and slides a window sum.
The resulting raw-time ``(start, end)`` interval feeds
``normalize_stream(..., window=...)``, which drops jobs arriving
outside it and rebases arrivals to the window start.
"""

from __future__ import annotations

import math

from repro.workload.ingest.readers import TraceReader

__all__ = ["find_peak_window"]


def find_peak_window(
    reader: TraceReader,
    duration: float,
    *,
    bucket: float = 60.0,
) -> tuple[float, float]:
    """Raw-time ``(start, end)`` of the busiest ``duration``-second window.

    "Busiest" counts job-opening rows (Google ``submit`` events, every
    Alibaba task-group row) per ``bucket``-second cell and maximizes the
    sliding sum over ``ceil(duration / bucket)`` cells; ties resolve to
    the earliest window, so the result is deterministic for a given
    file.  Raises ValueError on an empty trace.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    counts: dict[int, int] = {}
    for row in reader.rows():
        if row.kind == "event" and row.event != "submit":
            continue
        cell = int(row.time // bucket)
        counts[cell] = counts.get(cell, 0) + 1
    if not counts:
        raise ValueError(f"{reader.path}: no arrival rows in trace")

    cells = sorted(counts)
    span = max(1, math.ceil(duration / bucket))
    # Sliding sum over the sorted (sparse) cell list: advance a left
    # pointer so only cells inside [cell - span + 1, cell] contribute.
    best_cell = cells[0]
    best_sum = -1
    left = 0
    running = 0
    for right, cell in enumerate(cells):
        running += counts[cell]
        while cells[left] <= cell - span:
            running -= counts[cells[left]]
            left += 1
        if running > best_sum:
            best_sum = running
            best_cell = cell
    start = (best_cell - span + 1) * bucket
    return start, start + span * bucket
