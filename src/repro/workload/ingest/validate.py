"""Real-vs-synthetic workload validation reports.

The synthetic :class:`~repro.workload.google_trace.GoogleTraceGenerator`
was fitted to the statistics the paper quotes; once real traces stream
in, we need to *measure* how far a given trace sits from that synthetic
model.  :class:`StreamStats` accumulates distribution sketches over a
spec stream in O(1) memory (fixed log2 bucket histograms — the same
bucketing as the observability registry), and
:func:`validation_report` renders two stat sets plus per-metric
total-variation distances as canonical JSON
(``repro-ingest-validation/v1``).

Compared dimensions, per ISSUE/ROADMAP:

* **task-count tails** — jobs-per-size histogram ("95% of jobs are small");
* **straggler frequency** — fraction of phases whose fitted cv = σ/θ
  crosses :data:`STRAGGLER_CV` (the paper: 70% of phases straggler-prone);
* **per-resource demand shapes** — CPU and memory request histograms;
* **inter-arrival CDF** — job inter-arrival gap histogram + quantiles.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Mapping

from repro.workload.google_trace import TraceJobSpec

__all__ = [
    "STRAGGLER_CV",
    "StreamStats",
    "tv_distance",
    "validation_report",
    "synthetic_stats",
]

#: A phase whose fitted coefficient of variation σ/θ reaches this value
#: is counted straggler-prone (the paper's straggler phases are fitted
#: at cv ≈ 1.0; well-behaved phases at 0.2).
STRAGGLER_CV = 0.5

#: log2 bucket range shared by all histograms: bucket k counts values in
#: (2^(k-1), 2^k]; values ≤ 2^LO land in LO, values > 2^HI in HI.
_LO, _HI = -10, 40


def _bucket(value: float) -> int:
    if value <= 0.0:
        return _LO
    return min(max(math.ceil(math.log2(value)), _LO), _HI)


class _Hist:
    """Fixed-range log2 histogram with streaming quantile extraction."""

    __slots__ = ("counts", "n")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.n = 0

    def add(self, value: float) -> None:
        b = _bucket(value)
        self.counts[b] = self.counts.get(b, 0) + 1
        self.n += 1

    def quantile_upper(self, q: float) -> float | None:
        """Upper edge (2^k) of the bucket holding quantile ``q``."""
        if self.n == 0:
            return None
        target = q * self.n
        seen = 0
        for b in sorted(self.counts):
            seen += self.counts[b]
            if seen >= target:
                return float(2.0 ** b)
        return float(2.0 ** _HI)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "buckets": {str(b): self.counts[b] for b in sorted(self.counts)},
        }


class StreamStats:
    """O(1)-memory distribution sketch over a job-spec stream."""

    def __init__(self) -> None:
        self.jobs = 0
        self.tasks = 0
        self.phases = 0
        self.straggler_phases = 0
        self.first_arrival: float | None = None
        self.last_arrival: float | None = None
        self._prev_arrival: float | None = None
        self.task_count = _Hist()
        self.interarrival = _Hist()
        self.cpu = _Hist()
        self.mem = _Hist()
        self.theta = _Hist()

    def add(self, spec: TraceJobSpec) -> None:
        self.jobs += 1
        n = spec.num_tasks()
        self.tasks += n
        self.task_count.add(float(n))
        arrival = spec.arrival_time
        if self.first_arrival is None:
            self.first_arrival = arrival
        self.last_arrival = arrival
        if self._prev_arrival is not None:
            self.interarrival.add(arrival - self._prev_arrival)
        self._prev_arrival = arrival
        for phase in spec.phases:
            self.phases += 1
            if phase.sigma >= STRAGGLER_CV * phase.theta:
                self.straggler_phases += 1
            self.cpu.add(phase.cpu)
            self.mem.add(phase.mem)
            self.theta.add(phase.theta)

    def extend(self, specs: Iterable[TraceJobSpec]) -> "StreamStats":
        for spec in specs:
            self.add(spec)
        return self

    @property
    def straggler_fraction(self) -> float:
        return self.straggler_phases / self.phases if self.phases else 0.0

    @property
    def mean_interarrival(self) -> float:
        if self.jobs < 2 or self.first_arrival is None or self.last_arrival is None:
            return 0.0
        return (self.last_arrival - self.first_arrival) / (self.jobs - 1)

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "tasks": self.tasks,
            "phases": self.phases,
            "straggler_fraction": round(self.straggler_fraction, 6),
            "arrival_span_s": (
                round(self.last_arrival - self.first_arrival, 6)
                if self.jobs and self.first_arrival is not None
                else 0.0
            ),
            "mean_interarrival_s": round(self.mean_interarrival, 6),
            "task_count": self.task_count.to_dict(),
            "task_count_tail": {
                "p50": self.task_count.quantile_upper(0.50),
                "p90": self.task_count.quantile_upper(0.90),
                "p99": self.task_count.quantile_upper(0.99),
            },
            "interarrival": self.interarrival.to_dict(),
            "interarrival_cdf": {
                "p10": self.interarrival.quantile_upper(0.10),
                "p50": self.interarrival.quantile_upper(0.50),
                "p90": self.interarrival.quantile_upper(0.90),
                "p99": self.interarrival.quantile_upper(0.99),
            },
            "cpu_demand": self.cpu.to_dict(),
            "mem_demand": self.mem.to_dict(),
            "theta": self.theta.to_dict(),
        }


def tv_distance(a: Mapping[str, int] | dict, b: Mapping[str, int] | dict) -> float:
    """Total-variation distance between two bucket-count dicts in [0, 1]."""
    na = sum(a.values())
    nb = sum(b.values())
    if na == 0 or nb == 0:
        return 1.0 if na != nb else 0.0
    keys = set(a) | set(b)
    return 0.5 * sum(
        abs(a.get(k, 0) / na - b.get(k, 0) / nb) for k in sorted(keys)
    )


def synthetic_stats(
    *, jobs: int, mean_interarrival: float, seed: int = 0
) -> StreamStats:
    """Stats of the synthetic generator matched to a real trace's shape
    (same job count and mean inter-arrival), the comparison baseline."""
    from repro.workload.google_trace import GoogleTraceGenerator

    gen = GoogleTraceGenerator(seed=seed)
    stats = StreamStats()
    # Generate one job at a time so the baseline pass is as bounded in
    # memory as the real-trace pass it is compared against.
    t = 0.0
    for i in range(jobs):
        stats.add(gen.make_job_spec(t, i))
        if mean_interarrival > 0:
            t += float(gen.rng.exponential(mean_interarrival))
    return stats


def validation_report(real: StreamStats, synthetic: StreamStats) -> dict:
    """Canonical comparison report between a real and a synthetic stream."""
    real_d = real.to_dict()
    synth_d = synthetic.to_dict()
    distances = {
        metric: round(
            tv_distance(real_d[metric]["buckets"], synth_d[metric]["buckets"]), 6
        )
        for metric in ("task_count", "interarrival", "cpu_demand", "mem_demand",
                       "theta")
    }
    distances["straggler_fraction_delta"] = round(
        abs(real.straggler_fraction - synthetic.straggler_fraction), 6
    )
    return {
        "format": "repro-ingest-validation/v1",
        "real": real_d,
        "synthetic": synth_d,
        "tv_distance": distances,
    }


def dumps_canonical(report: dict) -> str:
    """Byte-stable JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"
