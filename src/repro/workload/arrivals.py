"""Job arrival processes and arrival *sources*.

The analytical model treats (a_1, …, a_N) as an arbitrary sequence
(Sec. 3); the experiments use roughly fixed inter-arrival gaps (≈200 s
lightly loaded, ≈20 s heavily loaded, Sec. 6.2) which in practice jitter
around the target.  The helper functions below produce arrival-time
lists consumed by the simulation runner.

The second half of this module is the workload layer of the session API
(DESIGN.md §5.8): an :class:`ArrivalSource` feeds jobs to a
:class:`~repro.sim.engine.SimulationEngine` either eagerly (the whole
workload queued at start, today's behavior — :class:`StaticSource`) or
pulled one at a time as the simulation advances (:class:`GeneratorSource`
over any job iterator, :class:`JsonlSource` over a job-spec line stream).
Pull-based sources must yield non-decreasing arrival times; the engine
rejects out-of-order ingests, because a job arriving "in the past" could
not be replayed by a run that knew the stream up front.

Byte-identity note: an engine fed by a pull source pulls the next job
*while processing the previous arrival event*, so a JOB_ARRIVAL for job
k+1 is pushed before any event of job k's placement.  The event queue
orders by (time, kind, seq) and same-kind pushes preserve stream order,
so the processing order — and therefore every RNG draw and decision
point — matches the eager run exactly.
"""

from __future__ import annotations

import json
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.workload.job import Job

__all__ = [
    "fixed_interarrival",
    "poisson_arrivals",
    "arrivals_from_list",
    "ArrivalSource",
    "StaticSource",
    "GeneratorSource",
    "JsonlSource",
]


def fixed_interarrival(
    n: int,
    gap: float,
    *,
    start: float = 0.0,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """``n`` arrivals spaced ``gap`` apart, optionally uniformly jittered
    by ±``jitter``·gap (the paper's "around 20/200 seconds")."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if gap < 0:
        raise ValueError("gap must be non-negative")
    if not 0.0 <= jitter < 1.0:
        raise ValueError("jitter must be in [0, 1)")
    times = start + gap * np.arange(n, dtype=float)
    if jitter > 0:
        if rng is None:
            rng = np.random.default_rng(0)
        times = times + rng.uniform(-jitter * gap, jitter * gap, size=n)
        times = np.maximum.accumulate(np.maximum(times, start))
    return [float(t) for t in times]


def poisson_arrivals(
    n: int,
    rate: float,
    *,
    start: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """``n`` Poisson-process arrivals with the given rate (jobs/second)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if rate <= 0:
        raise ValueError("rate must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    gaps = rng.exponential(1.0 / rate, size=n)
    return [float(t) for t in start + np.cumsum(gaps)]


def arrivals_from_list(times: Sequence[float]) -> list[float]:
    """Validate and normalize an explicit arrival sequence."""
    out = [float(t) for t in times]
    if any(t < 0 for t in out):
        raise ValueError("arrival times must be non-negative")
    if any(b < a for a, b in zip(out, out[1:])):
        raise ValueError("arrival times must be non-decreasing")
    return out


# ----------------------------------------------------------------------
# Arrival sources (session workload layer, DESIGN.md §5.8)
# ----------------------------------------------------------------------
class ArrivalSource:
    """Where a session's jobs come from.

    ``eager`` sources hand the engine the complete workload at
    ``start()`` via :meth:`initial_jobs`; pull sources are drained one
    job at a time through :meth:`take` (the engine pulls job *k+1* while
    processing job *k*'s arrival, and once more at start).  ``exhausted``
    must flip to True only when :meth:`take` can never return another
    job — it keeps the engine's ``workload_active()`` predicate (and
    with it the fault renewal chain) alive while the stream is open.
    ``consumed`` counts jobs already emitted; checkpoint restore uses it
    to fast-forward a re-attached stream.
    """

    eager: bool = False

    def initial_jobs(self) -> list[Job]:
        """Jobs known before the session starts (eager sources only)."""
        return []

    def take(self) -> Job | None:
        """Next job, or None once the stream has permanently ended.

        Implementations must *block* until a job or end-of-stream: a
        transient None would let the engine process later-timestamped
        events before an arrival it has not seen yet, breaking the
        equivalence with a run that knew the stream up front.  (The
        service layer's stdin feed converts SIGTERM into end-of-stream
        so a blocked take unblocks on shutdown.)
        """
        return None

    @property
    def exhausted(self) -> bool:
        """True once no further job can ever be taken."""
        return True

    @property
    def consumed(self) -> int:
        """Jobs emitted via :meth:`take` so far."""
        return 0


class StaticSource(ArrivalSource):
    """Today's behavior: a fixed job list, fully queued at start."""

    eager = True

    def __init__(self, jobs: Iterable[Job]) -> None:
        self.jobs = sorted(jobs, key=lambda j: j.arrival_time)

    def initial_jobs(self) -> list[Job]:
        return list(self.jobs)


class GeneratorSource(ArrivalSource):
    """Pull source over any job iterator (generator, list iterator, …).

    Enforces the non-decreasing-arrival contract at the source boundary
    so a violation names the offending job before the engine sees it.
    Not checkpointable — a live generator's continuation can't be
    serialized; use :class:`JsonlSource` or :class:`StaticSource` when
    sessions must survive a restore.
    """

    eager = False

    def __init__(self, jobs: Iterable[Job]) -> None:
        self._it: Iterator[Job] = iter(jobs)
        self._exhausted = False
        self._consumed = 0
        self._last_arrival = float("-inf")

    def take(self) -> Job | None:
        if self._exhausted:
            return None
        try:
            job = next(self._it)
        except StopIteration:
            self._exhausted = True
            return None
        if job.arrival_time < self._last_arrival:
            raise ValueError(
                f"job {job.job_id}: arrival {job.arrival_time:g} out of order "
                f"(previous arrival {self._last_arrival:g})"
            )
        self._last_arrival = job.arrival_time
        self._consumed += 1
        return job

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def consumed(self) -> int:
        return self._consumed

    def __getstate__(self):
        raise TypeError(
            "GeneratorSource is not checkpointable (live iterator); "
            "use JsonlSource or StaticSource for resumable sessions"
        )


class JsonlSource(ArrivalSource):
    """Pull source over a JSONL stream of job-spec lines.

    Each non-blank line is one JSON object in the `repro-trace-v1` job
    schema (see ``workload/google_trace.py``: name, arrival_time,
    phases[]; optional job_id).  Lines lacking an explicit ``job_id``
    get a deterministic sequential id (the stream ordinal), so a
    restored session re-reading the same stream materializes identical
    jobs — the process-global job counter is not stable across legs.

    Checkpointable by detaching: pickling keeps the consumed count, the
    ordering watermark and the (terminal) exhaustion flag; a revived
    mid-stream source refuses :meth:`take` until :meth:`attach` re-binds
    a line iterator (``skip_consumed=True`` fast-forwards a stream
    restarted from the beginning; pass False when the stream itself
    resumes mid-way, e.g. a still-open socket).  A source revived from a
    cut *after* end-of-stream stays exhausted — attach re-binds bytes,
    it never un-ends the stream.
    """

    eager = False

    def __init__(
        self,
        lines: Iterable[str] | None = None,
        *,
        decoder: Callable[[dict], Job] | None = None,
    ) -> None:
        self._lines: Iterator[str] | None = iter(lines) if lines is not None else None
        self._decoder = decoder
        self._exhausted = False
        self._consumed = 0
        self._last_arrival = float("-inf")

    def _decode(self, line: str) -> Job:
        obj = json.loads(line)
        if self._decoder is not None:
            return self._decoder(obj)
        from repro.workload.google_trace import job_from_spec, spec_from_dict

        spec = spec_from_dict(obj)
        if spec.job_id is None:
            spec = type(spec)(
                name=spec.name,
                arrival_time=spec.arrival_time,
                phases=spec.phases,
                job_id=self._consumed,
            )
        return job_from_spec(spec)

    def take(self) -> Job | None:
        if self._exhausted:
            return None
        if self._lines is None:
            raise RuntimeError(
                "JsonlSource is detached (restored from checkpoint); "
                "call attach(lines) before resuming the session"
            )
        for line in self._lines:
            if not line.strip():
                continue
            job = self._decode(line)
            if job.arrival_time < self._last_arrival:
                raise ValueError(
                    f"job {job.job_id}: arrival {job.arrival_time:g} out of order "
                    f"(previous arrival {self._last_arrival:g})"
                )
            self._last_arrival = job.arrival_time
            self._consumed += 1
            return job
        self._exhausted = True
        return None

    def attach(self, lines: Iterable[str], *, skip_consumed: bool = True) -> None:
        """Re-bind a line iterator after a checkpoint restore.

        Exhaustion is terminal: a checkpoint cut *after* end-of-stream
        revives with ``exhausted`` already True, and attach keeps it
        that way.  Clearing the flag here (the historical behaviour)
        made ``workload_active()`` count the source as pending work
        forever, so the fault-renewal chain never wound down and the
        restored leg drained clear to ``max_time`` instead of stopping
        where the original run stopped.
        """
        it = iter(lines)
        if skip_consumed:
            seen = 0
            while seen < self._consumed:
                line = next(it, None)
                if line is None:
                    raise ValueError(
                        f"stream ended after {seen} jobs while fast-forwarding "
                        f"past {self._consumed} already-consumed jobs"
                    )
                if line.strip():
                    seen += 1
        self._lines = it

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def consumed(self) -> int:
        return self._consumed

    def __getstate__(self):
        return {
            "_lines": None,
            "_decoder": None,
            "_exhausted": self._exhausted,
            "_consumed": self._consumed,
            "_last_arrival": self._last_arrival,
        }
