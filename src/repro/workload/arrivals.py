"""Job arrival processes.

The analytical model treats (a_1, …, a_N) as an arbitrary sequence
(Sec. 3); the experiments use roughly fixed inter-arrival gaps (≈200 s
lightly loaded, ≈20 s heavily loaded, Sec. 6.2) which in practice jitter
around the target.  These helpers produce arrival-time lists consumed by
the simulation runner.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["fixed_interarrival", "poisson_arrivals", "arrivals_from_list"]


def fixed_interarrival(
    n: int,
    gap: float,
    *,
    start: float = 0.0,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """``n`` arrivals spaced ``gap`` apart, optionally uniformly jittered
    by ±``jitter``·gap (the paper's "around 20/200 seconds")."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if gap < 0:
        raise ValueError("gap must be non-negative")
    if not 0.0 <= jitter < 1.0:
        raise ValueError("jitter must be in [0, 1)")
    times = start + gap * np.arange(n, dtype=float)
    if jitter > 0:
        if rng is None:
            rng = np.random.default_rng(0)
        times = times + rng.uniform(-jitter * gap, jitter * gap, size=n)
        times = np.maximum.accumulate(np.maximum(times, start))
    return [float(t) for t in times]


def poisson_arrivals(
    n: int,
    rate: float,
    *,
    start: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """``n`` Poisson-process arrivals with the given rate (jobs/second)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if rate <= 0:
        raise ValueError("rate must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    gaps = rng.exponential(1.0 / rate, size=n)
    return [float(t) for t in start + np.cumsum(gaps)]


def arrivals_from_list(times: Sequence[float]) -> list[float]:
    """Validate and normalize an explicit arrival sequence."""
    out = [float(t) for t in times]
    if any(t < 0 for t in out):
        raise ValueError("arrival times must be non-negative")
    if any(b < a for a, b in zip(out, out[1:])):
        raise ValueError("arrival times must be non-decreasing")
    return out
