"""Cloning speedup functions h(r) (Eqs. 1 and 3 of the paper).

Running ``r`` simultaneous copies of a task turns its completion time into
the minimum of ``r`` samples; the paper summarizes this with a *speedup
function* ``h`` such that ``E[Θ(r)] = θ / h(r)`` (Eq. 1), assumed strictly
increasing and concave on the positive integers.  For Type-I Pareto task
times the paper derives (Eq. 3)::

    h(x) = 1 + (1 - 1/x) / (α - 1)

which is bounded by ``R = α/(α-1)`` — the constant appearing in Thm. 1.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

from repro.resources import EPS
from repro.workload.distributions import ParetoType1

__all__ = [
    "SpeedupFunction",
    "ParetoSpeedup",
    "NoSpeedup",
    "TabulatedSpeedup",
    "required_clones",
]


@runtime_checkable
class SpeedupFunction(Protocol):
    def __call__(self, r: float) -> float:
        """Expected speedup from running ``r`` simultaneous copies."""
        ...


def _check_copies(r: float) -> None:
    if r < 1:
        raise ValueError(f"number of copies must be >= 1, got {r}")


class ParetoSpeedup:
    """Eq. (3): h(x) = 1 + (1 - 1/x)/(α - 1) for Pareto(α) task times."""

    __slots__ = ("alpha",)

    def __init__(self, alpha: float) -> None:
        if alpha <= 1:
            raise ValueError(f"alpha must exceed 1, got {alpha}")
        self.alpha = float(alpha)

    def __call__(self, r: float) -> float:
        _check_copies(r)
        return 1.0 + (1.0 - 1.0 / r) / (self.alpha - 1.0)

    @property
    def bound(self) -> float:
        """R = sup_x h(x) = α/(α-1) — the constant of Thm. 1."""
        return self.alpha / (self.alpha - 1.0)

    @staticmethod
    def from_moments(mean: float, std: float) -> "ParetoSpeedup":
        """Fit α from the (θ, σ) the Application Master reports (Sec. 5.2)."""
        return ParetoSpeedup(ParetoType1.from_moments(mean, std).alpha)

    def __repr__(self) -> str:
        return f"ParetoSpeedup(alpha={self.alpha:g})"


class NoSpeedup:
    """h(x) ≡ 1: cloning never helps (deterministic task times)."""

    __slots__ = ()

    def __call__(self, r: float) -> float:
        _check_copies(r)
        return 1.0

    def __repr__(self) -> str:
        return "NoSpeedup()"


class TabulatedSpeedup:
    """Speedups measured empirically and interpolated between integers.

    ``values[i]`` is h(i+1); h(1) must be 1 and the table must be
    non-decreasing (concavity is the caller's responsibility — it holds
    for any minimum-of-i.i.d. model).
    """

    __slots__ = ("values",)

    def __init__(self, values: Sequence[float]) -> None:
        vals = [float(v) for v in values]
        if not vals:
            raise ValueError("need at least h(1)")
        if abs(vals[0] - 1.0) > EPS:
            raise ValueError(f"h(1) must be 1, got {vals[0]}")
        for a, b in zip(vals, vals[1:]):
            if b < a:
                raise ValueError("speedup table must be non-decreasing")
        self.values = vals

    def __call__(self, r: float) -> float:
        _check_copies(r)
        idx = r - 1.0
        lo = int(math.floor(idx))
        if lo >= len(self.values) - 1:
            return self.values[-1]
        frac = idx - lo
        return self.values[lo] * (1 - frac) + self.values[lo + 1] * frac

    def __repr__(self) -> str:
        return f"TabulatedSpeedup({self.values})"


def required_clones(
    theta: float,
    deadline: float,
    h: SpeedupFunction,
    *,
    max_copies: int = 64,
) -> int | None:
    """The r_j of Corollary 4.1: the least total copy count r with
    ``deadline · h(r) ≥ θ``, or ``None`` if no r ≤ max_copies achieves it.

    Returns the *total* number of simultaneous copies (original included);
    the number of extra clones is ``r - 1``.
    """
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    if deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline}")
    for r in range(1, max_copies + 1):
        if deadline * h(r) >= theta:
            return r
    return None
