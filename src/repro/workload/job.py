"""A DAG job: arrival time + dependent phases of parallel tasks."""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.resources import EPS
from repro.workload.dag import critical_path_length, validate_dag
from repro.workload.phase import Phase
from repro.workload.task import Task, TaskState

__all__ = ["Job"]

_job_counter = itertools.count()


def fresh_job_id() -> int:
    return next(_job_counter)


class Job:
    """Job *j* of the paper: arrives at a_j with phase DAG G_j (Sec. 3)."""

    __slots__ = ("job_id", "name", "arrival_time", "phases", "finish_time", "user")

    def __init__(
        self,
        phases: Sequence[Phase],
        *,
        arrival_time: float = 0.0,
        name: str = "job",
        job_id: int | None = None,
        user: str = "default",
    ) -> None:
        if not phases:
            raise ValueError("a job needs at least one phase")
        if [p.index for p in phases] != list(range(len(phases))):
            raise ValueError("phase indices must be 0..k-1 in order")
        validate_dag([p.parents for p in phases])
        self.job_id = job_id if job_id is not None else fresh_job_id()
        self.name = name
        self.arrival_time = float(arrival_time)
        self.phases: list[Phase] = list(phases)
        self.finish_time: Optional[float] = None
        self.user = user
        for p in self.phases:
            p.job = self

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def num_tasks(self) -> int:
        return sum(p.num_tasks for p in self.phases)

    def parents_list(self) -> list[tuple[int, ...]]:
        return [p.parents for p in self.phases]

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def phase_ready(self, phase: Phase, now: float | None = None) -> bool:
        """Eq. (7): a phase may run only once all parent phases finished
        (plus its shuffle/start delay, when a current time is given)."""
        parents = phase.parents
        if parents and not all(self.phases[p].is_finished for p in parents):
            return False
        if now is None or phase.start_delay == 0.0:
            return True
        ready_at = self.phase_ready_time(phase)
        return ready_at is not None and now >= ready_at - EPS

    def phase_ready_time(self, phase: Phase) -> Optional[float]:
        """Earliest time the phase may launch: the last parent finish
        plus the phase's start delay (arrival time for root phases).
        None while a parent is unfinished."""
        latest = self.arrival_time
        for p in phase.parents:
            done = self.phases[p].finish_time()
            if done is None:
                return None
            latest = max(latest, done)
        return latest + phase.start_delay

    def ready_phases(self, now: float | None = None) -> list[Phase]:
        return [
            p
            for p in self.phases
            if not p.is_finished and self.phase_ready(p, now)
        ]

    def ready_tasks(self, now: float | None = None) -> list[Task]:
        """Pending tasks whose phase dependencies are satisfied."""
        out: list[Task] = []
        for p in self.ready_phases(now):
            out.extend(t for t in p.tasks if t.state is TaskState.PENDING)
        return out

    def first_ready_phase(self) -> Optional[Phase]:
        """The lowest-index ready phase with pending tasks (Alg. 2 uses
        "the first available phase that can be scheduled at present")."""
        for p in self.ready_phases():
            if any(t.state is TaskState.PENDING for t in p.tasks):
                return p
        return None

    def running_tasks(self) -> list[Task]:
        out: list[Task] = []
        for p in self.phases:
            out.extend(p.running_tasks())
        return out

    def remaining_phases(self) -> list[Phase]:
        """Φ_j(t) of Eq. (16): phases not yet finished."""
        return [p for p in self.phases if not p.is_finished]

    @property
    def is_finished(self) -> bool:
        return all(p.is_finished for p in self.phases)

    def mark_finished_if_done(self, time: float) -> bool:
        """Record f_j = λ_j^{π_j} (Eq. 8) once every phase completed."""
        if self.finish_time is None and self.is_finished:
            self.finish_time = time
            return True
        return False

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def flowtime(self) -> Optional[float]:
        """f_j − a_j, the objective term of (OPT)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def first_start_time(self) -> Optional[float]:
        starts = [t.start_time for p in self.phases for t in p.tasks if t.start_time is not None]
        return min(starts) if starts else None

    @property
    def running_time(self) -> Optional[float]:
        """Execution time: from first task launch to job completion — the
        paper's "running time" metric (Figs. 1, 4b, 5)."""
        if self.finish_time is None:
            return None
        start = self.first_start_time()
        if start is None:
            return None
        return self.finish_time - start

    def resource_usage(self) -> float:
        """Σ over copies of (normalized cpu+mem demand) × duration — the
        resource-usage metric of Fig. 8(b) (normalization applied by the
        caller, which knows the cluster totals)."""
        total = 0.0
        for p in self.phases:
            per_second = p.demand.cpu + p.demand.mem
            for t in p.tasks:
                for c in t.copies:
                    total += per_second * c.duration
        return total

    # ------------------------------------------------------------------
    # Effective lengths (Sec. 5)
    # ------------------------------------------------------------------
    def effective_length(self, r: float) -> float:
        """e_j of Eq. (14): critical-path sum of e_j^k = θ + r·σ."""
        return critical_path_length(
            self.parents_list(), lambda k: self.phases[k].effective_time(r)
        )

    def remaining_effective_length(self, r: float) -> float:
        """e_j(t) of Eq. (17): critical path over unfinished phases only."""
        return critical_path_length(
            self.parents_list(),
            lambda k: self.phases[k].effective_time(r),
            include=lambda k: not self.phases[k].is_finished,
        )

    def __hash__(self) -> int:
        return self.job_id

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, name={self.name!r}, a={self.arrival_time:g}, "
            f"phases={self.num_phases}, tasks={self.num_tasks})"
        )
