"""DAG utilities for phase dependency graphs.

Jobs are DAGs of phases (Sec. 3); each phase's parents must finish before
any of its tasks may start (Eq. 7).  These helpers validate the graph,
produce topological orders, and compute critical paths over arbitrary
per-phase length functions — the L_j of Eq. (14) and the remaining-phase
variant L_j(t) of Eq. (17).
"""

from __future__ import annotations

from typing import Callable, Sequence

import networkx as nx

__all__ = [
    "validate_dag",
    "topological_order",
    "critical_path_length",
    "critical_path",
    "as_networkx",
]


def as_networkx(parents: Sequence[tuple[int, ...]]) -> nx.DiGraph:
    """Build a DiGraph with an edge parent → child per dependency."""
    g = nx.DiGraph()
    g.add_nodes_from(range(len(parents)))
    for child, ps in enumerate(parents):
        for p in ps:
            g.add_edge(p, child)
    return g


def validate_dag(parents: Sequence[tuple[int, ...]]) -> None:
    """Raise ``ValueError`` unless the phase graph is a proper DAG with
    in-range parent indices."""
    n = len(parents)
    for child, ps in enumerate(parents):
        for p in ps:
            if not (0 <= p < n):
                raise ValueError(f"phase {child}: parent {p} out of range")
            if p == child:
                raise ValueError(f"phase {child} depends on itself")
    g = as_networkx(parents)
    if not nx.is_directed_acyclic_graph(g):
        raise ValueError("phase dependencies contain a cycle")


def topological_order(parents: Sequence[tuple[int, ...]]) -> list[int]:
    """A topological order of phase indices (parents before children)."""
    n = len(parents)
    indeg = [0] * n
    children: list[list[int]] = [[] for _ in range(n)]
    for child, ps in enumerate(parents):
        indeg[child] = len(ps)
        for p in ps:
            children[p].append(child)
    # Deterministic Kahn: process lowest index first.
    ready = sorted(i for i in range(n) if indeg[i] == 0)
    order: list[int] = []
    while ready:
        u = ready.pop(0)
        order.append(u)
        for c in children[u]:
            indeg[c] -= 1
            if indeg[c] == 0:
                # Insert keeping 'ready' sorted; lists are tiny (phases).
                lo = 0
                while lo < len(ready) and ready[lo] < c:
                    lo += 1
                ready.insert(lo, c)
    if len(order) != n:
        raise ValueError("phase dependencies contain a cycle")
    return order


def critical_path_length(
    parents: Sequence[tuple[int, ...]],
    length_of: Callable[[int], float],
    *,
    include: Callable[[int], bool] | None = None,
) -> float:
    """Length of the longest path where node *k* weighs ``length_of(k)``.

    ``include`` restricts the computation to a phase subset (excluded
    phases contribute zero length but still propagate dependencies) —
    used for the remaining-phase critical path L_j(t) of Eq. (17).
    """
    order = topological_order(parents)
    longest: dict[int, float] = {}
    for k in order:
        own = length_of(k) if (include is None or include(k)) else 0.0
        best_parent = max((longest[p] for p in parents[k]), default=0.0)
        longest[k] = best_parent + own
    return max(longest.values(), default=0.0)


def critical_path(
    parents: Sequence[tuple[int, ...]],
    length_of: Callable[[int], float],
) -> list[int]:
    """The phases on (one of) the longest path(s), in topological order."""
    order = topological_order(parents)
    longest: dict[int, float] = {}
    back: dict[int, int | None] = {}
    for k in order:
        own = length_of(k)
        best_parent: int | None = None
        best = 0.0
        for p in parents[k]:
            if longest[p] > best:
                best, best_parent = longest[p], p
        longest[k] = best + own
        back[k] = best_parent
    if not longest:
        return []
    end = max(longest, key=lambda k: longest[k])
    path: list[int] = []
    node: int | None = end
    while node is not None:
        path.append(node)
        node = back[node]
    path.reverse()
    return path
