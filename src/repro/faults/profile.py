"""Fault profiles: the tunables of the deterministic failure model.

A :class:`FaultProfile` parameterizes three independent seeded failure
processes (DESIGN.md §5.5):

* **server churn** — each server alternates up/down through an
  alternating-renewal process with exponential time-to-failure (mean
  ``mtbf``) and exponential repair time (mean ``mttr``).  A crash kills
  every resident copy; recovery returns the full capacity.
* **per-copy failure** — every launched copy draws an exponential
  time-to-failure (rate ``copy_fail_rate``); if it fires before the
  copy's sampled finish time, the copy dies (its server stays up).
* **transient slowdown** — each server opens background-load windows at
  rate ``slowdown_rate``; within a window, newly launched copies sample
  durations against ``slowdown_factor ×`` the server's nominal slowdown
  for an exponential window length (mean ``slowdown_duration``).

Profiles are frozen and serialize to/from the plain-scalar dict stored
in a recorded trace's ``meta["faults"]``, so a failure run replays from
its trace alone.  The named presets (``churn``, ``flaky``, ``brownout``,
``chaos``) are what ``--fault-profile`` resolves on the CLI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Mapping

__all__ = ["FaultProfile", "FAULT_PROFILES", "named_profile"]


@dataclass(frozen=True)
class FaultProfile:
    """Parameters of the seeded failure processes (all simulated seconds).

    The default instance injects nothing (``enabled`` is False): churn
    is off at ``mtbf=inf`` and both rates are zero.
    """

    #: Mean time between failures per server; ``inf`` disables churn.
    mtbf: float = math.inf
    #: Mean time to repair (down-time) per server crash.
    mttr: float = 60.0
    #: Per-copy failure hazard (1/s); 0 disables copy failures.
    copy_fail_rate: float = 0.0
    #: Per-server slowdown-window arrival rate (1/s); 0 disables.
    slowdown_rate: float = 0.0
    #: Multiplier applied to the server's slowdown inside a window.
    slowdown_factor: float = 2.0
    #: Mean length of one slowdown window.
    slowdown_duration: float = 30.0
    #: Refuse to crash the last healthy server (keeps every workload
    #: schedulable; the skipped failure still consumes its RNG draws so
    #: the process stays deterministic).
    keep_one_up: bool = True

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf}")
        if self.mttr <= 0:
            raise ValueError(f"mttr must be positive, got {self.mttr}")
        if self.copy_fail_rate < 0:
            raise ValueError("copy_fail_rate must be non-negative")
        if self.slowdown_rate < 0:
            raise ValueError("slowdown_rate must be non-negative")
        if self.slowdown_factor <= 1.0:
            raise ValueError("slowdown_factor must exceed 1")
        if self.slowdown_duration <= 0:
            raise ValueError("slowdown_duration must be positive")

    # ------------------------------------------------------------------
    @property
    def server_churn(self) -> bool:
        return math.isfinite(self.mtbf)

    @property
    def enabled(self) -> bool:
        """Whether this profile injects anything at all."""
        return self.server_churn or self.copy_fail_rate > 0 or self.slowdown_rate > 0

    # ------------------------------------------------------------------
    # Trace round-trip (meta["faults"]["profile"])
    # ------------------------------------------------------------------
    def to_meta(self) -> dict:
        """Plain-scalar dict for a trace header (``inf`` → ``None`` so
        the JSONL stays strict-JSON parseable)."""
        return {
            "mtbf": None if math.isinf(self.mtbf) else self.mtbf,
            "mttr": self.mttr,
            "copy_fail_rate": self.copy_fail_rate,
            "slowdown_rate": self.slowdown_rate,
            "slowdown_factor": self.slowdown_factor,
            "slowdown_duration": self.slowdown_duration,
            "keep_one_up": self.keep_one_up,
        }

    @staticmethod
    def from_meta(data: dict) -> "FaultProfile":
        mtbf = data.get("mtbf")
        return FaultProfile(
            mtbf=math.inf if mtbf is None else float(mtbf),
            mttr=float(data.get("mttr", 60.0)),
            copy_fail_rate=float(data.get("copy_fail_rate", 0.0)),
            slowdown_rate=float(data.get("slowdown_rate", 0.0)),
            slowdown_factor=float(data.get("slowdown_factor", 2.0)),
            slowdown_duration=float(data.get("slowdown_duration", 30.0)),
            keep_one_up=bool(data.get("keep_one_up", True)),
        )


#: Named presets for the CLI's ``--fault-profile`` and the test battery.
#: Frozen: shared module state must stay immutable (repro-lint RL014).
FAULT_PROFILES: Mapping[str, FaultProfile] = MappingProxyType({
    "none": FaultProfile(),
    # Server crash/recover churn only: one crash every ~10 simulated
    # minutes per server, ~45 s repairs.
    "churn": FaultProfile(mtbf=600.0, mttr=45.0),
    # Copy failures only: a copy running ~10 minutes has ~63% chance of
    # dying before finishing.
    "flaky": FaultProfile(copy_fail_rate=1.0 / 600.0),
    # Transient background-load windows only.
    "brownout": FaultProfile(
        slowdown_rate=1.0 / 900.0, slowdown_factor=3.0, slowdown_duration=60.0
    ),
    # Everything at once, for adversarial smoke runs.
    "chaos": FaultProfile(
        mtbf=400.0,
        mttr=30.0,
        copy_fail_rate=1.0 / 900.0,
        slowdown_rate=1.0 / 600.0,
        slowdown_factor=2.5,
        slowdown_duration=45.0,
    ),
})


def named_profile(
    name: str,
    *,
    mtbf: float | None = None,
    mttr: float | None = None,
    copy_fail_rate: float | None = None,
) -> FaultProfile:
    """Resolve a preset by name, with optional per-field overrides
    (the CLI's ``--mtbf``/``--mttr``/``--copy-fail-rate`` flags)."""
    try:
        profile = FAULT_PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; choose from "
            f"{', '.join(sorted(FAULT_PROFILES))}"
        ) from None
    overrides = {
        k: v
        for k, v in (
            ("mtbf", mtbf),
            ("mttr", mttr),
            ("copy_fail_rate", copy_fail_rate),
        )
        if v is not None
    }
    return replace(profile, **overrides) if overrides else profile
