"""The deterministic fault injector (DESIGN.md §5.5).

:class:`FaultInjector` owns the *scheduling* of fault events — when a
server crashes, recovers, slows down, or a copy dies — while the engine
owns their *semantics* (killing resident copies, returning capacity,
re-queueing orphans) through the same validated ``apply`` choke point
that scheduler actions use.

Determinism contract:

* Every random draw comes from the injector's **own** RNG stream
  (``churn_seed``, derived from the run seed when not given), so
  enabling faults never shifts the duration or policy streams — a run
  with faults disabled is bit-identical to a build without this
  subsystem at all.
* Draws happen at fixed points of the event order: one (or two) at
  priming per server, one per processed fault event to extend that
  server's renewal chain, and one per launched copy when copy failures
  are on.  Replay re-processes the identical event sequence, so the
  injector re-draws the identical values and the failure realization is
  part of the trace's determinism oracle.
* Failure chains stop extending once the workload is complete (no
  active jobs, no pending arrivals), so churn cannot keep an otherwise
  finished simulation alive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.faults.profile import FaultProfile
from repro.sim.events import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.server import Server
    from repro.sim.engine import SimulationEngine
    from repro.workload.task import TaskCopy

__all__ = ["FaultInjector", "CHURN_SEED_OFFSET"]

#: Offset separating the fault RNG stream from the duration stream when
#: no explicit ``churn_seed`` is given (prime, like the policy stream's
#: 104_729 offset, so the streams never collide for small seeds).
CHURN_SEED_OFFSET = 15_485_863


class FaultInjector:
    """Seeded failure processes feeding the engine's event queue."""

    __slots__ = ("engine", "profile", "rng", "churn_seed", "_saved_slowdown")

    def __init__(
        self,
        engine: "SimulationEngine",
        profile: FaultProfile,
        *,
        churn_seed: int | None = None,
        seed: int = 0,
    ) -> None:
        if not profile.enabled:
            raise ValueError("FaultInjector needs a profile that injects something")
        self.engine = engine
        self.profile = profile
        self.churn_seed = seed + CHURN_SEED_OFFSET if churn_seed is None else churn_seed
        self.rng = np.random.default_rng(self.churn_seed)
        # Exact pre-window slowdown per server id, restored bit-for-bit
        # when the window closes (no divide-back float drift).
        self._saved_slowdown: dict[int, float] = {}

    def _exp(self, mean: float) -> float:
        return float(self.rng.exponential(mean))

    # ------------------------------------------------------------------
    # Process priming and renewal
    # ------------------------------------------------------------------
    def prime(self) -> None:
        """Push each server's first failure/slowdown event (ascending
        server id, so the draw order is reproducible)."""
        profile = self.profile
        events = self.engine.events
        for server in self.engine.cluster:
            if profile.server_churn:
                events.push(self._exp(profile.mtbf), EventKind.SERVER_FAIL, server)
            if profile.slowdown_rate > 0.0:
                events.push(
                    self._exp(1.0 / profile.slowdown_rate),
                    EventKind.SERVER_SLOW_START,
                    server,
                )

    def schedule_recovery(self, server: "Server") -> None:
        """After a crash: one repair-time draw, then the recover event."""
        self.engine.events.push(
            self.engine.now + self._exp(self.profile.mttr),
            EventKind.SERVER_RECOVER,
            server,
        )

    def schedule_next_failure(self, server: "Server") -> None:
        """Extend the server's churn chain — unless the workload is done
        (the draw still happens, keeping the stream position independent
        of *when* the workload drains)."""
        t = self.engine.now + self._exp(self.profile.mtbf)
        if self.engine.workload_active():
            self.engine.events.push(t, EventKind.SERVER_FAIL, server)

    def schedule_next_slowdown(self, server: "Server") -> None:
        t = self.engine.now + self._exp(1.0 / self.profile.slowdown_rate)
        if self.engine.workload_active():
            self.engine.events.push(t, EventKind.SERVER_SLOW_START, server)

    # ------------------------------------------------------------------
    # Copy failures
    # ------------------------------------------------------------------
    def on_copy_launched(self, copy: "TaskCopy") -> None:
        """Engine hook, called once per launched copy: draw the copy's
        time-to-failure and arm a COPY_FAIL event if it precedes the
        copy's finish.  Exactly one draw per launch regardless of the
        outcome, so the stream position depends only on launch count."""
        if self.profile.copy_fail_rate <= 0.0:
            return
        fail_at = copy.start_time + self._exp(1.0 / self.profile.copy_fail_rate)
        if fail_at < copy.finish_time:
            self.engine.events.push(fail_at, EventKind.COPY_FAIL, copy)

    # ------------------------------------------------------------------
    # Transient slowdown windows
    # ------------------------------------------------------------------
    def on_slow_start(self, server: "Server") -> None:
        """Open a background-load window: scale the server's slowdown
        and arm the window's end.  Only *newly sampled* durations see
        the scaled factor — copies already running keep their draw,
        modelling contention at launch time."""
        sid = server.server_id
        if sid not in self._saved_slowdown:  # nested windows don't stack
            self._saved_slowdown[sid] = server.slowdown
            server.slowdown = server.slowdown * self.profile.slowdown_factor
        self.engine.events.push(
            self.engine.now + self._exp(self.profile.slowdown_duration),
            EventKind.SERVER_SLOW_END,
            server,
        )

    def on_slow_end(self, server: "Server") -> None:
        """Close the window, restoring the exact pre-window slowdown."""
        saved = self._saved_slowdown.pop(server.server_id, None)
        if saved is not None:
            server.slowdown = saved
        self.schedule_next_slowdown(server)
