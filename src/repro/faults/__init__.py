"""Deterministic fault injection (DESIGN.md §5.5).

Seeded failure processes — server crash/recover churn, per-copy task
failure, transient server slowdown — driven through the simulation
engine's event queue and action protocol.  See
:class:`~repro.faults.profile.FaultProfile` for the model parameters
and :class:`~repro.faults.injector.FaultInjector` for the determinism
contract.
"""

from repro.faults.injector import CHURN_SEED_OFFSET, FaultInjector
from repro.faults.profile import FAULT_PROFILES, FaultProfile, named_profile

__all__ = [
    "FaultProfile",
    "FaultInjector",
    "FAULT_PROFILES",
    "named_profile",
    "CHURN_SEED_OFFSET",
]
