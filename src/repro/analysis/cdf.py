"""Empirical CDF utilities.

Most of the paper's figures are CDFs (Figs. 4b, 5, 6, 8, 9, 11); the
benches report them as (x, F(x)) series and as point reads ("95% of jobs
complete within 350 s").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["empirical_cdf", "cdf_at", "fraction_below", "percentile"]


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative fractions) — the standard step CDF."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        return v, np.array([])
    f = np.arange(1, v.size + 1) / v.size
    return v, f


def cdf_at(values: Sequence[float], points: Sequence[float]) -> np.ndarray:
    """F(points): fraction of values ≤ each point."""
    v = np.sort(np.asarray(values, dtype=float))
    p = np.asarray(points, dtype=float)
    if v.size == 0:
        return np.zeros_like(p)
    return np.searchsorted(v, p, side="right") / v.size


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values ≤ threshold (a single CDF read)."""
    return float(cdf_at(values, [threshold])[0])


def percentile(values: Sequence[float], q: float) -> float:
    """The q-quantile (q in [0, 1])."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    return float(np.quantile(np.asarray(values, dtype=float), q))
