"""Text reports for the benchmark harness.

Every bench regenerates its figure as either a summary table (bar-chart
figures) or an (x, CDF) series (CDF figures); these helpers format both
and compute the per-job ratio distributions of Figs. 8, 9 and 11.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.cdf import cdf_at
from repro.sim.metrics import SimulationResult

__all__ = [
    "format_table",
    "comparison_table",
    "cdf_table",
    "pairwise_ratios",
    "ratio_cdf",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table (no external deps)."""
    cols = [[str(h)] + [_fmt(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(c) for c in col) for col in cols]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rows:
        lines.append(
            " | ".join(_fmt(x).ljust(w) for x, w in zip(r, widths))
        )
    return "\n".join(lines)


def _fmt(x: object) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.01:
            return f"{x:.3g}"
        return f"{x:.2f}"
    return str(x)


def comparison_table(results: Mapping[str, SimulationResult]) -> str:
    """One row per scheduler with the headline metrics."""
    headers = [
        "scheduler",
        "total_flowtime",
        "mean_flowtime",
        "mean_runtime",
        "makespan",
        "total_usage",
        "clones",
        "clone_frac",
    ]
    rows = []
    for name, res in results.items():
        rows.append(
            [
                name,
                res.total_flowtime,
                res.mean_flowtime,
                res.mean_running_time,
                res.makespan,
                res.total_usage,
                res.clones_launched,
                res.clone_task_fraction,
            ]
        )
    return format_table(headers, rows)


def cdf_table(
    series: Mapping[str, Sequence[float]], points: Sequence[float], *, label: str = "x"
) -> str:
    """CDF reads of several series at common x points (a text 'figure')."""
    headers = [label] + list(series.keys())
    rows = []
    per_series = {name: cdf_at(vals, points) for name, vals in series.items()}
    for i, p in enumerate(points):
        rows.append([p] + [float(per_series[name][i]) for name in series])
    return format_table(headers, rows)


def pairwise_ratios(
    numerator: SimulationResult, denominator: SimulationResult
) -> np.ndarray:
    """Per-job flowtime ratios between two runs of the same workload.

    Jobs are paired by arrival order (job ids are fresh per run, but both
    runs build the workload in the same order).
    """
    a = sorted(numerator.records, key=lambda r: (r.arrival_time, r.job_id))
    b = sorted(denominator.records, key=lambda r: (r.arrival_time, r.job_id))
    if len(a) != len(b):
        raise ValueError("runs completed different job counts")
    return np.array([x.flowtime / y.flowtime for x, y in zip(a, b)])


def ratio_cdf(
    numerator: SimulationResult,
    denominator: SimulationResult,
    *,
    metric: str = "flowtime",
) -> np.ndarray:
    """Per-job metric ratios (Figs. 8, 9, 11): flowtime, running_time or
    normalized usage of each job under run A divided by run B."""
    a = sorted(numerator.records, key=lambda r: (r.arrival_time, r.job_id))
    b = sorted(denominator.records, key=lambda r: (r.arrival_time, r.job_id))
    if len(a) != len(b):
        raise ValueError("runs completed different job counts")
    if metric == "flowtime":
        va = [r.flowtime for r in a]
        vb = [r.flowtime for r in b]
    elif metric == "running_time":
        va = [r.running_time for r in a]
        vb = [r.running_time for r in b]
    elif metric == "usage":
        va = [r.normalized_usage(numerator.cluster_capacity) for r in a]
        vb = [r.normalized_usage(denominator.cluster_capacity) for r in b]
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return np.array([x / y for x, y in zip(va, vb)])
