"""Terminal-friendly plots: ASCII CDF curves and bar charts.

The paper's figures are CDFs and bars; these helpers render both as
text so the benches and examples can show the *shape* of a result
without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.cdf import cdf_at

__all__ = ["ascii_cdf", "ascii_bars", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of a series."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return ""
    lo, hi = float(v.min()), float(v.max())
    if hi - lo < 1e-12:
        return _BLOCKS[4] * v.size
    idx = np.round((v - lo) / (hi - lo) * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def ascii_cdf(
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 12,
) -> str:
    """Plot several empirical CDFs on one character grid.

    X spans [0, max value across series]; Y spans [0, 1].  Each series
    is drawn with its own marker (first letter of its name).
    """
    if not series:
        return "(no data)"
    xmax = max(max(vals) for vals in series.values() if len(vals))
    if xmax <= 0:
        return "(degenerate data)"
    grid = [[" "] * width for _ in range(height)]
    xs = np.linspace(0, xmax, width)
    for name, vals in series.items():
        marker = name[0]
        fr = cdf_at(vals, xs)
        for col, f in enumerate(fr):
            row = height - 1 - int(round(f * (height - 1)))
            if grid[row][col] == " ":
                grid[row][col] = marker
            elif grid[row][col] != marker:
                grid[row][col] = "*"  # overlap
    lines = []
    for i, row in enumerate(grid):
        y = 1.0 - i / (height - 1)
        lines.append(f"{y:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      0{' ' * (width - len(f'{xmax:g}') - 1)}{xmax:g}")
    legend = "  ".join(f"{name[0]}={name}" for name in series)
    lines.append(f"      {legend}")
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    *,
    width: int = 40,
) -> str:
    """Horizontal bar chart of named values (e.g. total flowtimes)."""
    if not values:
        return "(no data)"
    vmax = max(values.values())
    if vmax <= 0:
        return "(degenerate data)"
    label_w = max(len(k) for k in values)
    lines = []
    for name, v in values.items():
        bar = "█" * max(1, int(round(v / vmax * width))) if v > 0 else ""
        lines.append(f"{name.ljust(label_w)} | {bar} {v:g}")
    return "\n".join(lines)
