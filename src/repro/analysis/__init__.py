"""Analysis helpers: CDFs, ratio distributions, text reports."""

from repro.analysis.cdf import empirical_cdf, cdf_at, fraction_below, percentile
from repro.analysis.plots import ascii_bars, ascii_cdf, sparkline
from repro.analysis.report import (
    comparison_table,
    cdf_table,
    ratio_cdf,
    pairwise_ratios,
    format_table,
)

__all__ = [
    "ascii_bars",
    "ascii_cdf",
    "sparkline",
    "empirical_cdf",
    "cdf_at",
    "fraction_below",
    "percentile",
    "comparison_table",
    "cdf_table",
    "ratio_cdf",
    "pairwise_ratios",
    "format_table",
]
