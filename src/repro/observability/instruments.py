"""The simulator's metric catalog, pre-bound for the engine hot path.

One place declares every metric family the instrumented layers emit, so
names, label sets and help strings cannot drift between emit sites.
:class:`SimInstruments` registers the families against one run's
registry and exposes **pre-bound children** (plain attribute handles)
so the engine's per-event cost is a single ``inc``/``observe`` call.

Sim-derived families (deterministic under a fixed seed):

======================================== ======== ==========================
``repro_sim_events_total{kind}``          counter  engine events processed
``repro_sim_decision_points_total{cause}``counter  scheduler entry points
``repro_sim_actions_total{kind}``         counter  applied Launch/Kill
``repro_sim_actions_rejected_total{kind}``counter  InvalidAction rejects
``repro_sim_copies_launched_total``       counter  all copies
``repro_sim_clones_launched_total``       counter  clone copies
``repro_sim_preempt_kills_total``         counter  first-copy-wins kills
``repro_sim_copy_duration_seconds``       histogram sampled copy durations
``repro_sim_job_flowtime_seconds``        histogram f_j − a_j per job
``repro_sim_active_jobs``                 gauge    arrived, unfinished jobs
``repro_sim_time_seconds``                gauge    sim clock at run end
``repro_placement_queries_total{path}``   counter  cluster placement scans
``repro_placement_launched_total{mode}``  counter  fill-loop launches
``repro_workload_jobs_total`` (+tasks/phases)      workload composition
======================================== ======== ==========================

Wall families (``wall=True``, excluded from deterministic snapshots):
``repro_wall_schedule_pass_seconds`` (histogram) and
``repro_wall_run_seconds`` (gauge).
"""

from __future__ import annotations

from repro.observability.registry import MetricsRegistry, log2_buckets

__all__ = ["SimInstruments", "FaultInstruments"]

#: Sub-second wall timings need finer low buckets than sim durations:
#: ~1 µs to ~1 s in doubling steps.
_WALL_BUCKETS = log2_buckets(-20, 4)

#: Per-task resource demands are O(1); flow times are O(10⁴) s — the
#: default layout covers both.
_DEMAND_BUCKETS = log2_buckets(-10, 10)


class SimInstruments:
    """Registers the catalog and pre-binds the hot-path children."""

    __slots__ = (
        "registry",
        "events",
        "decision_points",
        "actions",
        "launches",
        "kills",
        "rejected_launches",
        "rejected_kills",
        "copies",
        "clones",
        "preempt_kills",
        "copy_duration",
        "job_flowtime",
        "active_jobs",
        "sim_time",
        "placement_queries",
        "placement_launched",
        "wall_schedule_pass",
        "wall_run",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = r = registry
        #: Labelled family — the engine pre-binds one child per EventKind.
        self.events = r.counter(
            "repro_sim_events_total", "engine events processed", ("kind",)
        )
        self.decision_points = r.counter(
            "repro_sim_decision_points_total",
            "scheduler entry points opened",
            ("cause",),
        )
        self.actions = r.counter(
            "repro_sim_actions_total",
            "typed actions applied at the engine choke point",
            ("kind",),
        )
        self.launches = self.actions.labels(kind="launch")
        self.kills = self.actions.labels(kind="kill")
        rejected = r.counter(
            "repro_sim_actions_rejected_total",
            "typed actions rejected by validation (InvalidAction)",
            ("kind",),
        )
        self.rejected_launches = rejected.labels(kind="launch")
        self.rejected_kills = rejected.labels(kind="kill")
        self.copies = r.counter(
            "repro_sim_copies_launched_total", "task copies launched (all kinds)"
        )
        self.clones = r.counter(
            "repro_sim_clones_launched_total", "clone copies launched"
        )
        self.preempt_kills = r.counter(
            "repro_sim_preempt_kills_total",
            "sibling copies killed by first-copy-wins completion",
        )
        self.copy_duration = r.histogram(
            "repro_sim_copy_duration_seconds",
            "sampled copy durations (simulated seconds)",
        )
        self.job_flowtime = r.histogram(
            "repro_sim_job_flowtime_seconds",
            "per-job flowtime f_j - a_j (simulated seconds)",
        )
        self.active_jobs = r.gauge(
            "repro_sim_active_jobs", "arrived, unfinished jobs"
        )
        self.sim_time = r.gauge(
            "repro_sim_time_seconds", "simulated clock at the end of the run"
        )
        self.placement_queries = r.counter(
            "repro_placement_queries_total",
            "cluster placement scans (best-fit / fitting / any-fits)",
            ("path",),
        )
        self.placement_launched = r.counter(
            "repro_placement_launched_total",
            "copies launched by the shared fill loops",
            ("mode",),
        )
        # -- host-time families (segregated; never in the deterministic
        #    snapshot) ---------------------------------------------------
        self.wall_schedule_pass = r.histogram(
            "repro_wall_schedule_pass_seconds",
            "wall-clock time per schedule pass",
            buckets=_WALL_BUCKETS,
            wall=True,
        )
        self.wall_run = r.gauge(
            "repro_wall_run_seconds", "wall-clock time of the whole run", wall=True
        )

    # ------------------------------------------------------------------
    def record_workload(self, jobs) -> None:
        """Account a built workload: job/phase/task counts and per-task
        demand distributions (all sim-derived, hence deterministic).
        Cold path — families are created idempotently on first use."""
        reg = self.registry
        jobs_c = reg.counter("repro_workload_jobs_total", "jobs in the built workload")
        phases_c = reg.counter(
            "repro_workload_phases_total", "phases in the built workload"
        )
        tasks_c = reg.counter(
            "repro_workload_tasks_total", "tasks in the built workload"
        )
        cpu = reg.histogram(
            "repro_workload_task_demand_cpu",
            "per-task CPU demand (cores)",
            buckets=_DEMAND_BUCKETS,
        )
        mem = reg.histogram(
            "repro_workload_task_demand_mem",
            "per-task memory demand (GB)",
            buckets=_DEMAND_BUCKETS,
        )
        for job in jobs:
            jobs_c.inc()
            for phase in job.phases:
                phases_c.inc()
                n = len(phase.tasks)
                tasks_c.inc(n)
                for _ in range(n):
                    cpu.observe(phase.demand.cpu)
                    mem.observe(phase.demand.mem)


class FaultInstruments:
    """Fault-injection metric families (DESIGN.md §5.5).

    Registered **only** when a run has a fault injector attached — a
    no-fault run's metric snapshot must stay byte-identical to a build
    without the fault subsystem, so these families never appear in it.
    """

    __slots__ = (
        "server_fails",
        "server_recovers",
        "copy_fails",
        "slowdowns",
        "copies_lost",
        "masked_by_clone",
        "tasks_requeued",
        "servers_down",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        injected = registry.counter(
            "repro_faults_injected_total",
            "fault events injected, by kind",
            ("kind",),
        )
        self.server_fails = injected.labels(kind="server_fail")
        self.server_recovers = injected.labels(kind="server_recover")
        self.copy_fails = injected.labels(kind="copy_fail")
        self.slowdowns = injected.labels(kind="slowdown")
        self.copies_lost = registry.counter(
            "repro_faults_copies_lost_total",
            "task copies killed by injected faults",
        )
        self.masked_by_clone = registry.counter(
            "repro_faults_recoveries_masked_by_clone_total",
            "fault-killed copies whose task kept running on a surviving clone",
        )
        self.tasks_requeued = registry.counter(
            "repro_faults_tasks_requeued_total",
            "tasks orphaned by faults and returned to the pending pool",
        )
        self.servers_down = registry.gauge(
            "repro_faults_servers_down", "servers currently failed"
        )
