"""Span-style tracing of scheduler decision points and engine events.

A :class:`Span` is one enter/exit interval: an engine event being
processed, a scheduler entry point running, a schedule pass.  Spans
nest (the tracer keeps an explicit stack), carry the **simulated** time
at enter and exit plus structured attributes, and are exported as JSONL
alongside the decision trace (DESIGN.md §5.3/§5.4).

**Determinism contract.**  The serialized fields ``seq``/``name``/
``depth``/``parent``/``t_enter``/``t_exit``/``attrs`` are pure
functions of the simulation's event sequence, so a seeded run exports
byte-identical span JSONL every time.  Each span *also* measures its
wall-clock duration (``wall_ms``, via ``perf_counter``) for profiling —
that field is host noise and is only written when ``include_wall=True``
is requested explicitly.

The tracer is bounded like the decision trace, but with the opposite
overflow policy: spans are diagnostics, not replay inputs, so past
``maxlen`` new spans are *counted and dropped* rather than raising —
a long run degrades to truncated tracing instead of failing.
"""

from __future__ import annotations

import json
import time as _wallclock
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

__all__ = ["Span", "SpanTracer", "SPAN_SCHEMA", "DEFAULT_SPAN_MAXLEN"]

#: JSONL schema tag written in the header line of an exported span trace.
SPAN_SCHEMA = "repro-span-trace/v1"

#: Default bound on recorded spans; overflow is counted in ``dropped``.
DEFAULT_SPAN_MAXLEN = 1_000_000

_AttrValue = "str | int | float | bool | None"


def _zero_clock() -> float:
    """Fallback clock for an unbound tracer (module-level so the tracer
    pickles; engines rebind their own closure after restore)."""
    return 0.0


@dataclass
class Span:
    """One enter/exit interval.  ``t_*`` are simulated seconds;
    ``wall_ms`` is host time and excluded from deterministic exports."""

    seq: int
    name: str
    depth: int
    parent: int | None
    t_enter: float
    attrs: dict = field(default_factory=dict)
    t_exit: float | None = None
    wall_ms: float | None = None
    _wall_start: float | None = None

    def to_dict(self, *, include_wall: bool = False) -> dict:
        out = {
            "seq": self.seq,
            "name": self.name,
            "depth": self.depth,
            "parent": self.parent,
            "t_enter": self.t_enter,
            "t_exit": self.t_exit,
            "attrs": self.attrs,
        }
        if include_wall:
            out["wall_ms"] = self.wall_ms
        return out


class SpanTracer:
    """Nestable span recorder driven by an external (simulated) clock.

    ``clock`` supplies the simulated time stamped on enter/exit — the
    engine binds ``lambda: engine.now`` at attach time.  Misnested
    exits (closing a span that is not the innermost open one) raise
    immediately: silent misnesting would corrupt every later parent
    attribution.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        maxlen: int = DEFAULT_SPAN_MAXLEN,
    ) -> None:
        if maxlen < 1:
            raise ValueError("span maxlen must be positive")
        self.clock: Callable[[], float] = clock if clock is not None else _zero_clock
        self.maxlen = maxlen
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._seq = 0

    # -- pickling (checkpoint/restore, DESIGN.md §5.8) ------------------
    def __getstate__(self):
        # The clock is a closure over the owning engine; drop it here and
        # let the engine's __setstate__ rebind it after restore (a
        # standalone restored tracer falls back to the zero clock).
        state = self.__dict__.copy()
        state["clock"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self.clock is None:
            self.clock = _zero_clock

    # -- recording ------------------------------------------------------
    def enter(self, name: str, **attrs) -> Span:
        span = Span(
            seq=self._seq,
            name=name,
            depth=len(self._stack),
            parent=self._stack[-1].seq if self._stack else None,
            t_enter=float(self.clock()),
            attrs=attrs,
            _wall_start=_wallclock.perf_counter(),
        )
        self._seq += 1
        self._stack.append(span)
        return span

    def exit(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            open_name = self._stack[-1].name if self._stack else "<none>"
            raise RuntimeError(
                f"misnested span exit: closing {span.name!r} while "
                f"{open_name!r} is the innermost open span"
            )
        self._stack.pop()
        span.t_exit = float(self.clock())
        assert span._wall_start is not None
        span.wall_ms = 1e3 * (_wallclock.perf_counter() - span._wall_start)
        span._wall_start = None
        if len(self.spans) < self.maxlen:
            self.spans.append(span)
        else:
            self.dropped += 1

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        s = self.enter(name, **attrs)
        try:
            yield s
        finally:
            self.exit(s)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def __len__(self) -> int:
        return len(self.spans)

    # -- export ---------------------------------------------------------
    def to_dicts(self, *, include_wall: bool = False) -> list[dict]:
        # Spans are appended on *exit*, so re-sort by seq to present them
        # in enter order (parents before children).
        return [
            s.to_dict(include_wall=include_wall)
            for s in sorted(self.spans, key=lambda s: s.seq)
        ]

    def dump_jsonl(self, path: str | Path, *, include_wall: bool = False) -> None:
        """Header line (schema + span/drop counts) then one span per
        line, in enter order.  Deterministic unless ``include_wall``."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            header = {
                "schema": SPAN_SCHEMA,
                "spans": len(self.spans),
                "dropped": self.dropped,
            }
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for d in self.to_dicts(include_wall=include_wall):
                fh.write(json.dumps(d, sort_keys=True, separators=(",", ":")) + "\n")

    @staticmethod
    def load_jsonl(path: str | Path) -> tuple[dict, list[dict]]:
        """Parse an exported span trace back into (header, span dicts)."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line.strip():
                raise ValueError(f"{path}: empty span trace")
            header = json.loads(header_line)
            if header.get("schema") != SPAN_SCHEMA:
                raise ValueError(
                    f"{path}: unknown span schema {header.get('schema')!r} "
                    f"(expected {SPAN_SCHEMA!r})"
                )
            return header, [json.loads(line) for line in fh if line.strip()]
