"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the measurement substrate of DESIGN.md §5.4.  Three
metric kinds, Prometheus-flavoured but with no client library:

* :class:`Counter` — monotone accumulator (events, actions, launches);
* :class:`Gauge` — last-write-wins level (active jobs, sim clock);
* :class:`Histogram` — fixed **log-scale** buckets (powers of two from
  2⁻¹⁰ to 2²⁰) so the bucket layout never depends on the data and two
  identical runs produce byte-identical snapshots.

**Determinism contract.**  Everything recorded from simulated
quantities (sim-time durations, counts, flow times) is a pure function
of the event sequence, so a seeded run snapshots identically every
time.  Metrics that measure the *host* — wall-clock timings — must be
registered with ``wall=True``; they are segregated into their own
namespace and excluded from :meth:`MetricsRegistry.snapshot` unless
``include_wall=True`` is requested.  This is what lets the replay
oracle (§5.3) keep passing with observability enabled.

Labelled series are supported through pre-bound children
(``counter.labels(kind="launch")`` returns a handle whose ``inc`` is a
plain attribute bump), so hot paths pay one method call per event.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "log2_buckets",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def log2_buckets(lo_exp: int = -10, hi_exp: int = 20) -> tuple[float, ...]:
    """Fixed log-scale bucket bounds: ``2**lo_exp .. 2**hi_exp``.

    Powers of two are exactly representable, so bucket edges are
    platform-independent and a value compares against them without any
    rounding ambiguity.
    """
    if hi_exp <= lo_exp:
        raise ValueError("hi_exp must exceed lo_exp")
    return tuple(float(2.0**k) for k in range(lo_exp, hi_exp + 1))


#: The default histogram layout: 31 buckets, ~1 ms to ~12 days when the
#: observed unit is seconds.  Fixed at import time — never data-derived.
DEFAULT_BUCKETS = log2_buckets()


def _fmt_value(v: float) -> str:
    """Shortest exact rendering: integral floats print as ints, the
    rest as ``repr`` (round-trip exact), infinities as ``+Inf``."""
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if float(v).is_integer() and abs(v) < 1e16:
        return str(int(v))
    return repr(float(v))


def _label_key(labelnames: tuple[str, ...], labels: Mapping[str, str]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared labelnames "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Common machinery: naming, labelled children, series ordering."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        *,
        wall: bool = False,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for ln in labelnames:
            if not _NAME_RE.match(ln):
                raise ValueError(f"invalid label name {ln!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.wall = wall
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child series for one label assignment (created on first
        use; subsequent calls return the same pre-bound handle)."""
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    @property
    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} is labelled {self.labelnames}; "
                "bind a child with .labels(...) first"
            )
        return self._children[()]

    def _sorted_series(self) -> Iterator[tuple[tuple[str, ...], object]]:
        """Series in sorted label order — the canonical export order."""
        return iter(sorted(self._children.items()))


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Counter(_Metric):
    """Monotonically increasing accumulator."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        return self._default.value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Metric):
    """Last-write-wins level."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    @property
    def value(self) -> float:
        return self._default.value


class _HistogramChild:
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # Prometheus `le` semantics: a value lands in the first bucket
        # whose upper bound is >= value; values beyond the last bound
        # land in +Inf.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, self.counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out


class Histogram(_Metric):
    """Distribution with fixed log-scale buckets (see module docs)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        wall: bool = False,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        super().__init__(name, help, labelnames, wall=wall)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def cumulative(self) -> list[tuple[float, int]]:
        return self._default.cumulative()

    @property
    def sum(self) -> float:
        return self._default.sum

    @property
    def count(self) -> int:
        return self._default.count


class MetricsRegistry:
    """A namespace of metrics with deterministic export.

    ``counter``/``gauge``/``histogram`` are **idempotent**: asking for an
    existing name returns the registered metric (so instrumented modules
    need no coordination), but re-declaring with a different kind,
    label set or wall flag is a hard error — a silent mismatch would
    corrupt the export schema.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- registration ---------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if (
                type(existing) is not cls
                or existing.labelnames != tuple(labelnames)
                or existing.wall != bool(kwargs.get("wall", False))
            ):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"labels={existing.labelnames} wall={existing.wall}"
                )
            return existing
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames=(), *, wall: bool = False
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames, wall=wall)

    def gauge(
        self, name: str, help: str = "", labelnames=(), *, wall: bool = False
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames, wall=wall)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        wall: bool = False,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets, wall=wall
        )
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ValueError(f"metric {name!r} already registered with other buckets")
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> _Metric:
        return self._metrics[name]

    def reset(self) -> None:
        self._metrics.clear()

    # -- export ---------------------------------------------------------
    def snapshot(self, *, include_wall: bool = False) -> dict:
        """JSON-ready nested dict, keys sorted, series label-sorted.

        Sim-derived metrics only by default; ``include_wall=True`` adds
        the host-time (``wall=True``) metrics.  Two same-seed runs
        produce byte-identical ``json.dumps(snapshot, sort_keys=True)``.
        """
        out: dict[str, dict] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if m.wall and not include_wall:
                continue
            series = []
            for key, child in m._sorted_series():
                labels = dict(zip(m.labelnames, key))
                if isinstance(child, _HistogramChild):
                    series.append(
                        {
                            "labels": labels,
                            "buckets": [
                                ["+Inf" if math.isinf(le) else le, c]
                                for le, c in child.cumulative()
                            ],
                            "count": child.count,
                            "sum": child.sum,
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[name] = {
                "kind": m.kind,
                "help": m.help,
                "wall": m.wall,
                "series": series,
            }
        return out

    def to_json(self, *, include_wall: bool = False) -> str:
        return json.dumps(
            self.snapshot(include_wall=include_wall),
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_prometheus(self, *, include_wall: bool = False) -> str:
        """Prometheus text exposition (v0.0.4), deterministically ordered."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if m.wall and not include_wall:
                continue
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            lines.append(f"# TYPE {name} {m.kind}")
            for key, child in m._sorted_series():
                base = dict(zip(m.labelnames, key))
                if isinstance(child, _HistogramChild):
                    for le, c in child.cumulative():
                        lines.append(
                            f"{name}_bucket"
                            f"{_fmt_labels({**base, 'le': _fmt_value(le)})} {c}"
                        )
                    lines.append(f"{name}_sum{_fmt_labels(base)} {_fmt_value(child.sum)}")
                    lines.append(f"{name}_count{_fmt_labels(base)} {child.count}")
                else:
                    lines.append(f"{name}{_fmt_labels(base)} {_fmt_value(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in labels.items())
    return "{" + body + "}"


def _escape(v: str) -> str:
    return str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
