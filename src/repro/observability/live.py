"""Live metrics publication for long-running sessions (DESIGN.md §5.8).

End-of-run export (``--metrics-out``) is useless for a service that
never ends.  This module publishes the observability registry *while
the session runs*, in the two standard Prometheus ingestion shapes:

* :class:`TextfilePublisher` — atomically rewrites a ``.prom`` text
  file on every publication (node_exporter textfile-collector style);
* :class:`MetricsServer` — a background HTTP endpoint serving the
  current exposition on ``GET /metrics`` (direct-scrape style).

Both consume the deterministic Prometheus exposition of
:meth:`~repro.observability.registry.MetricsRegistry.to_prometheus`;
publication cadence is driven by the session loop (simulated-time
boundaries), so the *sequence* of published snapshots is reproducible
even though wall-clock scrape times are not.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimulationEngine

__all__ = [
    "TextfilePublisher",
    "MetricsServer",
    "parse_metrics_addr",
    "combine_publishers",
]


def _exposition(engine: "SimulationEngine", include_wall: bool) -> str:
    obs = engine.observability
    if obs is None:
        return ""
    return obs.to_prometheus(include_wall=include_wall)


class TextfilePublisher:
    """Callable publisher writing the exposition to a text file.

    The write is atomic (tmp + rename): a scraper never reads a torn
    half-snapshot, and a crash leaves the previous complete file.
    """

    def __init__(self, path: str | Path, *, include_wall: bool = False) -> None:
        self.path = Path(path)
        self.include_wall = include_wall
        self.publications = 0

    def __call__(self, engine: "SimulationEngine") -> None:
        text = _exposition(engine, self.include_wall)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(text)
        tmp.replace(self.path)
        self.publications += 1


class _Handler(BaseHTTPRequestHandler):
    # The exposition provider is installed on the server instance.
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] != "/metrics":
            self.send_error(404, "only /metrics is served")
            return
        body = self.server.exposition().encode()  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrape logging is noise on a long-lived service


class MetricsServer:
    """Background ``GET /metrics`` endpoint over the latest snapshot.

    The session loop publishes by calling the server (it is a publisher
    like :class:`TextfilePublisher`); the handler serves the most
    recently published exposition, so scrapes never touch live engine
    state from another thread.
    """

    def __init__(self, host: str, port: int, *, include_wall: bool = False) -> None:
        self.include_wall = include_wall
        self._lock = threading.Lock()
        self._text = ""
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.exposition = self._current  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def _current(self) -> str:
        with self._lock:
            return self._text

    def __call__(self, engine: "SimulationEngine") -> None:
        text = _exposition(engine, self.include_wall)
        with self._lock:
            self._text = text

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)


def parse_metrics_addr(addr: str) -> tuple[str, int]:
    """Parse ``host:port`` (``:port`` binds all interfaces)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected host:port, got {addr!r}")
    return host or "0.0.0.0", int(port)


def combine_publishers(
    *publishers: Callable[["SimulationEngine"], None],
) -> Callable[["SimulationEngine"], None] | None:
    """Fold multiple publishers into one session callback."""
    active = [p for p in publishers if p is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def publish(engine: "SimulationEngine") -> None:
        for p in active:
            p(engine)

    return publish
