"""Opt-in wall-time profiling of the simulator's phases.

Answers "where does the wall time of a run go?" by attributing
``perf_counter`` intervals to named phases — ``engine`` (event
processing), ``scheduler`` (policy entry points), ``placement`` (the
fill loops / best-fit kernels) — with correct nesting: a phase's
**self** time excludes the time spent in phases it opened.

Enabled with ``REPRO_PROFILE=1`` or ``SimulationEngine(profile=True)``;
everything here is host-time measurement, so profiler output is never
part of the deterministic snapshot (it surfaces under the wall section
of :meth:`repro.observability.Observability.snapshot`).
"""

from __future__ import annotations

import os
import time as _wallclock
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseProfiler", "profile_default", "PROFILE_ENV"]

PROFILE_ENV = "REPRO_PROFILE"


def profile_default() -> bool:
    """True when ``REPRO_PROFILE`` selects profiling."""
    return os.environ.get(PROFILE_ENV, "").strip().lower() in ("1", "true", "yes", "on")


class _PhaseStat:
    __slots__ = ("calls", "total_s", "child_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.child_s = 0.0

    @property
    def self_s(self) -> float:
        return self.total_s - self.child_s


class PhaseProfiler:
    """Accumulates inclusive and self wall-time per named phase."""

    def __init__(self) -> None:
        self._stats: dict[str, _PhaseStat] = {}
        # (phase name, enter perf_counter, child-time accumulator)
        self._stack: list[list] = []

    def enter(self, name: str) -> list:
        """Open a phase frame; pair with :meth:`exit` in a try/finally."""
        frame = [name, _wallclock.perf_counter(), 0.0]
        self._stack.append(frame)
        return frame

    def exit(self, frame: list) -> None:
        self._stack.pop()
        elapsed = _wallclock.perf_counter() - frame[1]
        name = frame[0]
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = _PhaseStat()
        stat.calls += 1
        stat.total_s += elapsed
        stat.child_s += frame[2]
        if self._stack:
            self._stack[-1][2] += elapsed

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        frame = self.enter(name)
        try:
            yield
        finally:
            self.exit(frame)

    def report(self) -> dict[str, dict[str, float]]:
        """``{phase: {calls, total_s, self_s}}``, phases name-sorted."""
        return {
            name: {
                "calls": stat.calls,
                "total_s": stat.total_s,
                "self_s": stat.self_s,
            }
            for name, stat in sorted(self._stats.items())
        }

    def format_report(self) -> str:
        """Aligned table, largest self-time first."""
        rows = sorted(
            self.report().items(), key=lambda kv: kv[1]["self_s"], reverse=True
        )
        if not rows:
            return "profile: no phases recorded\n"
        lines = [f"{'phase':<12s} {'calls':>9s} {'total':>10s} {'self':>10s}"]
        for name, r in rows:
            lines.append(
                f"{name:<12s} {int(r['calls']):>9d} "
                f"{r['total_s'] * 1e3:>8.1f}ms {r['self_s'] * 1e3:>8.1f}ms"
            )
        return "\n".join(lines) + "\n"
