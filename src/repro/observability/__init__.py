"""First-class observability for the simulator (DESIGN.md §5.4).

Three composable pieces, bundled per run by :class:`Observability`:

* a zero-dependency **metrics registry** (:mod:`.registry`) — counters,
  gauges and fixed-log-bucket histograms with deterministic JSON and
  Prometheus-text exports;
* **span tracing** (:mod:`.spans`) of engine events and scheduler
  decision points — nestable enter/exit intervals stamped with sim-time
  (and, segregated, wall-time), exported as JSONL alongside the
  decision trace;
* opt-in **profiling hooks** (:mod:`.profiling`) attributing wall time
  to the ``engine`` / ``scheduler`` / ``placement`` phases
  (``REPRO_PROFILE=1`` or ``SimulationEngine(profile=True)``).

**Determinism contract.**  Every metric and span field derived from the
simulation is a pure function of the seeded event sequence; host-time
measurements are flagged ``wall`` and excluded from default exports.
Hence two same-seed runs produce byte-identical snapshots, and a run
recorded and replayed with observability enabled still satisfies
:func:`repro.sim.replay.assert_replay_identical` — observability reads
the simulation, it never steers it.

A run opts in explicitly (``run_simulation(..., observability=Observability())``)
or via the environment (``REPRO_METRICS=1`` / ``REPRO_PROFILE=1``);
with no opt-in the engine carries a ``None`` handle and the hot path
pays a pointer check per event (guarded by the benchmark regression
gate).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.observability.instruments import SimInstruments
from repro.observability.profiling import (
    PROFILE_ENV,
    PhaseProfiler,
    profile_default,
)
from repro.observability.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log2_buckets,
)
from repro.observability.spans import (
    DEFAULT_SPAN_MAXLEN,
    SPAN_SCHEMA,
    Span,
    SpanTracer,
)

__all__ = [
    "Observability",
    "observability_default",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "log2_buckets",
    "Span",
    "SpanTracer",
    "SPAN_SCHEMA",
    "DEFAULT_SPAN_MAXLEN",
    "PhaseProfiler",
    "profile_default",
    "SimInstruments",
    "METRICS_SCHEMA",
    "METRICS_ENV",
    "PROFILE_ENV",
]

#: Schema tag on exported metrics snapshots.
METRICS_SCHEMA = "repro-metrics/v1"

#: Environment opt-in for metrics + span collection.
METRICS_ENV = "REPRO_METRICS"


class Observability:
    """One run's bundle: registry + tracer + (optional) profiler.

    Construct one per simulation (isolated, thread-safe across runs)
    and hand it to the engine/runner.  ``metrics``/``spans`` default on;
    ``profile=None`` defers to ``REPRO_PROFILE``.
    """

    def __init__(
        self,
        *,
        metrics: bool = True,
        spans: bool = True,
        profile: bool | None = None,
        span_maxlen: int = DEFAULT_SPAN_MAXLEN,
    ) -> None:
        if profile is None:
            profile = profile_default()
        self.registry: MetricsRegistry | None = MetricsRegistry() if metrics else None
        self.tracer: SpanTracer | None = (
            SpanTracer(maxlen=span_maxlen) if spans else None
        )
        self.profiler: PhaseProfiler | None = PhaseProfiler() if profile else None
        self.sim: SimInstruments | None = (
            SimInstruments(self.registry) if self.registry is not None else None
        )

    # -- binding (engine attach points) ---------------------------------
    def bind_clock(self, clock) -> None:
        """Point the span tracer at the engine's simulated clock."""
        if self.tracer is not None:
            self.tracer.clock = clock

    def bind_cluster(self, cluster) -> None:
        """Install pre-bound placement-query counters on the cluster."""
        if self.sim is not None:
            cluster._obs_placement = (
                self.sim.placement_queries.labels(path="vectorized"),
                self.sim.placement_queries.labels(path="scalar"),
            )

    # -- cold-path conveniences -----------------------------------------
    def inc(self, name: str, amount: float = 1.0, help: str = "", **labels) -> None:
        """Lazily-created counter increment (cold paths only)."""
        if self.registry is None:
            return
        c = self.registry.counter(name, help, tuple(sorted(labels)))
        (c.labels(**labels) if labels else c).inc(amount)

    def observe(self, name: str, value: float, help: str = "", **labels) -> None:
        """Lazily-created histogram observation (cold paths only)."""
        if self.registry is None:
            return
        h = self.registry.histogram(name, help, tuple(sorted(labels)))
        (h.labels(**labels) if labels else h).observe(value)

    def record_workload(self, jobs) -> None:
        if self.sim is not None:
            self.sim.record_workload(jobs)

    # -- export ---------------------------------------------------------
    def snapshot(self, *, include_wall: bool = False) -> dict:
        """Schema-tagged snapshot: metrics plus (wall-only) profile."""
        out: dict = {
            "schema": METRICS_SCHEMA,
            "metrics": (
                self.registry.snapshot(include_wall=include_wall)
                if self.registry is not None
                else {}
            ),
        }
        if include_wall and self.profiler is not None:
            out["profile"] = self.profiler.report()
        return out

    def to_json(self, *, include_wall: bool = False) -> str:
        return json.dumps(
            self.snapshot(include_wall=include_wall),
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_prometheus(self, *, include_wall: bool = False) -> str:
        if self.registry is None:
            return ""
        return self.registry.to_prometheus(include_wall=include_wall)

    def dump_metrics(self, path: str | Path, *, include_wall: bool = False) -> None:
        """Write the JSON snapshot (``*.prom`` paths get Prometheus text)."""
        path = Path(path)
        if path.suffix == ".prom":
            path.write_text(self.to_prometheus(include_wall=include_wall))
        else:
            path.write_text(self.to_json(include_wall=include_wall) + "\n")

    def dump_spans(self, path: str | Path, *, include_wall: bool = False) -> None:
        if self.tracer is None:
            raise ValueError("span tracing is disabled for this Observability")
        self.tracer.dump_jsonl(path, include_wall=include_wall)


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def observability_default() -> Observability | None:
    """The engine's default: a fresh bundle iff the environment opts in
    (``REPRO_METRICS=1`` and/or ``REPRO_PROFILE=1``), else ``None``."""
    if _env_truthy(METRICS_ENV) or profile_default():
        return Observability()
    return None
