"""The cluster: a collection of heterogeneous servers plus topology.

Provides the aggregate quantities the schedulers need — total capacity
(the denominators of the dominant-share Eqs. 9/15), availability scans,
and utilization summaries — while each :class:`~repro.cluster.server.Server`
owns its own allocation bookkeeping.

Placement scans run on a structure-of-arrays NumPy mirror of per-server
availability (:class:`~repro.cluster.mirror.AvailabilityMirror`),
updated incrementally on every allocate/release, so ``best_fit_server``,
``servers_fitting`` and ``any_fits`` are masked reductions rather than
Python loops.  The original per-server loops are kept as a scalar
reference path, selected with ``Cluster(vectorized=False)`` or the
``REPRO_SCALAR_PLACEMENT=1`` environment variable; both paths produce
identical placements (see DESIGN.md §"Placement engine").
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Sequence

from repro.cluster.mirror import AvailabilityMirror
from repro.cluster.server import Server
from repro.cluster.topology import Topology
from repro.resources import Resources

__all__ = ["Cluster"]


def _vectorized_default() -> bool:
    """Vectorized unless REPRO_SCALAR_PLACEMENT selects the reference path."""
    flag = os.environ.get("REPRO_SCALAR_PLACEMENT", "").strip().lower()
    return flag in ("", "0", "false", "no")


class Cluster:
    """An indexed set of servers with cached aggregate capacity.

    A server belongs to at most one cluster at a time: construction
    points each server's mirror hook at this cluster's availability
    arrays.
    """

    def __init__(
        self,
        servers: Sequence[Server],
        topology: Topology | None = None,
        *,
        vectorized: bool | None = None,
    ) -> None:
        if not servers:
            raise ValueError("a cluster needs at least one server")
        ids = [s.server_id for s in servers]
        if ids != list(range(len(servers))):
            raise ValueError("server ids must be 0..n-1 in order")
        self.servers: list[Server] = list(servers)
        self.topology = topology if topology is not None else Topology.single_rack(len(servers))
        if len(self.topology) != len(self.servers):
            raise ValueError("topology size does not match server count")
        self._total_capacity = Resources(
            sum(s.capacity.cpu for s in self.servers),
            sum(s.capacity.mem for s in self.servers),
        )
        #: Query-path selector.  The mirror is maintained either way, so
        #: flipping this attribute at runtime is safe (the equivalence
        #: benchmarks toggle it on a live cluster).
        self.vectorized = vectorized if vectorized is not None else _vectorized_default()
        self.mirror = AvailabilityMirror(self.servers)
        for s in self.servers:
            s._mirror = self.mirror
        #: Pre-bound (vectorized, scalar) placement-query counters,
        #: installed by Observability.bind_cluster; None keeps the
        #: disabled query path at one attribute load + branch.
        self._obs_placement = None

    def _count_query(self) -> None:
        children = self._obs_placement
        if children is not None:
            children[0 if self.vectorized else 1].inc()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_capacity(self) -> Resources:
        """Σ_i (C_i, M_i) — the dominant-share denominator."""
        return self._total_capacity

    def total_allocated(self) -> Resources:
        return self.mirror.total_allocated()

    def total_available(self) -> Resources:
        return self.mirror.total_available()

    def utilization(self) -> Resources:
        return self.total_allocated().normalized_by(self._total_capacity)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    def __getitem__(self, server_id: int) -> Server:
        return self.servers[server_id]

    def servers_fitting(self, demand: Resources) -> list[Server]:
        """Servers that can currently host ``demand`` (Eq. 5 check)."""
        if self._obs_placement is not None:
            self._count_query()
        if self.vectorized:
            return [self.servers[i] for i in self.mirror.fitting_ids(demand)]
        return [s for s in self.servers if s.can_fit(demand)]

    def any_fits(self, demand: Resources) -> bool:
        if self._obs_placement is not None:
            self._count_query()
        if self.vectorized:
            return self.mirror.any_fits(demand)
        return any(s.can_fit(demand) for s in self.servers)

    def best_fit_server(self, demand: Resources) -> Server | None:
        """The fitting server maximizing the demand·available alignment.

        This is Tetris' placement heuristic, also used by DollyMP for its
        final placement step; ``None`` when no server fits.  Equal scores
        break to the **lowest server id** — the scalar loop's strict
        ``>`` keeps the first maximum and the vectorized ``argmax``
        returns the first maximal index, so both paths agree exactly.
        """
        if self._obs_placement is not None:
            self._count_query()
        if self.vectorized:
            hit = self.mirror.best_fit(demand)
            return None if hit is None else self.servers[hit[0]]
        best: Server | None = None
        best_score = -1.0
        for s in self.servers:
            if not s.up:
                continue
            avail = s.available
            if not demand.fits_in(avail):
                continue
            score = demand.dot(avail)
            if score > best_score:  # strict: ties keep the lowest id
                best, best_score = s, score
        return best

    def num_up(self) -> int:
        """Servers currently in service (all of them absent fault injection)."""
        return self.mirror.num_up()

    def running_copy_count(self) -> int:
        return sum(len(s.running_copies) for s in self.servers)

    def snapshot_available(self) -> list[Resources]:
        """Immutable view of per-server availability (for what-if packing)."""
        return [s.available for s in self.servers]

    @staticmethod
    def build(
        specs: Iterable[tuple[Resources, float]],
        topology: Topology | None = None,
        *,
        vectorized: bool | None = None,
    ) -> "Cluster":
        """Build a cluster from ``(capacity, slowdown)`` specs."""
        servers = [
            Server(i, cap, slowdown=slow)
            for i, (cap, slow) in enumerate(specs)
        ]
        return Cluster(servers, topology, vectorized=vectorized)
