"""The cluster: a collection of heterogeneous servers plus topology.

Provides the aggregate quantities the schedulers need — total capacity
(the denominators of the dominant-share Eqs. 9/15), availability scans,
and utilization summaries — while each :class:`~repro.cluster.server.Server`
owns its own allocation bookkeeping.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.cluster.server import Server
from repro.cluster.topology import Topology
from repro.resources import Resources, sum_resources

__all__ = ["Cluster"]


class Cluster:
    """An indexed set of servers with cached aggregate capacity."""

    def __init__(self, servers: Sequence[Server], topology: Topology | None = None) -> None:
        if not servers:
            raise ValueError("a cluster needs at least one server")
        ids = [s.server_id for s in servers]
        if ids != list(range(len(servers))):
            raise ValueError("server ids must be 0..n-1 in order")
        self.servers: list[Server] = list(servers)
        self.topology = topology if topology is not None else Topology.single_rack(len(servers))
        if len(self.topology) != len(self.servers):
            raise ValueError("topology size does not match server count")
        self._total_capacity = sum_resources(s.capacity for s in self.servers)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_capacity(self) -> Resources:
        """Σ_i (C_i, M_i) — the dominant-share denominator."""
        return self._total_capacity

    def total_allocated(self) -> Resources:
        return sum_resources(s.allocated for s in self.servers)

    def total_available(self) -> Resources:
        return sum_resources(s.available for s in self.servers)

    def utilization(self) -> Resources:
        return self.total_allocated().normalized_by(self._total_capacity)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    def __getitem__(self, server_id: int) -> Server:
        return self.servers[server_id]

    def servers_fitting(self, demand: Resources) -> list[Server]:
        """Servers that can currently host ``demand`` (Eq. 5 check)."""
        return [s for s in self.servers if s.can_fit(demand)]

    def any_fits(self, demand: Resources) -> bool:
        return any(s.can_fit(demand) for s in self.servers)

    def best_fit_server(self, demand: Resources) -> Server | None:
        """The fitting server maximizing the demand·available alignment.

        This is Tetris' placement heuristic, also used by DollyMP for its
        final placement step; ``None`` when no server fits.
        """
        best: Server | None = None
        best_score = -1.0
        for s in self.servers:
            avail = s.available
            if not demand.fits_in(avail):
                continue
            score = demand.dot(avail)
            if score > best_score:
                best, best_score = s, score
        return best

    def running_copy_count(self) -> int:
        return sum(len(s.running_copies) for s in self.servers)

    def snapshot_available(self) -> list[Resources]:
        """Immutable view of per-server availability (for what-if packing)."""
        return [s.available for s in self.servers]

    @staticmethod
    def build(specs: Iterable[tuple[Resources, float]], topology: Topology | None = None) -> "Cluster":
        """Build a cluster from ``(capacity, slowdown)`` specs."""
        servers = [
            Server(i, cap, slowdown=slow)
            for i, (cap, slow) in enumerate(specs)
        ]
        return Cluster(servers, topology)
