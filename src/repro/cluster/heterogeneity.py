"""Builders for the clusters used in the paper's evaluation.

* :func:`paper_cluster_30_nodes` — the private testbed of Sec. 6.1: 30
  heterogeneous nodes / 328 cores in two racks (2 powerful 24-core/48 GB
  servers, 7 normal 16-core servers with 32–64 GB, 21 small 8-core/16 GB
  nodes: 2·24 + 7·16 + 21·8 = 328 cores).
* :func:`trace_sim_cluster` — the trace-driven simulator's cluster of
  Sec. 6.3 ("more than 30K heterogeneous servers"), parameterized so the
  benches run a scaled-down instance by default and the full 30K when
  asked.
* :func:`homogeneous_cluster` / :func:`single_server_cluster` — the
  settings of the theory sections (Sec. 4.2's transient single-server
  case, Thm. 2's special cases).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.cluster.topology import Topology
from repro.resources import Resources

__all__ = [
    "paper_cluster_30_nodes",
    "trace_sim_cluster",
    "homogeneous_cluster",
    "single_server_cluster",
]

#: Relative task slowdowns for the three server classes of the testbed.
#: Powerful servers run tasks faster than nominal, the small nodes slower;
#: the ratios are modest because the paper folds the dominant straggler
#: causes into the stochastic task-time model instead.
POWERFUL_SLOWDOWN = 0.75
NORMAL_SLOWDOWN = 1.0
SMALL_SLOWDOWN = 1.25


def paper_cluster_30_nodes(
    *,
    powerful_slowdown: float = POWERFUL_SLOWDOWN,
    normal_slowdown: float = NORMAL_SLOWDOWN,
    small_slowdown: float = SMALL_SLOWDOWN,
) -> Cluster:
    """The 30-node / 328-core heterogeneous testbed of Sec. 6.1."""
    servers: list[Server] = []

    def add(cap: Resources, slowdown: float) -> None:
        servers.append(Server(len(servers), cap, slowdown=slowdown))

    for _ in range(2):  # powerful servers
        add(Resources.of(24, 48), powerful_slowdown)
    for i in range(7):  # normal servers, memory alternating through 32-64 GB
        add(Resources.of(16, 32 if i % 2 == 0 else 64), normal_slowdown)
    for _ in range(21):  # small nodes
        add(Resources.of(8, 16), small_slowdown)

    assert sum(s.capacity.cpu for s in servers) == 328
    topo = Topology.two_racks(len(servers))
    # Topology.two_racks splits by index; re-tag servers to match.
    for s in servers:
        s.rack = topo.rack(s.server_id)
    return Cluster(servers, topo)


def trace_sim_cluster(
    num_servers: int = 300,
    *,
    seed: int = 0,
    cpu_scale: float = 1.0,
) -> Cluster:
    """A large heterogeneous cluster for the trace-driven simulations.

    Server classes follow the same three-way mix as the testbed but drawn
    at Google-trace-like proportions (most machines mid-sized).  The
    ``cpu_scale`` knob shrinks every server's core count — Fig. 10 sweeps
    cluster load by "varying the number of CPU cores in the cluster" with
    a fixed workload, which this reproduces directly.

    ``num_servers=30_000`` reproduces the paper's full-scale setting; the
    default of 300 keeps the benches laptop-sized while preserving the
    heterogeneity mix (documented in DESIGN.md).
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    rng = np.random.default_rng(seed)
    # (capacity, slowdown, weight) per class
    classes = [
        (Resources.of(24, 48), POWERFUL_SLOWDOWN, 0.15),
        (Resources.of(16, 32), NORMAL_SLOWDOWN, 0.55),
        (Resources.of(8, 16), SMALL_SLOWDOWN, 0.30),
    ]
    weights = np.array([c[2] for c in classes])
    picks = rng.choice(len(classes), size=num_servers, p=weights / weights.sum())
    servers = []
    for i, k in enumerate(picks):
        cap, slow, _ = classes[int(k)]
        # Exact sentinel: 1.0 means "no scaling requested", not a measured
        # quantity.
        if cpu_scale != 1.0:  # repro-lint: ignore[RL003]
            cap = Resources.of(max(1.0, round(cap.cpu * cpu_scale)), cap.mem)
        servers.append(Server(i, cap, slowdown=slow))
    racks = max(1, num_servers // 40)
    topo = Topology([i % racks for i in range(num_servers)])
    for s in servers:
        s.rack = topo.rack(s.server_id)
    return Cluster(servers, topo)


def homogeneous_cluster(
    num_servers: int,
    capacity: Resources = Resources.of(16, 32),
    *,
    slowdown: float = 1.0,
) -> Cluster:
    """A uniform cluster (the setting of most of the theory analysis)."""
    servers = [Server(i, capacity, slowdown=slowdown) for i in range(num_servers)]
    return Cluster(servers, Topology.single_rack(num_servers))


def single_server_cluster(
    capacity: Resources = Resources.of(1.0, 1.0), *, slowdown: float = 1.0
) -> Cluster:
    """One server of (normalized) capacity — Sec. 4.2's transient setting."""
    return Cluster([Server(0, capacity, slowdown=slowdown)], Topology.single_rack(1))
