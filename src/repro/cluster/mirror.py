"""Structure-of-arrays NumPy mirror of per-server availability.

The placement hot path — ``Cluster.best_fit_server`` and the batched
fill loops in :mod:`repro.schedulers.packing` — scores a demand against
every server's remaining capacity.  Doing that with a Python loop over
:class:`~repro.cluster.server.Server` objects costs O(M) attribute
lookups and method calls per query; at the paper's 30K-server scale
(Sec. 6.3.3) that dominates the scheduling overhead.  The mirror keeps
the same information as four flat ``float64`` arrays so every query
becomes a handful of vectorized kernels.

Data layout (all arrays indexed by ``server_id``):

* ``avail_cpu`` / ``avail_mem`` — the server's current availability,
  exactly the floats stored in ``Server._available``;
* ``alloc_cpu`` / ``alloc_mem`` — the server's current allocation,
  exactly the floats stored in ``Server._allocated``;
* ``cap_cpu`` / ``cap_mem`` — immutable capacities;
* ``up`` — boolean liveness mask (fault injection): down servers are
  masked out of every feasibility query.

Invariants:

* The arrays are updated *incrementally*: every ``Server.allocate`` /
  ``Server.release`` pushes that one server's new values through
  :meth:`AvailabilityMirror.update`, so the mirror always equals a fresh
  per-server recompute (``tests/cluster/test_mirror_property.py`` checks
  this after arbitrary allocate/kill/finish sequences).
* Scores are computed with the same floating-point expression and
  operation order as the scalar reference (``demand.cpu * avail.cpu +
  demand.mem * avail.mem``, then an optional per-server weight), so the
  vectorized and scalar paths produce bit-identical scores.
* Ties break to the **lowest server id**: ``np.argmax`` returns the
  first maximal index, matching the scalar loop's strict ``>`` update.
* The feasibility mask evaluates ``avail + EPS >= demand`` — the exact
  expression of :meth:`repro.resources.Resources.fits_in` (``demand <=
  avail + EPS``) with identical rounding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.resources import EPS, Resources

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.server import Server
    from repro.sim.shard import ShardMap

__all__ = ["AvailabilityMirror"]


class AvailabilityMirror:
    """Incrementally-maintained SoA view of a cluster's availability.

    Sharded mode (DESIGN.md §5.10): :meth:`bind_shards` splits the
    arrays into K contiguous blocks and maintains a per-shard
    *stale-high* availability bound — an upper bound on every server's
    ``avail`` in the block, kept valid for free because allocation only
    shrinks availability (releases max-update the bound; full block
    evaluations tighten it exactly).  The blocked kernels scan shards in
    ascending id order and skip any block whose bound proves it cannot
    beat the current best, which preserves bitwise identity: max/argmax
    combines are compare-only (regrouping-safe), ties already resolve to
    the lowest server id, and the accounting sums below deliberately
    stay global full-array reductions (``np.sum`` is *not*
    regrouping-safe, so per-shard partial sums would drift in ulps).
    """

    __slots__ = (
        "avail_cpu",
        "avail_mem",
        "alloc_cpu",
        "alloc_mem",
        "cap_cpu",
        "cap_mem",
        "up",
        "_coalescing",
        "_pending",
        "_alloc_cache",
        "_shard_slices",
        "_shard_of",
        "_ub_cpu",
        "_ub_mem",
    )

    def __init__(self, servers: Sequence["Server"]) -> None:
        m = len(servers)
        # Sharded-mode state (bind_shards); None/empty when unsharded.
        self._shard_slices: list[tuple[int, int]] | None = None
        self._shard_of: list[int] | None = None
        self._ub_cpu: list[float] = []
        self._ub_mem: list[float] = []
        # Coalesced-update window (batched event drains): while open,
        # ``update`` calls park the server in ``_pending`` instead of
        # storing immediately; ``flush`` replays each parked server's
        # *current* state once.  ``update`` is idempotent (it pushes the
        # server's present floats, not a delta), so deferring N updates
        # of one server to a single store is exact.
        self._coalescing = False
        self._pending: dict[int, "Server"] = {}
        # Memoized (cpu, mem) allocation totals, invalidated by any
        # update: the engine reads them once per accounting window, and
        # windows bounded by events that move no capacity (bare ticks)
        # reuse the previous reduction.  The cached floats are the exact
        # ``np.sum`` outputs — identical arrays give identical sums, so
        # memoization cannot perturb the utilization integrals.
        self._alloc_cache: tuple[float, float] | None = None
        self.cap_cpu = np.fromiter((s.capacity.cpu for s in servers), np.float64, m)
        self.cap_mem = np.fromiter((s.capacity.mem for s in servers), np.float64, m)
        self.avail_cpu = np.empty(m, np.float64)
        self.avail_mem = np.empty(m, np.float64)
        self.alloc_cpu = np.empty(m, np.float64)
        self.alloc_mem = np.empty(m, np.float64)
        #: Liveness mask (fault injection): down servers are excluded
        #: from every feasibility mask regardless of their availability
        #: floats, matching ``Server.can_fit``'s up-check exactly.
        self.up = np.empty(m, dtype=bool)
        self.refresh(servers)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def refresh(self, servers: Sequence["Server"]) -> None:
        """Rebuild every entry from the servers (O(M); used at
        construction and as the reference point of the property tests)."""
        for s in servers:
            self.update(s)

    def bind_shards(self, shard_map: "ShardMap") -> None:
        """Enable the blocked kernels over a contiguous shard map.

        Idempotent per map; rebinding with a different K rebuilds the
        bounds.  Non-contiguous maps are rejected — they shard the event
        queue but not the mirror (the engine only binds contiguous ones).
        """
        if not shard_map.contiguous:
            raise ValueError("mirror sharding requires a contiguous shard map")
        if shard_map.num_servers != len(self.cap_cpu):
            raise ValueError(
                f"shard map covers {shard_map.num_servers} servers, "
                f"mirror holds {len(self.cap_cpu)}"
            )
        slices = shard_map.slices
        self._shard_slices = slices
        of = [0] * shard_map.num_servers
        for k, (lo, hi) in enumerate(slices):
            for i in range(lo, hi):
                of[i] = k
        self._shard_of = of
        self._retighten_bounds()

    def _retighten_bounds(self) -> None:
        """Recompute every shard's availability bound exactly."""
        slices = self._shard_slices
        assert slices is not None
        self._ub_cpu = [
            float(self.avail_cpu[lo:hi].max()) if hi > lo else -np.inf
            for lo, hi in slices
        ]
        self._ub_mem = [
            float(self.avail_mem[lo:hi].max()) if hi > lo else -np.inf
            for lo, hi in slices
        ]

    def update(self, server: "Server") -> None:
        """Push one server's availability/allocation into the arrays.

        Called by ``Server.allocate``/``Server.release`` after every
        bookkeeping change — O(1), four scalar stores (or one pending-
        dict store inside a coalesce window).
        """
        if self._coalescing:
            self._pending[server.server_id] = server
            return
        self._alloc_cache = None
        i = server.server_id
        avail = server.available
        alloc = server.allocated
        self.avail_cpu[i] = avail.cpu
        self.avail_mem[i] = avail.mem
        self.alloc_cpu[i] = alloc.cpu
        self.alloc_mem[i] = alloc.mem
        self.up[i] = server.up
        if self._shard_of is not None:
            # Stale-high bound: only growth (releases/recoveries) must
            # be folded in immediately; shrink is tolerated until the
            # next full block evaluation tightens the bound.
            k = self._shard_of[i]
            if avail.cpu > self._ub_cpu[k]:
                self._ub_cpu[k] = avail.cpu
            if avail.mem > self._ub_mem[k]:
                self._ub_mem[k] = avail.mem

    def begin_coalesce(self) -> None:
        """Open a deferred-update window: ``update`` calls park servers
        until :meth:`end_coalesce`/:meth:`flush`.  The engine brackets
        same-instant multi-release loops (first-copy-wins kills, server-
        crash victim sweeps) with this so a server touched k times gets
        one store.  Every read kernel flushes first, so reads inside a
        window stay exact."""
        self._coalescing = True

    def end_coalesce(self) -> None:
        """Close the window and apply every deferred update."""
        self._coalescing = False
        if self._pending:
            self.flush()

    def flush(self) -> None:
        """Apply deferred updates now (window state is unchanged)."""
        pending = self._pending
        if not pending:
            return
        self._alloc_cache = None
        avail_cpu, avail_mem = self.avail_cpu, self.avail_mem
        alloc_cpu, alloc_mem = self.alloc_cpu, self.alloc_mem
        up = self.up
        shard_of = self._shard_of
        ub_cpu, ub_mem = self._ub_cpu, self._ub_mem
        for i, server in pending.items():
            avail = server.available
            alloc = server.allocated
            avail_cpu[i] = avail.cpu
            avail_mem[i] = avail.mem
            alloc_cpu[i] = alloc.cpu
            alloc_mem[i] = alloc.mem
            up[i] = server.up
            if shard_of is not None:
                k = shard_of[i]
                if avail.cpu > ub_cpu[k]:
                    ub_cpu[k] = avail.cpu
                if avail.mem > ub_mem[k]:
                    ub_mem[k] = avail.mem
        pending.clear()

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def fitting_mask(self, demand: Resources) -> np.ndarray:
        """Boolean mask of *up* servers that can host ``demand`` (Eq. 5)."""
        if self._pending:
            self.flush()
        return (
            self.up
            & (self.avail_cpu + EPS >= demand.cpu)
            & (self.avail_mem + EPS >= demand.mem)
        )

    def num_up(self) -> int:
        """Servers currently in service (O(M) reduction on the mask)."""
        if self._pending:
            self.flush()
        return int(self.up.sum())

    def any_fits(self, demand: Resources) -> bool:
        return bool(self.fitting_mask(demand).any())

    def fitting_ids(self, demand: Resources) -> np.ndarray:
        """Server ids able to host ``demand``, ascending."""
        return np.flatnonzero(self.fitting_mask(demand))

    def best_fit(
        self, demand: Resources, weights: np.ndarray | None = None
    ) -> tuple[int, float] | None:
        """(server_id, score) maximizing the demand·availability inner
        product among fitting servers, or ``None`` when nothing fits.

        ``weights`` optionally scales each server's score (the
        straggler-avoidance hook).  Equal scores resolve to the lowest
        server id.
        """
        if weights is None and self._shard_slices is not None:
            return self._best_fit_sharded(demand)
        fits = self.fitting_mask(demand)
        if not fits.any():
            return None
        scores = demand.cpu * self.avail_cpu + demand.mem * self.avail_mem
        if weights is not None:
            scores = scores * weights
        scores[~fits] = -np.inf
        idx = int(np.argmax(scores))
        return idx, float(scores[idx])

    def _best_fit_sharded(self, demand: Resources) -> tuple[int, float] | None:
        """Blocked best-fit with bound pruning — bitwise-identical to the
        dense kernel.

        Blocks scan ascending; a block is skipped when its availability
        bound proves no server in it fits, or no score in it can exceed
        the current best (float multiplication/addition are weakly
        monotone, so the bound expression ``d·ub`` dominates every
        member's ``d·avail`` in IEEE arithmetic too).  The equality skip
        (``<=``) is exact because an equal later-block score would lose
        the lowest-id tie-break anyway.  Fully evaluating a block
        tightens its bound as a byproduct.
        """
        if self._pending:
            self.flush()
        d_cpu, d_mem = demand.cpu, demand.mem
        ub_cpu, ub_mem = self._ub_cpu, self._ub_mem
        best_idx = -1
        best_score = -np.inf
        for k, (lo, hi) in enumerate(self._shard_slices):  # type: ignore[arg-type]
            if hi <= lo:
                continue
            bc, bm = ub_cpu[k], ub_mem[k]
            if bc + EPS < d_cpu or bm + EPS < d_mem:
                continue
            if best_idx >= 0 and d_cpu * bc + d_mem * bm <= best_score:
                continue
            a_c = self.avail_cpu[lo:hi]
            a_m = self.avail_mem[lo:hi]
            ub_cpu[k] = float(a_c.max())
            ub_mem[k] = float(a_m.max())
            fits = (
                self.up[lo:hi] & (a_c + EPS >= d_cpu) & (a_m + EPS >= d_mem)
            )
            if not fits.any():
                continue
            scores = d_cpu * a_c + d_mem * a_m
            scores[~fits] = -np.inf
            j = int(np.argmax(scores))
            s = float(scores[j])
            if s > best_score:
                best_idx = lo + j
                best_score = s
        if best_idx < 0:
            return None
        return best_idx, best_score

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_available(self) -> Resources:
        if self._pending:
            self.flush()
        return Resources(float(self.avail_cpu.sum()), float(self.avail_mem.sum()))

    def total_allocated(self) -> Resources:
        return Resources(*self.total_allocated_components())

    def total_allocated_components(self) -> tuple[float, float]:
        """(cpu, mem) allocation totals without a Resources allocation —
        the simulation engine's per-event accounting fast path."""
        if self._pending:
            self.flush()
        cached = self._alloc_cache
        if cached is None:
            cached = float(self.alloc_cpu.sum()), float(self.alloc_mem.sum())
            self._alloc_cache = cached
        return cached

    def __len__(self) -> int:
        return len(self.cap_cpu)

    # ------------------------------------------------------------------
    # Pickling (checkpoint/restore)
    # ------------------------------------------------------------------
    def __setstate__(self, state) -> None:
        # __slots__ classes pickle as (None, {slot: value}); checkpoints
        # written before sharding lack the shard slots — default them.
        _, slots = state
        slots.setdefault("_shard_slices", None)
        slots.setdefault("_shard_of", None)
        slots.setdefault("_ub_cpu", [])
        slots.setdefault("_ub_mem", [])
        for name, value in slots.items():
            setattr(self, name, value)
