"""Rack topology and data-locality model.

The paper's testbed places its 30 servers "within two racks and connected
in a folded CLOS" (Sec. 6.1), and DollyMP's Application Master performs a
second-level placement decision "based on the data locality constraint"
(Sec. 5.2).  We model locality at the standard three levels used by
Hadoop — node-local, rack-local, off-rack — which is all the scheduling
logic observes (real HDFS block maps only matter through this preference
ordering).
"""

from __future__ import annotations

import enum
from typing import Sequence

__all__ = ["LocalityLevel", "Topology"]


class LocalityLevel(enum.IntEnum):
    """Preference levels for placing a task near its input data.

    Lower is better; the integer values make scoring arithmetic easy.
    """

    NODE_LOCAL = 0
    RACK_LOCAL = 1
    OFF_RACK = 2


class Topology:
    """Maps servers to racks and answers locality queries.

    The folded-CLOS fabric of the testbed is full-bisection within a rack
    and oversubscribed across racks, which is exactly what the three-level
    preference captures.
    """

    def __init__(self, rack_of: Sequence[int]) -> None:
        self._rack_of = list(rack_of)
        self.num_racks = (max(self._rack_of) + 1) if self._rack_of else 0

    @staticmethod
    def two_racks(num_servers: int) -> "Topology":
        """The paper's layout: servers split evenly across two racks."""
        half = (num_servers + 1) // 2
        return Topology([0 if i < half else 1 for i in range(num_servers)])

    @staticmethod
    def single_rack(num_servers: int) -> "Topology":
        return Topology([0] * num_servers)

    def rack(self, server_id: int) -> int:
        return self._rack_of[server_id]

    def locality(self, server_id: int, preferred_servers: Sequence[int]) -> LocalityLevel:
        """Locality level of running on ``server_id`` given the servers
        holding the input data replicas (``preferred_servers``)."""
        if not preferred_servers:
            return LocalityLevel.NODE_LOCAL  # no data constraint
        if server_id in preferred_servers:
            return LocalityLevel.NODE_LOCAL
        my_rack = self.rack(server_id)
        if any(self.rack(p) == my_rack for p in preferred_servers):
            return LocalityLevel.RACK_LOCAL
        return LocalityLevel.OFF_RACK

    def servers_in_rack(self, rack: int) -> list[int]:
        return [i for i, r in enumerate(self._rack_of) if r == rack]

    def __len__(self) -> int:
        return len(self._rack_of)
