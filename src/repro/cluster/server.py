"""A single heterogeneous server (YARN NodeManager equivalent).

Each server has a multi-resource capacity (Eq. 5 of the paper) and a
*slowdown factor* modelling heterogeneity: the paper's private cluster
mixes "powerful servers and normal computing nodes" and additionally sees
background load on the hypervisors, both of which it folds into a single
stochastic task-time model (Sec. 3).  We keep a deterministic per-server
component (the slowdown factor) and let the workload's straggler
distribution supply the stochastic component.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.resources import Resources, ZERO

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.task import TaskCopy

__all__ = ["Server"]


class Server:
    """A server with capacity bookkeeping for running task copies."""

    __slots__ = (
        "server_id",
        "capacity",
        "slowdown",
        "rack",
        "up",
        "_allocated",
        "_available",
        "_running",
        "_mirror",
    )

    def __init__(
        self,
        server_id: int,
        capacity: Resources,
        *,
        slowdown: float = 1.0,
        rack: int = 0,
    ) -> None:
        if capacity.cpu <= 0 or capacity.mem <= 0:
            raise ValueError(f"server {server_id}: capacity must be positive, got {capacity}")
        if slowdown <= 0:
            raise ValueError(f"server {server_id}: slowdown must be positive, got {slowdown}")
        self.server_id = server_id
        self.capacity = capacity
        #: Multiplier on task durations executed here (1.0 = nominal,
        #: >1 = slow node, <1 = powerful node).
        self.slowdown = slowdown
        self.rack = rack
        #: Liveness flag (fault injection, DESIGN.md §5.5).  A down
        #: server hosts nothing: availability reads as zero, can_fit and
        #: allocate refuse, and the engine killed every resident copy
        #: before flipping this off via :meth:`mark_down`.
        self.up = True
        self._allocated = ZERO
        # Availability is read millions of times per simulation (every
        # best-fit scan); keep it cached and update on allocate/release.
        self._available = capacity
        self._running: set["TaskCopy"] = set()
        # Set by Cluster.__init__: the cluster's SoA availability mirror,
        # notified after every allocate/release so vectorized placement
        # scans stay exact.  A server belongs to at most one cluster.
        self._mirror = None

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def allocated(self) -> Resources:
        return self._allocated

    @property
    def available(self) -> Resources:
        return self._available

    @property
    def running_copies(self) -> frozenset["TaskCopy"]:
        return frozenset(self._running)

    def can_fit(self, demand: Resources) -> bool:
        return self.up and demand.fits_in(self.available)

    def allocate(self, copy: "TaskCopy") -> None:
        """Reserve resources for a task copy.  Raises if it does not fit."""
        if not self.up:
            raise RuntimeError(f"server {self.server_id}: down, cannot allocate")
        demand = copy.task.demand
        if not self.can_fit(demand):
            raise RuntimeError(
                f"server {self.server_id}: cannot fit {demand} in {self.available}"
            )
        if copy in self._running:
            raise RuntimeError(f"server {self.server_id}: copy {copy} already running")
        # Unrolled `self._allocated + demand` / `(capacity - allocated)
        # .clamp_nonnegative()`: same operations in the same order (so
        # identical floats), minus the intermediate vectors — allocate
        # runs once per launched copy, squarely on the hot path.
        alloc = self._allocated
        cap = self.capacity
        a_cpu = alloc.cpu + demand.cpu
        a_mem = alloc.mem + demand.mem
        self._allocated = Resources(a_cpu, a_mem)
        self._available = Resources(max(cap.cpu - a_cpu, 0.0), max(cap.mem - a_mem, 0.0))
        self._running.add(copy)
        if self._mirror is not None:
            self._mirror.update(self)

    def release(self, copy: "TaskCopy") -> None:
        """Free the resources held by a finished or killed copy."""
        if copy not in self._running:
            raise RuntimeError(f"server {self.server_id}: copy {copy} not running here")
        self._running.discard(copy)
        demand = copy.task.demand
        alloc = self._allocated
        if not self._running:
            # Snap accumulated float error back to exactly zero when idle.
            self._allocated = ZERO
        else:
            self._allocated = Resources(
                max(alloc.cpu - demand.cpu, 0.0), max(alloc.mem - demand.mem, 0.0)
            )
        cap = self.capacity
        self._available = Resources(
            max(cap.cpu - self._allocated.cpu, 0.0),
            max(cap.mem - self._allocated.mem, 0.0),
        )
        if self._mirror is not None:
            self._mirror.update(self)

    # ------------------------------------------------------------------
    # Fault transitions (engine-driven; see repro.faults)
    # ------------------------------------------------------------------
    def mark_down(self) -> None:
        """Take the server out of service.  The caller (the engine's
        ``Fail`` applier) must have released every resident copy first,
        so the allocation is already snapped to exactly zero; a down
        server advertises zero availability through both the scalar path
        and the mirror."""
        if not self.up:
            raise RuntimeError(f"server {self.server_id}: already down")
        if self._running:
            raise RuntimeError(
                f"server {self.server_id}: cannot go down with "
                f"{len(self._running)} resident copies"
            )
        self.up = False
        self._available = ZERO
        if self._mirror is not None:
            self._mirror.update(self)

    def mark_up(self) -> None:
        """Return the server to service with its full capacity.  The
        allocation is exactly zero while down, so availability restores
        to the capacity floats bit-for-bit."""
        if self.up:
            raise RuntimeError(f"server {self.server_id}: already up")
        self.up = True
        cap = self.capacity
        self._available = Resources(
            max(cap.cpu - self._allocated.cpu, 0.0),
            max(cap.mem - self._allocated.mem, 0.0),
        )
        if self._mirror is not None:
            self._mirror.update(self)

    def utilization(self) -> Resources:
        """Fraction of each dimension currently allocated."""
        return self._allocated.normalized_by(self.capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Server(id={self.server_id}, cap={self.capacity}, "
            f"alloc={self._allocated}, slowdown={self.slowdown:g})"
        )
