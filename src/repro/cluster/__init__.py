"""Heterogeneous cluster substrate: servers, topology, paper configurations."""

from repro.cluster.server import Server
from repro.cluster.cluster import Cluster
from repro.cluster.topology import Topology, LocalityLevel
from repro.cluster.heterogeneity import (
    paper_cluster_30_nodes,
    trace_sim_cluster,
    homogeneous_cluster,
    single_server_cluster,
)

__all__ = [
    "Server",
    "Cluster",
    "Topology",
    "LocalityLevel",
    "paper_cluster_30_nodes",
    "trace_sim_cluster",
    "homogeneous_cluster",
    "single_server_cluster",
]
