"""Command-line interface: run and compare schedulers without writing code.

Examples::

    python -m repro run --scheduler dollymp2 --app wordcount --jobs 20
    python -m repro compare --schedulers capacity,tetris,dollymp2 \\
        --app pagerank --jobs 40 --gap 5
    python -m repro trace --jobs 100 --out /tmp/trace.json
    python -m repro replay /tmp/trace.json --scheduler dollymp2 --servers 100

Observability (DESIGN.md §5.4)::

    python -m repro metrics --scheduler dollymp2 --jobs 20
    python -m repro metrics --format prom --out /tmp/metrics.prom
    python -m repro run --metrics-out /tmp/m.json --spans-out /tmp/s.jsonl
    python -m repro run --profile

Decision traces (the action protocol of DESIGN.md §5.3)::

    python -m repro trace record --scheduler dollymp2 --app mixed \\
        --jobs 20 --out /tmp/decisions.jsonl
    python -m repro trace replay /tmp/decisions.jsonl

``trace record`` journals every scheduler decision of a run to JSONL;
``trace replay`` re-executes the journal against a freshly rebuilt
cluster/workload and verifies the per-job flow times are bit-identical
to the recorded run (exit status 1 on divergence).

The CLI mirrors the public API; every knob maps to a documented
constructor argument.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from types import MappingProxyType
from typing import Callable, Mapping, Sequence

from repro.analysis.report import comparison_table
from repro.cluster.heterogeneity import (
    homogeneous_cluster,
    paper_cluster_30_nodes,
    trace_sim_cluster,
)
from repro.core.online import DollyMPScheduler
from repro.core.server_learning import LearningDollyMPScheduler
from repro.faults import FAULT_PROFILES, named_profile
from repro.observability import Observability
from repro.resources import Resources
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.fifo import CapacityScheduler, FIFOScheduler
from repro.schedulers.graphene import GrapheneScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.schedulers.svf import SVFScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.actions import DecisionTrace
from repro.sim.replay import ReplayDivergence, replay_trace
from repro.sim.runner import run_recorded, run_simulation
from repro.workload.google_trace import (
    GoogleTraceGenerator,
    jobs_from_specs,
    load_trace,
    save_trace,
    spec_to_dict,
)
from repro.workload.mapreduce import pagerank_job, wordcount_job

__all__ = ["main", "SCHEDULER_FACTORIES"]

# Frozen: shared module state must stay immutable (repro-lint RL014).
SCHEDULER_FACTORIES: Mapping[str, Callable[[], object]] = MappingProxyType({
    "fifo": FIFOScheduler,
    "capacity": CapacityScheduler,
    "srpt": SRPTScheduler,
    "svf": SVFScheduler,
    "drf": DRFScheduler,
    "tetris": TetrisScheduler,
    "carbyne": CarbyneScheduler,
    "graphene": GrapheneScheduler,
    "dollymp0": lambda: DollyMPScheduler(max_clones=0),
    "dollymp1": lambda: DollyMPScheduler(max_clones=1),
    "dollymp2": lambda: DollyMPScheduler(max_clones=2),
    "dollymp3": lambda: DollyMPScheduler(max_clones=3),
    "learning-dollymp2": lambda: LearningDollyMPScheduler(max_clones=2),
})


def make_scheduler(name: str):
    try:
        return SCHEDULER_FACTORIES[name.lower()]()
    except KeyError:
        raise SystemExit(
            f"unknown scheduler {name!r}; choose from "
            f"{', '.join(sorted(SCHEDULER_FACTORIES))}"
        )


def make_cluster(spec: str, seed: int):
    if spec == "paper":
        return paper_cluster_30_nodes()
    if spec.startswith("trace:"):
        return trace_sim_cluster(int(spec.split(":", 1)[1]), seed=seed)
    if spec.startswith("uniform:"):
        n, cpu, mem = spec.split(":", 1)[1].split("x")
        return homogeneous_cluster(int(n), Resources.of(float(cpu), float(mem)))
    raise SystemExit(
        f"unknown cluster {spec!r}; use 'paper', 'trace:<n>', or 'uniform:<n>x<cpu>x<mem>'"
    )


def make_app_jobs(app: str, num_jobs: int, gap: float, input_gb: float):
    jobs = []
    for i in range(num_jobs):
        t = i * gap
        if app == "wordcount":
            jobs.append(wordcount_job(input_gb, arrival_time=t, job_id=i))
        elif app == "pagerank":
            jobs.append(pagerank_job(input_gb, arrival_time=t, job_id=i))
        elif app == "mixed":
            if i % 2 == 0:
                jobs.append(wordcount_job(input_gb, arrival_time=t, job_id=i))
            else:
                jobs.append(pagerank_job(input_gb / 4, arrival_time=t, job_id=i))
        else:
            raise SystemExit(f"unknown app {app!r}; use wordcount/pagerank/mixed")
    return jobs


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cluster", default="paper", help="paper | trace:<n> | uniform:<n>x<cpu>x<mem>")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--slot", type=float, default=0.0, help="scheduling interval seconds (0 = event driven)")


def _add_faults(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault-profile",
        choices=sorted(FAULT_PROFILES),
        default="none",
        help="deterministic fault injection preset (DESIGN.md §5.5)",
    )
    p.add_argument(
        "--mtbf", type=float,
        help="override the profile's mean time between server failures (s)",
    )
    p.add_argument(
        "--mttr", type=float,
        help="override the profile's mean repair time (s)",
    )
    p.add_argument(
        "--copy-fail-rate", type=float,
        help="override the profile's per-copy failure hazard (1/s)",
    )
    p.add_argument(
        "--churn-seed", type=int,
        help="explicit fault-RNG seed (default: derived from --seed)",
    )


def _fault_profile_for(args):
    """(profile_or_None, churn_seed) from the fault flags."""
    profile = named_profile(
        args.fault_profile,
        mtbf=args.mtbf,
        mttr=args.mttr,
        copy_fail_rate=args.copy_fail_rate,
    )
    if not profile.enabled:
        return None, None
    return profile, args.churn_seed


def _add_observability(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics-out",
        help="write a metrics snapshot here (JSON; a *.prom path gets Prometheus text)",
    )
    p.add_argument("--spans-out", help="write the span trace here (JSONL)")
    p.add_argument(
        "--include-wall",
        action="store_true",
        help="include host wall-time fields in exports (non-deterministic)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="profile wall time per phase and print the report",
    )


def _observability_for(args) -> Observability | None:
    """A per-run bundle when any observability output was requested."""
    if args.metrics_out or args.spans_out or args.profile:
        return Observability(profile=args.profile or None)
    return None


def _finish_observability(obs: Observability | None, args) -> None:
    if obs is None:
        return
    if args.metrics_out:
        obs.dump_metrics(args.metrics_out, include_wall=args.include_wall)
        print(f"metrics -> {args.metrics_out}")
    if args.spans_out:
        obs.dump_spans(args.spans_out, include_wall=args.include_wall)
        print(f"spans -> {args.spans_out}")
    if args.profile and obs.profiler is not None:
        print(obs.profiler.format_report(), end="")


def cmd_run(args) -> int:
    jobs = make_app_jobs(args.app, args.jobs, args.gap, args.input_gb)
    obs = _observability_for(args)
    if obs is not None:
        obs.record_workload(jobs)
    fault_profile, churn_seed = _fault_profile_for(args)
    result = run_simulation(
        make_cluster(args.cluster, args.seed),
        make_scheduler(args.scheduler),
        jobs,
        seed=args.seed,
        schedule_interval=args.slot,
        observability=obs,
        fault_profile=fault_profile,
        churn_seed=churn_seed,
    )
    for key, value in result.summary().items():
        print(f"{key:>24s}: {value:.3f}")
    _finish_observability(obs, args)
    return 0


def cmd_metrics(args) -> int:
    """Run a simulation and print/export its metrics snapshot."""
    jobs = make_app_jobs(args.app, args.jobs, args.gap, args.input_gb)
    obs = Observability(profile=args.profile or None)
    obs.record_workload(jobs)
    run_simulation(
        make_cluster(args.cluster, args.seed),
        make_scheduler(args.scheduler),
        jobs,
        seed=args.seed,
        schedule_interval=args.slot,
        observability=obs,
    )
    if args.format == "prom":
        text = obs.to_prometheus(include_wall=args.include_wall)
    else:
        text = obs.to_json(include_wall=args.include_wall) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"metrics -> {args.out}")
    else:
        sys.stdout.write(text)
    if args.profile and obs.profiler is not None:
        print(obs.profiler.format_report(), end="", file=sys.stderr)
    return 0


def cmd_compare(args) -> int:
    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    results = {}
    snapshots: dict[str, dict] = {}
    fault_profile, churn_seed = _fault_profile_for(args)
    for name in names:
        obs = Observability() if args.metrics_out else None
        results[name] = run_simulation(
            make_cluster(args.cluster, args.seed),
            make_scheduler(name),
            make_app_jobs(args.app, args.jobs, args.gap, args.input_gb),
            seed=args.seed,
            schedule_interval=args.slot,
            observability=obs,
            fault_profile=fault_profile,
            churn_seed=churn_seed,
        )
        if obs is not None:
            snapshots[name] = obs.snapshot(include_wall=args.include_wall)
    print(comparison_table(results))
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(snapshots, sort_keys=True, separators=(",", ":")) + "\n"
        )
        print(f"metrics -> {args.metrics_out}")
    return 0


def cmd_trace(args) -> int:
    if args.out is None:
        raise SystemExit("trace: --out is required")
    gen = GoogleTraceGenerator(seed=args.seed)
    specs = gen.generate(args.jobs, mean_interarrival=args.gap)
    if args.jsonl:
        # One job-spec object per line, with explicit job ids so a
        # served session materializes identical jobs across restarts —
        # the input format of `python -m repro serve`.
        specs = [replace(s, job_id=i) for i, s in enumerate(specs)]
        lines = [json.dumps(spec_to_dict(s), sort_keys=True) for s in specs]
        text = "\n".join(lines) + ("\n" if lines else "")
        if args.out == "-":
            # Pipe-friendly: the stream goes to stdout, the status line
            # to stderr (`trace --jsonl --out - | repro serve`).
            sys.stdout.write(text)
        else:
            Path(args.out).write_text(text)
    elif args.out == "-":
        raise SystemExit("trace: --out - requires --jsonl")
    else:
        save_trace(specs, args.out)
    total = sum(s.num_tasks() for s in specs)
    print(
        f"wrote {len(specs)} jobs / {total} tasks to {args.out}",
        file=sys.stderr if args.out == "-" else sys.stdout,
    )
    return 0


def cmd_trace_record(args) -> int:
    jobs = make_app_jobs(args.app, args.jobs, args.gap, args.input_gb)
    obs = _observability_for(args)
    if obs is not None:
        obs.record_workload(jobs)
    fault_profile, churn_seed = _fault_profile_for(args)
    result, trace = run_recorded(
        make_cluster(args.cluster, args.seed),
        make_scheduler(args.scheduler),
        jobs,
        seed=args.seed,
        schedule_interval=args.slot,
        observability=obs,
        fault_profile=fault_profile,
        churn_seed=churn_seed,
    )
    # Self-describing provenance: enough to rebuild the exact workload
    # and cluster, plus the recorded outcome to verify a replay against.
    trace.meta["workload"] = {
        "scheduler": args.scheduler,
        "app": args.app,
        "jobs": args.jobs,
        "gap": args.gap,
        "input_gb": args.input_gb,
        "cluster": args.cluster,
    }
    trace.meta["expected"] = {
        "flowtimes": [[r.job_id, r.flowtime] for r in result.records],
        "clones_launched": result.clones_launched,
        "copies_launched": result.copies_launched,
    }
    trace.dump_jsonl(args.out)
    print(
        f"recorded {len(trace)} decisions ({result.copies_launched} copies, "
        f"{result.clones_launched} clones) from {args.scheduler} over "
        f"{len(result.records)} jobs -> {args.out}"
    )
    _finish_observability(obs, args)
    return 0


def cmd_trace_replay(args) -> int:
    trace = DecisionTrace.load_jsonl(args.trace)
    workload = trace.meta.get("workload")
    if workload is None:
        raise SystemExit(
            f"{args.trace}: no workload provenance in the trace header — "
            "was it recorded with `python -m repro trace record`?"
        )
    seed = int(trace.meta["seed"])
    jobs = make_app_jobs(
        workload["app"], int(workload["jobs"]), float(workload["gap"]),
        float(workload["input_gb"]),
    )
    obs = _observability_for(args)
    try:
        result = replay_trace(
            trace, make_cluster(workload["cluster"], seed), jobs, observability=obs
        )
    except ReplayDivergence as exc:
        print(f"replay DIVERGED: {exc}", file=sys.stderr)
        return 1
    expected = trace.meta.get("expected", {})
    got = [[r.job_id, r.flowtime] for r in result.records]
    # Bit-for-bit: JSON round-trips floats exactly (shortest-repr), so
    # equality here is the determinism oracle, not a tolerance check.
    failures = []
    if got != expected.get("flowtimes"):
        failures.append("per-job flow times")
    for key, have in (
        ("clones_launched", result.clones_launched),
        ("copies_launched", result.copies_launched),
    ):
        if expected.get(key) != have:
            failures.append(key)
    if failures:
        print(
            f"replay DIVERGED from the recorded run: {', '.join(failures)} differ",
            file=sys.stderr,
        )
        return 1
    print(
        f"replayed {len(trace)} decisions over {len(result.records)} jobs: "
        "bit-identical to the recorded run"
    )
    _finish_observability(obs, args)
    return 0


def cmd_replay(args) -> int:
    specs = load_trace(args.trace)
    jobs = jobs_from_specs(specs)
    obs = _observability_for(args)
    if obs is not None:
        obs.record_workload(jobs)
    result = run_simulation(
        make_cluster(args.cluster, args.seed),
        make_scheduler(args.scheduler),
        jobs,
        seed=args.seed,
        schedule_interval=args.slot,
        observability=obs,
    )
    for key, value in result.summary().items():
        print(f"{key:>24s}: {value:.3f}")
    _finish_observability(obs, args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DollyMP reproduction: cluster scheduling simulations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run one scheduler on a synthetic app workload")
    p.add_argument("--scheduler", default="dollymp2")
    p.add_argument("--app", default="mixed")
    p.add_argument("--jobs", type=int, default=20)
    p.add_argument("--gap", type=float, default=20.0)
    p.add_argument("--input-gb", type=float, default=4.0)
    _add_common(p)
    _add_observability(p)
    _add_faults(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "metrics", help="run a simulation and emit its metrics snapshot"
    )
    p.add_argument("--scheduler", default="dollymp2")
    p.add_argument("--app", default="mixed")
    p.add_argument("--jobs", type=int, default=20)
    p.add_argument("--gap", type=float, default=20.0)
    p.add_argument("--input-gb", type=float, default=4.0)
    p.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="snapshot encoding: canonical JSON or Prometheus text",
    )
    p.add_argument("--out", help="write here instead of stdout")
    p.add_argument(
        "--include-wall",
        action="store_true",
        help="include host wall-time fields (non-deterministic)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="profile wall time per phase and print the report to stderr",
    )
    _add_common(p)
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("compare", help="run several schedulers on the same workload")
    p.add_argument("--schedulers", default="capacity,tetris,dollymp2")
    p.add_argument("--app", default="mixed")
    p.add_argument("--jobs", type=int, default=20)
    p.add_argument("--gap", type=float, default=20.0)
    p.add_argument("--input-gb", type=float, default=4.0)
    p.add_argument(
        "--metrics-out",
        help="write per-scheduler metrics snapshots here as one JSON object",
    )
    p.add_argument(
        "--include-wall",
        action="store_true",
        help="include host wall-time fields (non-deterministic)",
    )
    _add_common(p)
    _add_faults(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "trace",
        help="workload-trace generation, or record/replay of decision traces",
    )
    p.add_argument("--jobs", type=int, default=100)
    p.add_argument("--gap", type=float, default=20.0)
    p.add_argument("--out")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jsonl", action="store_true",
        help="write one job-spec per line (the `repro serve` input format)",
    )
    p.set_defaults(func=cmd_trace)
    tsub = p.add_subparsers(dest="trace_command")

    tp = tsub.add_parser(
        "record", help="run a simulation and journal every scheduler decision"
    )
    tp.add_argument("--scheduler", default="dollymp2")
    tp.add_argument("--app", default="mixed")
    tp.add_argument("--jobs", type=int, default=20)
    tp.add_argument("--gap", type=float, default=20.0)
    tp.add_argument("--input-gb", type=float, default=4.0)
    tp.add_argument("--out", required=True, help="decision-trace JSONL path")
    _add_common(tp)
    _add_observability(tp)
    _add_faults(tp)
    tp.set_defaults(func=cmd_trace_record)

    tp = tsub.add_parser(
        "replay",
        help="re-execute a recorded decision trace and verify bit-identity",
    )
    tp.add_argument("trace", help="decision-trace JSONL from `trace record`")
    _add_observability(tp)
    tp.set_defaults(func=cmd_trace_replay)

    p = sub.add_parser("replay", help="replay a trace file under a scheduler")
    p.add_argument("trace")
    p.add_argument("--scheduler", default="dollymp2")
    _add_common(p)
    _add_observability(p)
    p.set_defaults(func=cmd_replay)

    from repro.service import add_serve_parser

    add_serve_parser(
        sub,
        add_common=_add_common,
        add_observability=_add_observability,
        add_faults=_add_faults,
    )

    from repro.workload.ingest.cli import add_ingest_parser

    add_ingest_parser(sub)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
