"""Command-line interface: run and compare schedulers without writing code.

Examples::

    python -m repro run --scheduler dollymp2 --app wordcount --jobs 20
    python -m repro compare --schedulers capacity,tetris,dollymp2 \\
        --app pagerank --jobs 40 --gap 5
    python -m repro trace --jobs 100 --out /tmp/trace.json
    python -m repro replay /tmp/trace.json --scheduler dollymp2 --servers 100

Decision traces (the action protocol of DESIGN.md §5.3)::

    python -m repro trace record --scheduler dollymp2 --app mixed \\
        --jobs 20 --out /tmp/decisions.jsonl
    python -m repro trace replay /tmp/decisions.jsonl

``trace record`` journals every scheduler decision of a run to JSONL;
``trace replay`` re-executes the journal against a freshly rebuilt
cluster/workload and verifies the per-job flow times are bit-identical
to the recorded run (exit status 1 on divergence).

The CLI mirrors the public API; every knob maps to a documented
constructor argument.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.analysis.report import comparison_table
from repro.cluster.heterogeneity import (
    homogeneous_cluster,
    paper_cluster_30_nodes,
    trace_sim_cluster,
)
from repro.core.online import DollyMPScheduler
from repro.core.server_learning import LearningDollyMPScheduler
from repro.resources import Resources
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.fifo import CapacityScheduler, FIFOScheduler
from repro.schedulers.graphene import GrapheneScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.schedulers.svf import SVFScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.actions import DecisionTrace
from repro.sim.replay import ReplayDivergence, replay_trace
from repro.sim.runner import run_recorded, run_simulation
from repro.workload.google_trace import (
    GoogleTraceGenerator,
    jobs_from_specs,
    load_trace,
    save_trace,
)
from repro.workload.mapreduce import pagerank_job, wordcount_job

__all__ = ["main", "SCHEDULER_FACTORIES"]

SCHEDULER_FACTORIES: dict[str, Callable[[], object]] = {
    "fifo": FIFOScheduler,
    "capacity": CapacityScheduler,
    "srpt": SRPTScheduler,
    "svf": SVFScheduler,
    "drf": DRFScheduler,
    "tetris": TetrisScheduler,
    "carbyne": CarbyneScheduler,
    "graphene": GrapheneScheduler,
    "dollymp0": lambda: DollyMPScheduler(max_clones=0),
    "dollymp1": lambda: DollyMPScheduler(max_clones=1),
    "dollymp2": lambda: DollyMPScheduler(max_clones=2),
    "dollymp3": lambda: DollyMPScheduler(max_clones=3),
    "learning-dollymp2": lambda: LearningDollyMPScheduler(max_clones=2),
}


def make_scheduler(name: str):
    try:
        return SCHEDULER_FACTORIES[name.lower()]()
    except KeyError:
        raise SystemExit(
            f"unknown scheduler {name!r}; choose from "
            f"{', '.join(sorted(SCHEDULER_FACTORIES))}"
        )


def make_cluster(spec: str, seed: int):
    if spec == "paper":
        return paper_cluster_30_nodes()
    if spec.startswith("trace:"):
        return trace_sim_cluster(int(spec.split(":", 1)[1]), seed=seed)
    if spec.startswith("uniform:"):
        n, cpu, mem = spec.split(":", 1)[1].split("x")
        return homogeneous_cluster(int(n), Resources.of(float(cpu), float(mem)))
    raise SystemExit(
        f"unknown cluster {spec!r}; use 'paper', 'trace:<n>', or 'uniform:<n>x<cpu>x<mem>'"
    )


def make_app_jobs(app: str, num_jobs: int, gap: float, input_gb: float):
    jobs = []
    for i in range(num_jobs):
        t = i * gap
        if app == "wordcount":
            jobs.append(wordcount_job(input_gb, arrival_time=t, job_id=i))
        elif app == "pagerank":
            jobs.append(pagerank_job(input_gb, arrival_time=t, job_id=i))
        elif app == "mixed":
            if i % 2 == 0:
                jobs.append(wordcount_job(input_gb, arrival_time=t, job_id=i))
            else:
                jobs.append(pagerank_job(input_gb / 4, arrival_time=t, job_id=i))
        else:
            raise SystemExit(f"unknown app {app!r}; use wordcount/pagerank/mixed")
    return jobs


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cluster", default="paper", help="paper | trace:<n> | uniform:<n>x<cpu>x<mem>")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--slot", type=float, default=0.0, help="scheduling interval seconds (0 = event driven)")


def cmd_run(args) -> int:
    jobs = make_app_jobs(args.app, args.jobs, args.gap, args.input_gb)
    result = run_simulation(
        make_cluster(args.cluster, args.seed),
        make_scheduler(args.scheduler),
        jobs,
        seed=args.seed,
        schedule_interval=args.slot,
    )
    for key, value in result.summary().items():
        print(f"{key:>24s}: {value:.3f}")
    return 0


def cmd_compare(args) -> int:
    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    results = {}
    for name in names:
        results[name] = run_simulation(
            make_cluster(args.cluster, args.seed),
            make_scheduler(name),
            make_app_jobs(args.app, args.jobs, args.gap, args.input_gb),
            seed=args.seed,
            schedule_interval=args.slot,
        )
    print(comparison_table(results))
    return 0


def cmd_trace(args) -> int:
    if args.out is None:
        raise SystemExit("trace: --out is required")
    gen = GoogleTraceGenerator(seed=args.seed)
    specs = gen.generate(args.jobs, mean_interarrival=args.gap)
    save_trace(specs, args.out)
    total = sum(s.num_tasks() for s in specs)
    print(f"wrote {len(specs)} jobs / {total} tasks to {args.out}")
    return 0


def cmd_trace_record(args) -> int:
    jobs = make_app_jobs(args.app, args.jobs, args.gap, args.input_gb)
    result, trace = run_recorded(
        make_cluster(args.cluster, args.seed),
        make_scheduler(args.scheduler),
        jobs,
        seed=args.seed,
        schedule_interval=args.slot,
    )
    # Self-describing provenance: enough to rebuild the exact workload
    # and cluster, plus the recorded outcome to verify a replay against.
    trace.meta["workload"] = {
        "scheduler": args.scheduler,
        "app": args.app,
        "jobs": args.jobs,
        "gap": args.gap,
        "input_gb": args.input_gb,
        "cluster": args.cluster,
    }
    trace.meta["expected"] = {
        "flowtimes": [[r.job_id, r.flowtime] for r in result.records],
        "clones_launched": result.clones_launched,
        "copies_launched": result.copies_launched,
    }
    trace.dump_jsonl(args.out)
    print(
        f"recorded {len(trace)} decisions ({result.copies_launched} copies, "
        f"{result.clones_launched} clones) from {args.scheduler} over "
        f"{len(result.records)} jobs -> {args.out}"
    )
    return 0


def cmd_trace_replay(args) -> int:
    trace = DecisionTrace.load_jsonl(args.trace)
    workload = trace.meta.get("workload")
    if workload is None:
        raise SystemExit(
            f"{args.trace}: no workload provenance in the trace header — "
            "was it recorded with `python -m repro trace record`?"
        )
    seed = int(trace.meta["seed"])
    jobs = make_app_jobs(
        workload["app"], int(workload["jobs"]), float(workload["gap"]),
        float(workload["input_gb"]),
    )
    try:
        result = replay_trace(trace, make_cluster(workload["cluster"], seed), jobs)
    except ReplayDivergence as exc:
        print(f"replay DIVERGED: {exc}", file=sys.stderr)
        return 1
    expected = trace.meta.get("expected", {})
    got = [[r.job_id, r.flowtime] for r in result.records]
    # Bit-for-bit: JSON round-trips floats exactly (shortest-repr), so
    # equality here is the determinism oracle, not a tolerance check.
    failures = []
    if got != expected.get("flowtimes"):
        failures.append("per-job flow times")
    for key, have in (
        ("clones_launched", result.clones_launched),
        ("copies_launched", result.copies_launched),
    ):
        if expected.get(key) != have:
            failures.append(key)
    if failures:
        print(
            f"replay DIVERGED from the recorded run: {', '.join(failures)} differ",
            file=sys.stderr,
        )
        return 1
    print(
        f"replayed {len(trace)} decisions over {len(result.records)} jobs: "
        "bit-identical to the recorded run"
    )
    return 0


def cmd_replay(args) -> int:
    specs = load_trace(args.trace)
    result = run_simulation(
        make_cluster(args.cluster, args.seed),
        make_scheduler(args.scheduler),
        jobs_from_specs(specs),
        seed=args.seed,
        schedule_interval=args.slot,
    )
    for key, value in result.summary().items():
        print(f"{key:>24s}: {value:.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DollyMP reproduction: cluster scheduling simulations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run one scheduler on a synthetic app workload")
    p.add_argument("--scheduler", default="dollymp2")
    p.add_argument("--app", default="mixed")
    p.add_argument("--jobs", type=int, default=20)
    p.add_argument("--gap", type=float, default=20.0)
    p.add_argument("--input-gb", type=float, default=4.0)
    _add_common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="run several schedulers on the same workload")
    p.add_argument("--schedulers", default="capacity,tetris,dollymp2")
    p.add_argument("--app", default="mixed")
    p.add_argument("--jobs", type=int, default=20)
    p.add_argument("--gap", type=float, default=20.0)
    p.add_argument("--input-gb", type=float, default=4.0)
    _add_common(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "trace",
        help="workload-trace generation, or record/replay of decision traces",
    )
    p.add_argument("--jobs", type=int, default=100)
    p.add_argument("--gap", type=float, default=20.0)
    p.add_argument("--out")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_trace)
    tsub = p.add_subparsers(dest="trace_command")

    tp = tsub.add_parser(
        "record", help="run a simulation and journal every scheduler decision"
    )
    tp.add_argument("--scheduler", default="dollymp2")
    tp.add_argument("--app", default="mixed")
    tp.add_argument("--jobs", type=int, default=20)
    tp.add_argument("--gap", type=float, default=20.0)
    tp.add_argument("--input-gb", type=float, default=4.0)
    tp.add_argument("--out", required=True, help="decision-trace JSONL path")
    _add_common(tp)
    tp.set_defaults(func=cmd_trace_record)

    tp = tsub.add_parser(
        "replay",
        help="re-execute a recorded decision trace and verify bit-identity",
    )
    tp.add_argument("trace", help="decision-trace JSONL from `trace record`")
    tp.set_defaults(func=cmd_trace_replay)

    p = sub.add_parser("replay", help="replay a trace file under a scheduler")
    p.add_argument("trace")
    p.add_argument("--scheduler", default="dollymp2")
    _add_common(p)
    p.set_defaults(func=cmd_replay)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
