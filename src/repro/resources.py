"""Multi-dimensional resource vectors.

The paper models two resource dimensions — CPU cores and memory (GB) —
per server (Sec. 3: server *i* has capacity ``C_i`` cores and ``M_i`` GB)
and per task (phase ``k`` of job ``j`` demands ``c_j^k`` cores and
``m_j^k`` GB).  :class:`Resources` is the shared vector type used for
capacities, demands, allocations and availability throughout the library.

Instances are immutable; arithmetic returns new vectors.  All comparisons
used for packing (:meth:`Resources.fits_in`) are component-wise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["EPS", "Resources", "ZERO", "sum_resources"]

# Tolerance for floating-point capacity checks.  Allocations are sums of
# demands, so exact comparisons would spuriously reject feasible packings
# after a few hundred float additions.  This is the *single* canonical
# epsilon: every tolerance comparison in the library imports it (enforced
# by repro-lint rule RL005), so the vectorized mirror, the scalar
# placement path and the packing masks can never drift apart.
EPS = 1e-9


@dataclass(frozen=True, slots=True)
class Resources:
    """An (ordered) pair of resource quantities: CPU cores and memory GB.

    The class is deliberately tiny — scheduling inner loops create and
    compare millions of these, so it stays two floats with no indirection.
    """

    cpu: float = 0.0
    mem: float = 0.0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def of(cpu: float, mem: float) -> "Resources":
        """Explicit named constructor (reads better at call sites)."""
        return Resources(float(cpu), float(mem))

    def __post_init__(self) -> None:
        if not (math.isfinite(self.cpu) and math.isfinite(self.mem)):
            raise ValueError(f"non-finite resource vector ({self.cpu}, {self.mem})")

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Resources") -> "Resources":
        return Resources(self.cpu + other.cpu, self.mem + other.mem)

    def __sub__(self, other: "Resources") -> "Resources":
        return Resources(self.cpu - other.cpu, self.mem - other.mem)

    def __mul__(self, k: float) -> "Resources":
        return Resources(self.cpu * k, self.mem * k)

    __rmul__ = __mul__

    def __truediv__(self, k: float) -> "Resources":
        return Resources(self.cpu / k, self.mem / k)

    def __neg__(self) -> "Resources":
        return Resources(-self.cpu, -self.mem)

    def __iter__(self) -> Iterator[float]:
        yield self.cpu
        yield self.mem

    # ------------------------------------------------------------------
    # Packing predicates
    # ------------------------------------------------------------------
    def fits_in(self, capacity: "Resources") -> bool:
        """True when this demand can be packed within ``capacity``.

        Component-wise ``<=`` with a small tolerance — the multi-resource
        constraint of Eq. (5) in the paper.
        """
        return (
            self.cpu <= capacity.cpu + EPS and self.mem <= capacity.mem + EPS
        )

    def is_nonnegative(self) -> bool:
        return self.cpu >= -EPS and self.mem >= -EPS

    def is_zero(self) -> bool:
        return abs(self.cpu) <= EPS and abs(self.mem) <= EPS

    def clamp_nonnegative(self) -> "Resources":
        """Zero out negative components introduced by float round-off."""
        return Resources(max(self.cpu, 0.0), max(self.mem, 0.0))

    # ------------------------------------------------------------------
    # Scores used by schedulers
    # ------------------------------------------------------------------
    def dot(self, other: "Resources") -> float:
        """Inner product — Tetris' alignment score and DollyMP's
        best-resource-fit tie-break (Alg. 2, step 12) both use it."""
        return self.cpu * other.cpu + self.mem * other.mem

    def dominant_share(self, total: "Resources") -> float:
        """Dominant resource share of this demand against ``total``.

        Implements Eq. (9)/(15): ``max(c / ΣC, m / ΣM)``.  Dimensions with
        zero total are ignored (a cluster with no memory accounting never
        dominates on memory).
        """
        shares = []
        if total.cpu > 0:
            shares.append(self.cpu / total.cpu)
        if total.mem > 0:
            shares.append(self.mem / total.mem)
        if not shares:
            raise ValueError("dominant_share against an empty cluster")
        return max(shares)

    def max_component(self) -> float:
        return max(self.cpu, self.mem)

    def normalized_by(self, total: "Resources") -> "Resources":
        """Component-wise division by ``total`` (used for usage reports)."""
        return Resources(
            self.cpu / total.cpu if total.cpu > 0 else 0.0,
            self.mem / total.mem if total.mem > 0 else 0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resources(cpu={self.cpu:g}, mem={self.mem:g})"


ZERO = Resources(0.0, 0.0)


def sum_resources(items: Iterable[Resources]) -> Resources:
    """Sum an iterable of resource vectors (ZERO for an empty iterable)."""
    cpu = 0.0
    mem = 0.0
    for r in items:
        cpu += r.cpu
        mem += r.mem
    return Resources(cpu, mem)
