"""Tetris: multi-resource packing + SRPT [Grandl et al., SIGCOMM'14].

Tetris scores every (pending task, server) pair by an *alignment* term —
the inner product of the task's demand and the server's remaining
capacity, which favours placements leaving little fragmented space — and
adds an SRPT-flavoured term favouring jobs with little remaining work;
the pair with the highest combined score is placed first (Secs. 2, 6.1
of the DollyMP paper describe this baseline as "a weighted score for
each of the mapping pairs between the available server and unscheduled
tasks").

Both terms are normalized to comparable scales: alignment by the square
of the largest server capacity, shortness to (0, 1].  ``epsilon`` weighs
the SRPT term; the small default keeps alignment dominant, matching the
behaviour in the paper's Fig. 2 example where Tetris prefers the
perfectly-aligned large job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.resources import EPS
from repro.schedulers.base import Scheduler
from repro.schedulers.speculation import NoSpeculation, SpeculationPolicy
from repro.sim.actions import Launch
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.server import Server
    from repro.sim.engine import ClusterView

__all__ = ["TetrisScheduler"]


class _JobCandidate:
    __slots__ = ("job", "phase", "queue", "shortness", "best_server", "best_align")

    def __init__(self, job: Job, phase: Phase, queue: list[Task], shortness: float) -> None:
        self.job = job
        self.phase = phase
        self.queue = queue
        self.shortness = shortness
        self.best_server: "Server | None" = None
        self.best_align = -1.0


class TetrisScheduler(Scheduler):
    name = "Tetris"

    def __init__(
        self,
        *,
        epsilon: float = 0.2,
        speculation: SpeculationPolicy | None = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon
        self.speculation = speculation if speculation is not None else NoSpeculation()

    # ------------------------------------------------------------------
    def _candidate_phases(self, job: Job, now: float) -> list[Phase]:
        """Which phases of the job to offer — overridable (Graphene picks
        only the most downstream-critical ready phase instead)."""
        return job.ready_phases(now)

    def _rescore(self, cand: _JobCandidate, cluster) -> None:
        demand = cand.phase.demand
        if cluster.vectorized:
            hit = cluster.mirror.best_fit(demand)
            if hit is None:
                cand.best_server, cand.best_align = None, -1.0
            else:
                cand.best_server, cand.best_align = cluster.servers[hit[0]], hit[1]
            return
        cand.best_server = None
        cand.best_align = -1.0
        for s in cluster.servers:
            avail = s.available
            if not demand.fits_in(avail):
                continue
            align = demand.dot(avail)
            if align > cand.best_align:  # strict: ties keep the lowest id
                cand.best_server, cand.best_align = s, align

    def schedule(self, view: "ClusterView") -> None:
        jobs = view.active_jobs
        if not jobs:
            return
        remaining = {j.job_id: max(j.remaining_effective_length(0.0), EPS) for j in jobs}
        max_rem = max(remaining.values())
        cands: list[_JobCandidate] = []
        for j in jobs:
            shortness = 1.0 - remaining[j.job_id] / max_rem  # in [0, 1)
            for phase in self._candidate_phases(j, view.time):
                pending = [t for t in phase.tasks if t.state is TaskState.PENDING]
                if pending:
                    cands.append(_JobCandidate(j, phase, pending, shortness))
        cluster = view.cluster
        align_scale = max(s.capacity.dot(s.capacity) for s in cluster.servers)
        for c in cands:
            self._rescore(c, cluster)
        while True:
            best: _JobCandidate | None = None
            best_score = -1.0
            for c in cands:
                if not c.queue or c.best_server is None:
                    continue
                score = c.best_align / align_scale + self.epsilon * c.shortness
                if score > best_score:
                    best, best_score = c, score
            if best is None:
                break
            task = best.queue.pop()
            server = best.best_server
            assert server is not None
            view.apply(Launch(task, server))
            for c in cands:
                if c.best_server is server:
                    self._rescore(c, cluster)
            cands = [c for c in cands if c.queue and c.best_server is not None]
        self.speculation.launch_backups(view, jobs)
