"""SVF: Smallest Volume First (Sec. 4.2 baseline).

"Jobs with the smallest volumes are scheduled first where the volume is
defined as the product of the job processing time and the job resource
demand" — the multi-resource volume uses the dominant share (Eq. 9), the
same measure DollyMP's knapsack packs against.  SVF's failure mode,
which Algorithm 1 fixes, is starving big-volume jobs indefinitely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.volume import job_volume
from repro.schedulers.base import Scheduler
from repro.schedulers.packing import fill_tasks_best_fit, pending_by_phase
from repro.schedulers.speculation import NoSpeculation, SpeculationPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView

__all__ = ["SVFScheduler"]


class SVFScheduler(Scheduler):
    name = "SVF"

    def __init__(self, *, speculation: SpeculationPolicy | None = None) -> None:
        self.speculation = speculation if speculation is not None else NoSpeculation()

    def schedule(self, view: "ClusterView") -> None:
        total = view.cluster.total_capacity
        jobs = sorted(
            view.active_jobs,
            key=lambda j: (job_volume(j, total, r=0.0), j.job_id),
        )
        for job in jobs:
            candidates = pending_by_phase(job, view.time)
            if candidates:
                fill_tasks_best_fit(view, candidates)
        self.speculation.launch_backups(view, view.active_jobs)
