"""Speculative execution policies for the baseline schedulers.

The Capacity Scheduler's MapReduce framework "has adopted some
speculative execution scheme to handle stragglers" (Sec. 2), yet Fig. 1
shows it failing because of "the late launching of extra backup copies
when a straggler is detected".  :class:`LATESpeculation` reproduces that
mechanism (and its failure mode): a backup copy launches only after

* a minimum fraction of the task's phase has completed (needed to
  estimate the phase's typical duration — the reason small jobs cannot
  be helped, Sec. 1), and
* the task's elapsed time exceeds a multiple of that estimate.

Unlike cloning, speculation reacts *after* the straggler is already
late — exactly the contrast the paper draws.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.sim.actions import Launch
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView
    from repro.workload.job import Job

__all__ = ["SpeculationPolicy", "NoSpeculation", "LATESpeculation"]


class SpeculationPolicy(abc.ABC):
    """Decides which running tasks deserve a backup copy right now."""

    @abc.abstractmethod
    def backup_candidates(self, view: "ClusterView", jobs: list["Job"]) -> list[Task]:
        """Tasks to back up, most urgent first."""

    def launch_backups(self, view: "ClusterView", jobs: list["Job"]) -> int:
        """Place one backup per candidate on its best-fit server."""
        launched = 0
        for task in self.backup_candidates(view, jobs):
            server = view.cluster.best_fit_server(task.demand)
            if server is None:
                continue
            view.apply(Launch(task, server, clone=True))
            launched += 1
        return launched


class NoSpeculation(SpeculationPolicy):
    def backup_candidates(self, view: "ClusterView", jobs: list["Job"]) -> list[Task]:
        return []


class LATESpeculation(SpeculationPolicy):
    """LATE-style straggler detection [Zaharia et al., OSDI'08].

    Parameters mirror Hadoop's defaults: a task is speculatable when its
    elapsed time exceeds ``slow_threshold`` × the observed mean duration
    of completed tasks in its phase, at least ``min_completed_fraction``
    of the phase has finished, and the task has no live backup yet.
    ``max_backup_fraction`` caps concurrent backups cluster-wide.
    """

    def __init__(
        self,
        *,
        slow_threshold: float = 1.5,
        min_completed_fraction: float = 0.25,
        max_backup_fraction: float = 0.1,
    ) -> None:
        if slow_threshold <= 1.0:
            raise ValueError("slow_threshold must exceed 1")
        if not 0.0 < min_completed_fraction <= 1.0:
            raise ValueError("min_completed_fraction must be in (0, 1]")
        if not 0.0 <= max_backup_fraction <= 1.0:
            raise ValueError("max_backup_fraction must be in [0, 1]")
        self.slow_threshold = slow_threshold
        self.min_completed_fraction = min_completed_fraction
        self.max_backup_fraction = max_backup_fraction

    def backup_candidates(self, view: "ClusterView", jobs: list["Job"]) -> list[Task]:
        now = view.time
        running_total = 0
        backups_live = 0
        scored: list[tuple[float, Task]] = []
        for job in jobs:
            for phase in job.phases:
                running = phase.running_tasks()
                if not running:
                    continue
                running_total += len(running)
                backups_live += sum(1 for t in running if t.num_live_copies > 1)
                done = [t for t in phase.tasks if t.state is TaskState.FINISHED]
                if len(done) < self.min_completed_fraction * phase.num_tasks:
                    continue  # not enough samples — small jobs never pass
                durations = [
                    t.finish_time - t.start_time
                    for t in done
                    if t.finish_time is not None and t.start_time is not None
                ]
                if not durations:
                    continue
                estimate = sum(durations) / len(durations)
                for t in running:
                    if t.num_live_copies > 1:
                        continue  # already backed up
                    start = t.start_time
                    if start is None:
                        continue
                    elapsed = now - start
                    if elapsed > self.slow_threshold * estimate:
                        scored.append((elapsed / estimate, t))
        if not scored:
            return []
        budget = max(0, int(self.max_backup_fraction * running_total) - backups_live)
        scored.sort(key=lambda p: -p[0])
        return [t for _, t in scored[:budget]]
