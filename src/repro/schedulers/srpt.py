"""SRPT: Shortest Remaining Processing Time (Sec. 4.2 baseline).

"Jobs with the smallest running time are scheduled first" — remaining
processing time is the critical path of mean task durations over the
job's unfinished phases.  Optimal offline on identical machines with
homogeneous demands [17], but blind to resource shape and hence prone to
fragmentation (the limitation DollyMP's knapsack step addresses).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.schedulers.base import Scheduler
from repro.schedulers.packing import fill_tasks_best_fit, pending_by_phase
from repro.schedulers.speculation import NoSpeculation, SpeculationPolicy
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView

__all__ = ["SRPTScheduler"]


class SRPTScheduler(Scheduler):
    name = "SRPT"

    def __init__(self, *, speculation: SpeculationPolicy | None = None) -> None:
        self.speculation = speculation if speculation is not None else NoSpeculation()

    @staticmethod
    def remaining_time(job: Job) -> float:
        """Critical path over unfinished phases, mean durations (r = 0)."""
        return job.remaining_effective_length(0.0)

    def schedule(self, view: "ClusterView") -> None:
        jobs = sorted(
            view.active_jobs, key=lambda j: (self.remaining_time(j), j.job_id)
        )
        for job in jobs:
            candidates = pending_by_phase(job, view.time)
            if candidates:
                fill_tasks_best_fit(view, candidates)
        self.speculation.launch_backups(view, view.active_jobs)
