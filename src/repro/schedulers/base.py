"""Scheduler interface.

A scheduler receives a :class:`~repro.sim.engine.ClusterView` at each
scheduling opportunity (job arrival, task completion or slot tick,
depending on the engine mode) and emits typed decisions through it: a
:class:`~repro.sim.actions.Launch` or :class:`~repro.sim.actions.Kill`
action submitted via ``view.apply`` (or the ``view.launch`` /
``view.kill`` conveniences, which build the same actions).  The view
exposes the cluster state and the set of active (arrived, not yet
finished) jobs; the engine validates every action against the capacity
constraint of Eq. (5) before applying it, and journals it for
deterministic replay (DESIGN.md §5.3).  Policy code must not mutate
engine or cluster state any other way — repro-lint rule RL007 enforces
this mechanically.

Schedulers are stateful across calls (e.g. DollyMP caches job priorities
between arrivals) and are notified of arrivals/finishes via hooks.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView
    from repro.workload.job import Job
    from repro.workload.task import Task

__all__ = ["Scheduler"]


class Scheduler(abc.ABC):
    """Base class for all scheduling policies."""

    #: Human-readable policy name used in reports.
    name: str = "scheduler"

    def on_job_arrival(self, job: "Job", view: "ClusterView") -> None:
        """Hook: job became known to the cluster (before the schedule pass)."""

    def on_task_finish(self, task: "Task", view: "ClusterView") -> None:
        """Hook: a task completed (its first copy finished)."""

    def on_job_finish(self, job: "Job", view: "ClusterView") -> None:
        """Hook: every phase of the job completed."""

    # -- fault notifications (DESIGN.md §5.5; no-ops absent injection) --
    def on_server_fail(self, server, orphans, view: "ClusterView") -> None:
        """Hook: ``server`` crashed.  Its resident copies were killed
        and ``orphans`` (tasks whose *last* live copy died — tasks that
        kept a surviving clone are not in it) are back in the pending
        pool.  The default policy response is nothing: orphans are
        re-placed by the next schedule pass like any pending task."""

    def on_server_recover(self, server, view: "ClusterView") -> None:
        """Hook: a crashed server returned at full capacity."""

    def on_copy_failure(self, copy, view: "ClusterView") -> None:
        """Hook: one copy died to an injected fault (its server is still
        up).  ``copy.task`` either survives on a clone or was requeued."""

    @abc.abstractmethod
    def schedule(self, view: "ClusterView") -> None:
        """Emit ``Launch`` actions via ``view.apply``/``view.launch``
        until nothing more fits (or the policy chooses to stop)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
