"""FIFO and (YARN) Capacity scheduling.

The Capacity Scheduler [2] is YARN's default and the paper's primary
baseline.  Within one queue it serves applications in arrival order,
handing containers to the oldest application first; MapReduce's own
speculative execution runs underneath it.  We model:

* :class:`FIFOScheduler` — pure arrival-order service;
* :class:`CapacityScheduler` — arrival-order service per queue with
  capacity-weighted queue selection, plus LATE speculation by default
  (the configuration whose straggler behaviour Figs. 1 and 4–7 measure).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.schedulers.base import Scheduler
from repro.schedulers.packing import fill_tasks_best_fit, next_pending_task, pending_by_phase
from repro.schedulers.speculation import LATESpeculation, NoSpeculation, SpeculationPolicy
from repro.sim.actions import Launch
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView

__all__ = ["FIFOScheduler", "CapacityScheduler"]


class FIFOScheduler(Scheduler):
    """Serve jobs strictly in arrival order."""

    name = "FIFO"

    def __init__(self, *, speculation: SpeculationPolicy | None = None) -> None:
        self.speculation = speculation if speculation is not None else NoSpeculation()

    def job_order(self, view: "ClusterView") -> list[Job]:
        return sorted(view.active_jobs, key=lambda j: (j.arrival_time, j.job_id))

    def schedule(self, view: "ClusterView") -> None:
        for job in self.job_order(view):
            candidates = pending_by_phase(job, view.time)
            if candidates:
                fill_tasks_best_fit(view, candidates)
        self.speculation.launch_backups(view, view.active_jobs)


class CapacityScheduler(FIFOScheduler):
    """YARN Capacity Scheduler: FIFO within queues, queues weighted.

    ``queue_weights`` maps a user/queue name to its configured capacity
    share; job → queue via ``job.user``.  Jobs of under-served queues go
    first (usage/weight ascending), FIFO inside a queue.  With a single
    queue (the default, and the paper's setup) this is FIFO + LATE
    speculation.
    """

    name = "Capacity"

    def __init__(
        self,
        *,
        queue_weights: Mapping[str, float] | None = None,
        speculation: SpeculationPolicy | None = None,
    ) -> None:
        super().__init__(
            speculation=speculation if speculation is not None else LATESpeculation()
        )
        self.queue_weights = dict(queue_weights) if queue_weights else {}
        for q, w in self.queue_weights.items():
            if w <= 0:
                raise ValueError(f"queue {q!r}: weight must be positive")

    def schedule(self, view: "ClusterView") -> None:
        if not self.queue_weights:
            super().schedule(view)
            return
        # Weighted queues: assign one container at a time, recomputing
        # queue usage after each grant (YARN hands out containers
        # one heartbeat at a time, keeping queues at their capacities).
        total = view.cluster.total_capacity
        usage: dict[str, float] = {}
        for job in view.active_jobs:
            share = sum(
                t.num_live_copies * t.demand.dominant_share(total)
                for t in job.running_tasks()
            )
            usage[job.user] = usage.get(job.user, 0.0) + share
        blocked: set[int] = set()
        while True:
            candidates = [
                j for j in view.active_jobs if j.job_id not in blocked
            ]
            if not candidates:
                break
            candidates.sort(
                key=lambda j: (
                    usage.get(j.user, 0.0) / self.queue_weights.get(j.user, 1.0),
                    j.arrival_time,
                    j.job_id,
                )
            )
            progressed = False
            for job in candidates:
                task = next_pending_task(job, view.time)
                if task is None:
                    blocked.add(job.job_id)
                    continue
                server = view.cluster.best_fit_server(task.demand)
                if server is None:
                    blocked.add(job.job_id)
                    continue
                view.apply(Launch(task, server))
                usage[job.user] = usage.get(job.user, 0.0) + task.demand.dominant_share(
                    total
                )
                progressed = True
                break
            if not progressed:
                break
        self.speculation.launch_backups(view, view.active_jobs)
