"""DRF: Dominant Resource Fairness [Ghodsi et al., NSDI'11].

The paper's fairness baseline: "it offers resources to the job whose
dominant resource's allocation is furthest from its fair share"
(Sec. 6.1).  Implemented as progressive filling — repeatedly grant one
task to the active job with the smallest current dominant share until
nothing more fits.  Weighted shares are supported (per-job weight 1 by
default, giving equal fair shares).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable

from repro.schedulers.base import Scheduler
from repro.schedulers.packing import next_pending_task
from repro.schedulers.speculation import NoSpeculation, SpeculationPolicy
from repro.sim.actions import Launch
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView

__all__ = ["DRFScheduler"]


def _unit_weight(job: Job) -> float:
    """Default per-job weight (module-level so the scheduler pickles
    for checkpointing; a lambda default would not)."""
    return 1.0


class DRFScheduler(Scheduler):
    name = "DRF"

    def __init__(
        self,
        *,
        weight_of: Callable[[Job], float] | None = None,
        speculation: SpeculationPolicy | None = None,
    ) -> None:
        self.weight_of = weight_of if weight_of is not None else _unit_weight
        self.speculation = speculation if speculation is not None else NoSpeculation()

    @staticmethod
    def current_dominant_share(job: Job, view: "ClusterView") -> float:
        """Dominant share of the job's live allocation (all copies)."""
        total = view.cluster.total_capacity
        share = 0.0
        for task in job.running_tasks():
            share += task.num_live_copies * task.demand.dominant_share(total)
        return share

    def schedule(self, view: "ClusterView") -> None:
        jobs = view.active_jobs
        if not jobs:
            return
        # Progressive filling via a heap of (share/weight, job_id).
        shares = {
            j.job_id: self.current_dominant_share(j, view) / self.weight_of(j)
            for j in jobs
        }
        by_id = {j.job_id: j for j in jobs}
        heap = [(s, jid) for jid, s in shares.items()]
        heapq.heapify(heap)
        blocked: set[int] = set()
        total = view.cluster.total_capacity
        while heap:
            share, jid = heapq.heappop(heap)
            if jid in blocked or share != shares[jid]:
                continue  # stale entry
            job = by_id[jid]
            task = next_pending_task(job, view.time)
            if task is None:
                blocked.add(jid)
                continue
            server = view.cluster.best_fit_server(task.demand)
            if server is None:
                # Demand does not fit anywhere right now; within this
                # pass availability only shrinks, so drop the job.
                blocked.add(jid)
                continue
            view.apply(Launch(task, server))
            shares[jid] = share + task.demand.dominant_share(total) / self.weight_of(job)
            heapq.heappush(heap, (shares[jid], jid))
        self.speculation.launch_backups(view, jobs)
