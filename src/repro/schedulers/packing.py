"""Shared placement loops: best-fit task filling and clone filling.

Placements are emitted as typed :class:`~repro.sim.actions.Launch`
actions through ``view.apply`` (the action protocol of DESIGN.md §5.3),
so every launch these loops perform is validated, journaled and
replayable by the engine.

Both DollyMP (Alg. 2, steps 9–15) and the Tetris-style baselines place
one task at a time, choosing among equally-prioritized candidates the
(task, server) pair maximizing the resource-fit inner product
R_i^c·c + R_i^m·m.

Two implementations produce identical placement sequences:

* the **vectorized** path (default) keeps a candidate×server score
  matrix against the cluster's availability mirror; each launch only
  invalidates the launched server's column, so a pass is one column
  update plus one ``argmax`` per placement;
* the **scalar reference** path (``Cluster(vectorized=False)`` /
  ``REPRO_SCALAR_PLACEMENT=1``) is the original per-server loop with an
  incremental best-server cache.

Tie-breaking contract (both paths): the *earliest candidate* in the
given order wins equal scores, and within a candidate the *lowest
server id* wins — the scalar loops use strict ``>`` so the first
maximum is kept, and the row-major ``argmax`` over the matrix returns
exactly the same (candidate, server) pair.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.cluster.server import Server
from repro.resources import EPS
from repro.sim.actions import Launch
from repro.workload.phase import Phase
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.mirror import AvailabilityMirror
    from repro.sim.engine import ClusterView

__all__ = [
    "CloneScoreCache",
    "fill_tasks_best_fit",
    "fill_clones_best_fit",
    "first_fit_server",
    "pending_by_phase",
    "next_pending_task",
]


def _vectorized_clone_fill_default() -> bool:
    """Cached clone-fill scoring unless REPRO_SCALAR_CLONE_FILL opts out
    (escape hatch mirroring REPRO_SCALAR_PLACEMENT)."""
    flag = os.environ.get("REPRO_SCALAR_CLONE_FILL", "").strip().lower()
    return flag in ("", "0", "false", "no")


def first_fit_server(view: "ClusterView", demand) -> Server | None:
    """Best-fit (max alignment) server for a demand, or None."""
    return view.cluster.best_fit_server(demand)


def pending_by_phase(job, now: float | None = None) -> list[tuple[Phase, list[Task]]]:
    """(phase, pending tasks) for every *ready* phase of the job.

    All DAG-ready phases are offered — branches of a fork run in
    parallel, as they do under YARN where every launchable container is
    requested at once.  ``now`` enables shuffle/start-delay gating.
    """
    out: list[tuple[Phase, list[Task]]] = []
    for phase in job.phases:
        # O(1) pending guard first: it implies the phase is unfinished,
        # and most phases a pass visits have nothing pending — the
        # DAG-readiness check is the expensive half.
        if phase.num_pending == 0 or not job.phase_ready(phase, now):
            continue
        pending = [t for t in phase.tasks if t.state is TaskState.PENDING]
        if pending:
            out.append((phase, pending))
    return out


def next_pending_task(job, now: float | None = None) -> Task | None:
    """The first pending task across the job's ready phases."""
    for phase in job.ready_phases(now):
        for t in phase.tasks:
            if t.state is TaskState.PENDING:
                return t
    return None


class _Candidate:
    """A queue of identical pending tasks (one phase of one job)."""

    __slots__ = ("phase", "queue", "best_server", "best_score")

    def __init__(self, phase: Phase, tasks: list[Task]) -> None:
        self.phase = phase
        self.queue = tasks  # consumed from the end
        self.best_server: Server | None = None
        self.best_score = -1.0

    def rescore(
        self,
        servers: Iterable[Server],
        server_weight: Callable[[Server], float] | None = None,
    ) -> None:
        demand = self.phase.demand
        self.best_server = None
        self.best_score = -1.0
        for s in servers:
            if not s.up:
                continue
            avail = s.available
            if not demand.fits_in(avail):
                continue
            score = demand.dot(avail)
            if server_weight is not None:
                score *= server_weight(s)
            if score > self.best_score:  # strict: ties keep the lowest id
                self.best_server, self.best_score = s, score


def fill_tasks_best_fit(
    view: "ClusterView",
    phases_with_tasks: list[tuple[Phase, list[Task]]],
    *,
    on_launch: Callable[[Task, Server], None] | None = None,
    server_weight: Callable[[Server], float] | None = None,
) -> int:
    """Launch pending tasks from the given phases, all treated with equal
    priority, one at a time by best resource fit.  Returns launch count.

    ``phases_with_tasks`` pairs each phase with the (pending, ready)
    tasks to place.  Used per priority group by DollyMP and per ordering
    bucket by the baselines.  ``server_weight`` optionally scales each
    server's fit score (the straggler-avoidance extension multiplies by
    the inverse of the server's learned slowdown); on the vectorized
    path it is evaluated once per server and applied as a weight vector.
    """
    obs = view.observability
    frame = (
        obs.profiler.enter("placement")
        if obs is not None and obs.profiler is not None
        else None
    )
    try:
        if view.cluster.vectorized:
            launched = _fill_tasks_vectorized(
                view,
                phases_with_tasks,
                on_launch=on_launch,
                server_weight=server_weight,
            )
        else:
            launched = _fill_tasks_scalar(
                view,
                phases_with_tasks,
                on_launch=on_launch,
                server_weight=server_weight,
            )
    finally:
        if frame is not None:
            obs.profiler.exit(frame)
    if launched and obs is not None and obs.sim is not None:
        obs.sim.placement_launched.labels(mode="tasks").inc(launched)
    return launched


def _fill_tasks_vectorized(
    view: "ClusterView",
    phases_with_tasks: list[tuple[Phase, list[Task]]],
    *,
    on_launch: Callable[[Task, Server], None] | None,
    server_weight: Callable[[Server], float] | None,
) -> int:
    """Batched fill: one candidate×server score matrix, updated one
    column per launch (only the launched server's availability shrank).
    """
    phases = [phase for phase, tasks in phases_with_tasks if tasks]
    queues = [list(tasks) for _, tasks in phases_with_tasks if tasks]
    if not phases:
        return 0
    cluster = view.cluster
    mirror = cluster.mirror
    servers = cluster.servers
    num_servers = len(servers)
    weights = None
    if server_weight is not None:
        weights = np.fromiter(
            (server_weight(s) for s in servers), np.float64, num_servers
        )
    if weights is None and mirror._shard_slices is not None:
        # Sharded mirror (DESIGN.md §5.10): block-lazy fill — same
        # launch sequence, but score blocks materialize only when the
        # shard availability bounds cannot rule them out.
        return _fill_tasks_sharded(
            view, phases, queues, on_launch=on_launch
        )
    d_cpu = np.fromiter((p.demand.cpu for p in phases), np.float64, len(phases))
    d_mem = np.fromiter((p.demand.mem for p in phases), np.float64, len(phases))

    # scores[c, s] = demand_c · avail_s (then × weight_s), -inf where the
    # demand does not fit — the same expression, in the same operation
    # order, as the scalar rescore, so scores are bit-identical.
    scores = d_cpu[:, None] * mirror.avail_cpu[None, :] + d_mem[:, None] * mirror.avail_mem[None, :]
    if weights is not None:
        scores *= weights[None, :]
    fits = (
        mirror.up[None, :]
        & (mirror.avail_cpu[None, :] + EPS >= d_cpu[:, None])
        & (mirror.avail_mem[None, :] + EPS >= d_mem[:, None])
    )
    scores[~fits] = -np.inf

    # Per-row best (column, score), maintained incrementally.  The flat
    # row-major argmax decomposes exactly into "first column achieving
    # each row's max, then the first row achieving the global max" —
    # kept as two invariants so a launch costs one column update plus a
    # re-argmax of only the rows whose best server was hit (a refreshed
    # column only shrinks, so it can neither overtake another row's best
    # nor create a new first-index tie; see CloneScoreCache for the tie
    # argument).
    nrows = len(phases)
    best_col = [0] * nrows
    best_score = [0.0] * nrows
    for i in range(nrows):
        c = int(scores[i].argmax())
        best_col[i] = c
        best_score[i] = float(scores[i, c])
    neg_inf = float("-inf")
    launched = 0
    while True:
        ci = -1
        bs = neg_inf
        for i in range(nrows):
            s = best_score[i]
            if s > bs:  # strict: ties keep the lowest candidate index
                bs = s
                ci = i
        if ci < 0 or bs == neg_inf:
            break  # nothing placeable remains
        sj = best_col[ci]
        task = queues[ci].pop()
        server = servers[sj]
        view.apply(Launch(task, server))
        if on_launch is not None:
            on_launch(task, server)
        launched += 1
        # Only `server`'s availability changed (shrank): refresh its
        # column against every candidate demand.
        a_cpu = mirror.avail_cpu[sj]
        a_mem = mirror.avail_mem[sj]
        col = d_cpu * a_cpu + d_mem * a_mem
        if weights is not None:
            col *= weights[sj]
        col[~(mirror.up[sj] & (a_cpu + EPS >= d_cpu) & (a_mem + EPS >= d_mem))] = -np.inf
        scores[:, sj] = col
        if not queues[ci]:
            best_score[ci] = neg_inf  # exhausted candidate leaves the race
            scores[ci, :] = -np.inf
        for i in range(nrows):
            if best_col[i] == sj and best_score[i] != neg_inf:
                c = int(scores[i].argmax())
                best_col[i] = c
                best_score[i] = float(scores[i, c])
    return launched


def _fill_tasks_sharded(
    view: "ClusterView",
    phases: list[Phase],
    queues: list[list[Task]],
    *,
    on_launch: Callable[[Task, Server], None] | None,
) -> int:
    """Blocked fill over a sharded mirror — bitwise-identical launches.

    Per candidate row, score blocks (one per shard) materialize lazily:
    a block is skipped while the mirror's stale-high availability bounds
    prove no server in it fits the demand, or no score in it can exceed
    the row's current best (see ``AvailabilityMirror._best_fit_sharded``
    for the monotonicity argument; the ``<=`` equality skip is exact
    because blocks scan ascending and ties keep the lowest server id).
    Availability only shrinks during a pass, so bounds valid at row
    resolution stay valid for the whole pass, and an unmaterialized
    block needs no column refresh — it reads fresh mirror state if it
    ever materializes.  In the mostly-idle regime every row stops at the
    first block, cutting the O(candidates × servers) matrix work to
    O(candidates × servers / K).
    """
    mirror = view.cluster.mirror
    if mirror._pending:
        mirror.flush()
    servers = view.cluster.servers
    slices = mirror._shard_slices
    assert slices is not None
    nshards = len(slices)
    shard_of = mirror._shard_of
    ub_cpu, ub_mem = mirror._ub_cpu, mirror._ub_mem
    avail_cpu, avail_mem, up = mirror.avail_cpu, mirror.avail_mem, mirror.up
    nrows = len(phases)
    d_cpu = [p.demand.cpu for p in phases]
    d_mem = [p.demand.mem for p in phases]
    # blocks[i][k]: None (unmaterialized) or the row-i score block over
    # shard k (-inf where unfit), exactly the dense matrix's slice.
    # block_best[i][k] caches that block's (first-argmax, score): during
    # a pass availability only shrinks, so refreshing a *non*-argmax
    # column cannot create a new maximum — the cache stays exact until
    # the argmax column itself is touched (then it is invalidated).
    blocks: list[list[np.ndarray | None]] = [[None] * nshards for _ in range(nrows)]
    block_best: list[list[tuple[int, float] | None]] = [
        [None] * nshards for _ in range(nrows)
    ]
    neg_inf = float("-inf")

    def resolve(i: int) -> tuple[int, float]:
        """Row i's (global best column, best score), materializing only
        the blocks the bounds cannot exclude."""
        dc, dm = d_cpu[i], d_mem[i]
        row_blocks = blocks[i]
        row_best = block_best[i]
        best_col, best_score = -1, neg_inf
        for k in range(nshards):
            lo, hi = slices[k]
            if hi <= lo:
                continue
            bc, bm = ub_cpu[k], ub_mem[k]
            if bc + EPS < dc or bm + EPS < dm:
                continue
            if best_col >= 0 and dc * bc + dm * bm <= best_score:
                continue
            blk = row_blocks[k]
            if blk is None:
                a_c = avail_cpu[lo:hi]
                a_m = avail_mem[lo:hi]
                ub_cpu[k] = float(a_c.max())
                ub_mem[k] = float(a_m.max())
                blk = dc * a_c + dm * a_m
                blk[~(up[lo:hi] & (a_c + EPS >= dc) & (a_m + EPS >= dm))] = -np.inf
                row_blocks[k] = blk
                cached = None
            else:
                cached = row_best[k]
            if cached is None:
                j = int(blk.argmax())
                cached = (j, float(blk[j]))
                row_best[k] = cached
            j, s = cached
            if s > best_score:
                best_col, best_score = lo + j, s
        return best_col, best_score

    best_col = [0] * nrows
    best_score = [0.0] * nrows
    for i in range(nrows):
        best_col[i], best_score[i] = resolve(i)
        if best_col[i] < 0:
            best_score[i] = neg_inf
    launched = 0
    while True:
        ci = -1
        bs = neg_inf
        for i in range(nrows):
            s = best_score[i]
            if s > bs:  # strict: ties keep the lowest candidate index
                bs = s
                ci = i
        if ci < 0 or bs == neg_inf:
            break  # nothing placeable remains
        sj = best_col[ci]
        task = queues[ci].pop()
        server = servers[sj]
        view.apply(Launch(task, server))
        if on_launch is not None:
            on_launch(task, server)
        launched += 1
        if mirror._pending:
            mirror.flush()
        # Only column sj changed (shrank): refresh it in every row whose
        # block holds it, then re-resolve rows that were counting on it.
        ks = shard_of[sj]  # type: ignore[index]
        lo = slices[ks][0]
        col = sj - lo
        a_cpu = float(avail_cpu[sj])
        a_mem = float(avail_mem[sj])
        s_up = bool(up[sj])
        exhausted = not queues[ci]
        for i in range(nrows):
            if exhausted and i == ci:
                continue
            blk = blocks[i][ks]
            if blk is not None:
                if s_up and a_cpu + EPS >= d_cpu[i] and a_mem + EPS >= d_mem[i]:
                    blk[col] = d_cpu[i] * a_cpu + d_mem[i] * a_mem
                else:
                    blk[col] = -np.inf
                cached = block_best[i][ks]
                if cached is not None and cached[0] == col:
                    block_best[i][ks] = None  # argmax column shrank
            if best_col[i] == sj and best_score[i] != neg_inf:
                best_col[i], best_score[i] = resolve(i)
                if best_col[i] < 0:
                    best_score[i] = neg_inf
        if exhausted:
            best_score[ci] = neg_inf  # exhausted candidate leaves the race
    return launched


def _fill_tasks_scalar(
    view: "ClusterView",
    phases_with_tasks: list[tuple[Phase, list[Task]]],
    *,
    on_launch: Callable[[Task, Server], None] | None,
    server_weight: Callable[[Server], float] | None,
) -> int:
    """Reference fill: per-candidate best-server cache, rescored only
    when the cached best server's availability changes."""
    cands = [
        _Candidate(phase, list(tasks))
        for phase, tasks in phases_with_tasks
        if tasks
    ]
    servers = view.cluster.servers
    for c in cands:
        c.rescore(servers, server_weight)
    launched = 0
    while True:
        best: _Candidate | None = None
        for c in cands:
            if c.queue and c.best_server is not None and (
                best is None or c.best_score > best.best_score
            ):
                best = c
        if best is None:
            break
        task = best.queue.pop()
        server = best.best_server
        assert server is not None
        view.apply(Launch(task, server))
        if on_launch is not None:
            on_launch(task, server)
        launched += 1
        # Only `server`'s availability changed (shrank): rescore the
        # candidates that were counting on it.
        for c in cands:
            if c.best_server is server:
                c.rescore(servers, server_weight)
        cands = [c for c in cands if c.queue and c.best_server is not None]
    return launched


class CloneScoreCache:
    """Per-pass memo of demand → (score row, best server) for clone fills.

    The clone pass queries ``best_fit_server`` for the same few demand
    keys over and over (every task of a phase shares one demand), and
    between queries availability only changes at servers it launched on.
    The cache keeps, per demand key, the full score row (``demand ·
    avail``, -inf where the demand does not fit) and its argmax; each
    launch refreshes exactly one column of every cached row.

    Bit-identical to calling :meth:`AvailabilityMirror.best_fit` afresh:

    * the column refresh evaluates the same IEEE expressions the
      vectorized row build does, one server at a time;
    * a launch only *shrinks* availability, so a refreshed non-best
      column can never overtake the cached best — and it cannot create
      a new first-index tie either, since an equal column left of the
      best would already have been the argmax.  Only rows whose cached
      best *is* the launched server re-run ``argmax``.

    Valid only while every availability change inside the pass flows
    through :meth:`on_launch` — i.e. within one scheduler pass where the
    clone fills perform all the launches.

    Over a sharded mirror (DESIGN.md §5.10) rows become *block-lazy*:
    each demand key holds one score block per shard, materialized only
    when the shard's availability bounds cannot exclude it from the
    query — the same pruning (and the same bitwise-identity argument) as
    :meth:`AvailabilityMirror._best_fit_sharded`.
    """

    __slots__ = ("_mirror", "_rows", "_blocks")

    def __init__(self, mirror: "AvailabilityMirror") -> None:
        self._mirror = mirror
        # demand key → [row (float64, -inf where unfit), best index]
        self._rows: dict[tuple[float, float], list] = {}
        # Sharded mode: demand key → list of per-shard entries, each
        # None (unmaterialized) or [block row, local best index | -1].
        self._blocks: dict[tuple[float, float], list] = {}

    def best_fit_id(self, demand) -> int | None:
        """Best-fit server id for ``demand``, or None when nothing fits.

        Same result as ``mirror.best_fit(demand)`` (unweighted).
        """
        mirror = self._mirror
        if mirror._shard_slices is not None:
            return self._best_fit_id_sharded(demand)
        key = (demand.cpu, demand.mem)
        entry = self._rows.get(key)
        if entry is None:
            fits = mirror.fitting_mask(demand)  # flushes pending updates
            row = demand.cpu * mirror.avail_cpu + demand.mem * mirror.avail_mem
            row[~fits] = -np.inf
            entry = [row, int(row.argmax())]
            self._rows[key] = entry
        row, best = entry
        if best < 0:  # stale since the last launch — re-resolve lazily
            best = int(row.argmax())
            entry[1] = best
        if row[best] == -np.inf:
            return None
        return best

    def _best_fit_id_sharded(self, demand) -> int | None:
        """Block-lazy variant: scan shards ascending with bound pruning,
        reusing materialized blocks (kept current by :meth:`on_launch`)."""
        mirror = self._mirror
        if mirror._pending:
            mirror.flush()
        slices = mirror._shard_slices
        assert slices is not None
        key = (demand.cpu, demand.mem)
        entries = self._blocks.get(key)
        if entries is None:
            entries = [None] * len(slices)
            self._blocks[key] = entries
        d_cpu, d_mem = key
        ub_cpu, ub_mem = mirror._ub_cpu, mirror._ub_mem
        avail_cpu, avail_mem, up = mirror.avail_cpu, mirror.avail_mem, mirror.up
        best_id = -1
        best_score = -np.inf
        for k, (lo, hi) in enumerate(slices):
            if hi <= lo:
                continue
            bc, bm = ub_cpu[k], ub_mem[k]
            if bc + EPS < d_cpu or bm + EPS < d_mem:
                continue
            if best_id >= 0 and d_cpu * bc + d_mem * bm <= best_score:
                continue
            blk = entries[k]
            if blk is None:
                a_c = avail_cpu[lo:hi]
                a_m = avail_mem[lo:hi]
                ub_cpu[k] = float(a_c.max())
                ub_mem[k] = float(a_m.max())
                row = d_cpu * a_c + d_mem * a_m
                row[~(up[lo:hi] & (a_c + EPS >= d_cpu) & (a_m + EPS >= d_mem))] = -np.inf
                blk = [row, int(row.argmax())]
                entries[k] = blk
            row, bi = blk
            if bi < 0:  # stale since the last launch — re-resolve lazily
                bi = int(row.argmax())
                blk[1] = bi
            s = float(row[bi])
            if s == -np.inf:
                continue
            if s > best_score:
                best_id = lo + bi
                best_score = s
        return None if best_id < 0 else best_id

    def on_launch(self, server_id: int) -> None:
        """Refresh the launched server's column in every cached row."""
        mirror = self._mirror
        if mirror._pending:
            mirror.flush()
        a_cpu = mirror.avail_cpu[server_id]
        a_mem = mirror.avail_mem[server_id]
        up = bool(mirror.up[server_id])
        if mirror._shard_slices is not None:
            ks = mirror._shard_of[server_id]  # type: ignore[index]
            lo = mirror._shard_slices[ks][0]
            col = server_id - lo
            for (d_cpu, d_mem), entries in self._blocks.items():
                blk = entries[ks]
                if blk is None:
                    continue  # unmaterialized blocks read fresh state later
                row = blk[0]
                if up and a_cpu + EPS >= d_cpu and a_mem + EPS >= d_mem:
                    row[col] = d_cpu * a_cpu + d_mem * a_mem
                else:
                    row[col] = -np.inf
                if blk[1] == col:
                    blk[1] = -1
            return
        for (d_cpu, d_mem), entry in self._rows.items():
            row = entry[0]
            if up and a_cpu + EPS >= d_cpu and a_mem + EPS >= d_mem:
                row[server_id] = d_cpu * a_cpu + d_mem * a_mem
            else:
                row[server_id] = -np.inf
            if entry[1] == server_id:
                # Mark stale instead of re-running argmax now: rows that
                # shared this best server but are never queried again
                # (end of pass, demand turned unfittable) skip the scan.
                entry[1] = -1


def fill_clones_best_fit(
    view: "ClusterView",
    tasks: Iterable[Task],
    *,
    budget_check: Callable[[Task], bool] | None = None,
    max_launches: int | None = None,
    on_launch: Callable[[Task, Server], None] | None = None,
    score_cache: CloneScoreCache | None = None,
) -> int:
    """Launch at most one clone per listed (running) task, best fit first.

    ``budget_check`` gates each launch (DollyMP's δ budget); tasks are
    attempted in the given priority order, each placed on its best-fit
    server if any fits.  ``score_cache`` (a pass-scoped
    :class:`CloneScoreCache`) replaces the per-query best-fit scan with
    cached score rows.  Returns the number of clones launched.
    """
    obs = view.observability
    frame = (
        obs.profiler.enter("placement")
        if obs is not None and obs.profiler is not None
        else None
    )
    try:
        launched = _fill_clones(
            view,
            tasks,
            budget_check=budget_check,
            max_launches=max_launches,
            on_launch=on_launch,
            score_cache=score_cache,
        )
    finally:
        if frame is not None:
            obs.profiler.exit(frame)
    if launched and obs is not None and obs.sim is not None:
        obs.sim.placement_launched.labels(mode="clones").inc(launched)
    return launched


def _fill_clones(
    view: "ClusterView",
    tasks: Iterable[Task],
    *,
    budget_check: Callable[[Task], bool] | None,
    max_launches: int | None,
    on_launch: Callable[[Task, Server], None] | None,
    score_cache: CloneScoreCache | None = None,
) -> int:
    launched = 0
    servers = view.cluster.servers
    # Availability only shrinks within a pass, so a demand that found no
    # server will never fit later in the pass — skip repeats (tasks of a
    # phase share one demand, making this cache very effective).
    unfittable: set[tuple[float, float]] = set()
    for task in tasks:
        if max_launches is not None and launched >= max_launches:
            break
        if task.state is not TaskState.RUNNING:
            continue
        demand = task.demand
        key = (demand.cpu, demand.mem)
        if key in unfittable:
            continue
        if budget_check is not None and not budget_check(task):
            continue
        if score_cache is not None:
            # A cache hit is still one placement query answered — keep
            # the observability counter aligned with the uncached path.
            if view.cluster._obs_placement is not None:
                view.cluster._count_query()
            sid = score_cache.best_fit_id(demand)
            server = None if sid is None else servers[sid]
        else:
            server = view.cluster.best_fit_server(demand)
        if server is None:
            unfittable.add(key)
            continue
        view.apply(Launch(task, server, clone=True))
        if score_cache is not None:
            score_cache.on_launch(server.server_id)
        if on_launch is not None:
            on_launch(task, server)
        launched += 1
    return launched
