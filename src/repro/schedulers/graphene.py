"""Graphene: dependency-aware packing [Grandl et al., OSDI'16].

"The strength of Graphene is to deal with jobs consisting of
heterogeneous DAGs, and it performs similarly to Tetris for jobs with
sequential dependencies" (Sec. 6.3.2) — the paper therefore only plots
Carbyne, but we implement Graphene for completeness and to validate that
equivalence claim (tested in the benchmark suite).

Reimplementation: Tetris-style alignment placement, with each job's
schedulable work ordered by *downstream criticality* — among a job's
ready phases the one heading the longest remaining dependency chain is
offered first (the "troublesome tasks first" core of Graphene, collapsed
to its phase-level effect).  For chain DAGs exactly one phase is ready
at a time, so the policy degenerates to Tetris, as the paper states.
"""

from __future__ import annotations

from repro.schedulers.tetris import TetrisScheduler
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskState

__all__ = ["GrapheneScheduler"]


class GrapheneScheduler(TetrisScheduler):
    name = "Graphene"

    @staticmethod
    def downstream_criticality(job: Job, phase: Phase) -> float:
        """Length of the longest unfinished chain starting at ``phase``."""
        parents = job.parents_list()
        n = len(parents)
        children: list[list[int]] = [[] for _ in range(n)]
        for child, ps in enumerate(parents):
            for p in ps:
                children[p].append(child)
        # Longest path in the reversed DAG from `phase`, over unfinished
        # phases, weighted by mean remaining time.
        memo: dict[int, float] = {}

        def down(k: int) -> float:
            if k in memo:
                return memo[k]
            own = job.phases[k].theta if not job.phases[k].is_finished else 0.0
            memo[k] = own + max((down(c) for c in children[k]), default=0.0)
            return memo[k]

        return down(phase.index)

    def _candidate_phases(self, job: Job, now: float) -> list[Phase]:
        ready = [
            p
            for p in job.ready_phases(now)
            if any(t.state is TaskState.PENDING for t in p.tasks)
        ]
        if not ready:
            return []
        best = max(
            ready, key=lambda p: (self.downstream_criticality(job, p), -p.index)
        )
        return [best]
