"""Cluster schedulers: the DollyMP family and all the paper's baselines."""

from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FIFOScheduler, CapacityScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.schedulers.svf import SVFScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.graphene import GrapheneScheduler
from repro.schedulers.speculation import SpeculationPolicy, LATESpeculation, NoSpeculation
from repro.core.online import DollyMPScheduler

__all__ = [
    "Scheduler",
    "FIFOScheduler",
    "CapacityScheduler",
    "SRPTScheduler",
    "SVFScheduler",
    "DRFScheduler",
    "TetrisScheduler",
    "CarbyneScheduler",
    "GrapheneScheduler",
    "SpeculationPolicy",
    "LATESpeculation",
    "NoSpeculation",
    "DollyMPScheduler",
]
