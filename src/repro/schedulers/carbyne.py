"""Carbyne: altruistic multi-resource scheduling [Grandl et al., OSDI'16].

"The Carbyne Scheduler adopts ideas from DRF and Tetris, and applies
altruistic scheduling to collect leftover resources.  The leftover
resources are then redistributed to other tasks for achieving better job
performance and cluster efficiency" (Sec. 6.3.2).

Reimplemented at the granularity the comparison needs (see DESIGN.md):

1. **Fair pass** — progressive filling à la DRF, but each job
   *altruistically* takes no more than its fair dominant share (it only
   needs enough to keep its completion time at the fair-share pace);
2. **Leftover pass** — the donated capacity is repacked Tetris-style
   with preference to jobs closest to completion (boosting JCT).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.schedulers.base import Scheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.packing import fill_tasks_best_fit, next_pending_task, pending_by_phase
from repro.schedulers.speculation import NoSpeculation, SpeculationPolicy
from repro.sim.actions import Launch
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView

__all__ = ["CarbyneScheduler"]


class CarbyneScheduler(Scheduler):
    name = "Carbyne"

    def __init__(self, *, speculation: SpeculationPolicy | None = None) -> None:
        self.speculation = speculation if speculation is not None else NoSpeculation()

    def schedule(self, view: "ClusterView") -> None:
        jobs = view.active_jobs
        if not jobs:
            return
        self._fair_pass(view, jobs)
        self._leftover_pass(view, jobs)
        self.speculation.launch_backups(view, jobs)

    # ------------------------------------------------------------------
    def _fair_pass(self, view: "ClusterView", jobs: list[Job]) -> None:
        """DRF progressive filling capped at each job's fair share."""
        total = view.cluster.total_capacity
        fair_share = 1.0 / len(jobs)
        shares = {j.job_id: DRFScheduler.current_dominant_share(j, view) for j in jobs}
        by_id = {j.job_id: j for j in jobs}
        heap = [(s, jid) for jid, s in shares.items()]
        heapq.heapify(heap)
        blocked: set[int] = set()
        while heap:
            share, jid = heapq.heappop(heap)
            if jid in blocked or share != shares[jid]:
                continue
            if share >= fair_share:
                continue  # altruistic: do not exceed the fair share now
            job = by_id[jid]
            task = next_pending_task(job, view.time)
            if task is None:
                blocked.add(jid)
                continue
            server = view.cluster.best_fit_server(task.demand)
            if server is None:
                blocked.add(jid)
                continue
            view.apply(Launch(task, server))
            shares[jid] = share + task.demand.dominant_share(total)
            heapq.heappush(heap, (shares[jid], jid))

    def _leftover_pass(self, view: "ClusterView", jobs: list[Job]) -> None:
        """Redistribute donated capacity, shortest-remaining jobs first."""
        order = sorted(
            jobs, key=lambda j: (j.remaining_effective_length(0.0), j.job_id)
        )
        for job in order:
            candidates = pending_by_phase(job, view.time)
            if candidates:
                fill_tasks_best_fit(view, candidates)
