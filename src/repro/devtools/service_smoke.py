"""Service-mode smoke (CI gate, DESIGN.md §5.8).

Streams 200 generated trace jobs through the session/service layers and
proves the three properties ``python -m repro serve`` promises:

1. **Stream identity** — a served session (``SignalAwareLineFeed`` →
   ``JsonlSource`` → ``serve()``) over a 200-job JSONL stream finishes
   bit-identical to a one-shot ``run()`` over the same job list, while
   writing periodic checkpoints and republishing live Prometheus text;
2. **Checkpoint validity** — the checkpoint file written mid-run parses
   (``checkpoint_info``), carries the right format tag, and records a
   cut strictly inside the run;
3. **Restore identity** — a second streamed session cut mid-run with
   ``run_until``, checkpointed to disk, restored, and re-attached to the
   stream (fast-forwarded past the consumed prefix) continues to the
   same bit-identical result.

Run:  PYTHONPATH=src python -m repro.devtools.service_smoke
"""

from __future__ import annotations

import json
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.online import DollyMPScheduler
from repro.resources import Resources
from repro.service import SignalAwareLineFeed, serve
from repro.sim.checkpoint import (
    CHECKPOINT_FORMAT,
    checkpoint_info,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.engine import SimulationEngine
from repro.workload.arrivals import JsonlSource
from repro.workload.google_trace import (
    GoogleTraceGenerator,
    jobs_from_specs,
    spec_to_dict,
)

__all__ = ["main", "N_JOBS"]

#: Stream length: large enough that arrivals interleave with running
#: work for the whole session, small enough for a sub-minute gate.
N_JOBS = 200


def _specs():
    specs = GoogleTraceGenerator(seed=202).generate(N_JOBS, mean_interarrival=6.0)
    # Pin job ids: the stream and the in-process reference must name
    # jobs identically across independent engine constructions.
    return [replace(s, job_id=i) for i, s in enumerate(specs)]


def _mk_engine(jobs_or_source):
    return SimulationEngine(
        homogeneous_cluster(48, Resources.of(16, 32)),
        DollyMPScheduler(max_clones=2),
        jobs_or_source,
        seed=11,
        schedule_interval=5.0,
    )


def main() -> int:
    specs = _specs()
    lines = [json.dumps(spec_to_dict(s), sort_keys=True) for s in specs]

    reference = _mk_engine(jobs_from_specs(specs)).run().deterministic()
    if reference.num_jobs != N_JOBS:
        print(
            f"service-smoke: reference run finished {reference.num_jobs} "
            f"jobs, expected {N_JOBS}",
            file=sys.stderr,
        )
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "service.ckpt"
        textfile = Path(tmp) / "metrics.prom"

        # Leg 1 — the full service path: feed thread, EOF drain,
        # periodic checkpoints, live metrics publication.
        feed = SignalAwareLineFeed(iter(lines))
        engine = _mk_engine(JsonlSource(feed))
        published = []

        def publish(eng):
            textfile.write_text(f"# smoke publication at t={eng.now:g}\n")
            published.append(eng.now)

        served = serve(
            engine,
            feed=feed,
            checkpoint_path=ckpt,
            checkpoint_every=reference.simulated_time / 5.0,
            on_metrics=publish,
            metrics_every=reference.simulated_time / 10.0,
            install_signals=False,  # CI runners own their handlers
        ).deterministic()
        if served != reference:
            print(
                "service-smoke: served session DIVERGED from one-shot run "
                f"(served {served.num_jobs} jobs / {served.events_processed} "
                f"events, reference {reference.num_jobs} / "
                f"{reference.events_processed})",
                file=sys.stderr,
            )
            return 1
        if not published or not textfile.exists():
            print("service-smoke: live metrics never published", file=sys.stderr)
            return 1

        info = checkpoint_info(ckpt)
        if info.format != CHECKPOINT_FORMAT:
            print(
                f"service-smoke: checkpoint format {info.format!r}",
                file=sys.stderr,
            )
            return 1

        # Leg 2 — cut a fresh streamed session mid-run, checkpoint to
        # disk, restore, re-attach the stream, continue.  Cutting at the
        # median arrival (not half the horizon, which may fall in the
        # post-arrival drain tail) guarantees the stream is still live.
        cut = specs[N_JOBS // 2].arrival_time
        e2 = _mk_engine(JsonlSource(iter(lines)))
        e2.start()
        e2.run_until(cut)
        mid = save_checkpoint(e2, ckpt)
        if not (0.0 < mid.sim_time < reference.simulated_time):
            print(
                f"service-smoke: mid-run cut at t={mid.sim_time:g} is not "
                f"inside the run (horizon {reference.simulated_time:g})",
                file=sys.stderr,
            )
            return 1
        if mid.arrivals_consumed == 0 or mid.arrivals_consumed >= N_JOBS:
            print(
                f"service-smoke: cut consumed {mid.arrivals_consumed} "
                f"arrivals of {N_JOBS} — the restore leg would not exercise "
                "a live stream",
                file=sys.stderr,
            )
            return 1

        revived = load_checkpoint(ckpt)
        revived.arrivals.attach(iter(lines), skip_consumed=True)
        revived.drain()
        resumed = revived.finalize().deterministic()
        if resumed != reference:
            print(
                "service-smoke: restored session DIVERGED from one-shot run "
                f"(cut at t={mid.sim_time:g}, "
                f"{mid.arrivals_consumed} arrivals consumed)",
                file=sys.stderr,
            )
            return 1

    print(
        f"service-smoke: {N_JOBS} jobs streamed over JSONL "
        f"({served.events_processed} events, horizon "
        f"{reference.simulated_time:.0f}s); served + "
        f"checkpoint@t={mid.sim_time:g}/restore legs bit-identical to the "
        f"one-shot run; {len(published)} live metrics publications"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
