"""Sharded-engine determinism smoke (CI gate, DESIGN.md §5.10).

Drives the same short chaos-profile DollyMP² simulation as the
engine smoke — the paper's 30-node testbed under the fault-smoke churn
profile, 5-second slots — twice: once on the plain single-heap engine
(K=1) and once with four event-queue shards (K=4).  The merge barrier's
contract is that shard count is *invisible* in every output, so the
gate demands byte-identity, not statistical closeness:

* ``SimulationResult`` values must replay-compare identical;
* the decision journals must be equal, and their JSONL serializations
  byte-equal once the ``shard`` provenance field is stripped (shard
  provenance is the *only* sanctioned K-dependent output);
* the K=4 run must actually attribute decisions to shards — a gate
  that passes with provenance silently absent is vacuous;
* a K=4 run checkpointed mid-flight and revived must finish with the
  same result as the uninterrupted K=4 run (shard state survives the
  freeze/revive cycle).

Run:  PYTHONPATH=src python -m repro.devtools.shard_smoke
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.devtools.fault_smoke import SMOKE_PROFILE
from repro.sim.checkpoint import checkpoint_bytes, restore_bytes
from repro.sim.engine import SimulationEngine
from repro.sim.replay import ReplayDivergence, assert_replay_identical
from repro.workload.mapreduce import pagerank_job, wordcount_job

__all__ = ["main", "SMOKE_SHARDS", "SPLIT_TIME"]

#: The sharded leg's K.  Four shards over 30 servers gives uneven slice
#: sizes (8/8/7/7), so the balanced-partition inversion is exercised on
#: the awkward non-divisible case, not just the round one.
SMOKE_SHARDS = 4

#: Mid-run instant for the checkpoint/revive leg — far enough in that
#: shard queues hold in-flight COPY_FINISH events, well before the tail.
SPLIT_TIME = 100.0


def _make_jobs():
    jobs = []
    for i in range(10):
        if i % 2 == 0:
            jobs.append(wordcount_job(4.0, arrival_time=40.0 * i, job_id=i))
        else:
            jobs.append(pagerank_job(1.0, arrival_time=40.0 * i, job_id=i))
    return jobs


def _make_engine(shards: int) -> SimulationEngine:
    return SimulationEngine(
        paper_cluster_30_nodes(),
        DollyMPScheduler(max_clones=2),
        _make_jobs(),
        seed=7,
        schedule_interval=5.0,
        max_time=1e9,
        sanitize=True,
        record_trace=True,
        fault_profile=SMOKE_PROFILE,
        shards=shards,
    )


def _strip_shard_jsonl(trace) -> list[str]:
    """The trace's decision lines with the provenance field normalized
    away — the one field the sharded run is allowed to add."""
    return [replace(d, shard=None).to_json() for d in trace.decisions]


def main() -> int:
    dense = _make_engine(1)
    dense_result = dense.run()
    sharded = _make_engine(SMOKE_SHARDS)
    sharded_result = sharded.run()

    # The gate must not be vacuous: chaos has to fire, the workload has
    # to finish despite it, and the sharded leg must attribute shards.
    if len(dense_result.records) != len(_make_jobs()):
        print(
            f"shard-smoke: expected {len(_make_jobs())} finished jobs, "
            f"got {len(dense_result.records)}",
            file=sys.stderr,
        )
        return 1
    if dense_result.faults_injected == 0:
        print(
            "shard-smoke: chaos profile injected no faults — the sharded "
            "fault ordering goes unexercised",
            file=sys.stderr,
        )
        return 1
    attributed = {
        d.shard for d in sharded.trace.decisions if d.shard is not None
    }
    if len(attributed) < 2:
        print(
            f"shard-smoke: K={SMOKE_SHARDS} run attributed decisions to "
            f"shards {sorted(attributed)} — provenance is (near-)absent, "
            "the identity check would be vacuous",
            file=sys.stderr,
        )
        return 1

    try:
        assert_replay_identical(dense_result, sharded_result)
    except ReplayDivergence as exc:
        print(
            f"shard-smoke: K=1 vs K={SMOKE_SHARDS} results diverged — {exc}",
            file=sys.stderr,
        )
        return 1
    if sharded.trace.decisions != dense.trace.decisions:
        print(
            f"shard-smoke: K={SMOKE_SHARDS} produced a different decision "
            "journal than K=1 — the merge barrier reordered the schedule",
            file=sys.stderr,
        )
        return 1
    dense_lines = _strip_shard_jsonl(dense.trace)
    sharded_lines = _strip_shard_jsonl(sharded.trace)
    if dense_lines != sharded_lines:
        first = next(
            i for i, (a, b) in enumerate(zip(dense_lines, sharded_lines)) if a != b
        )
        print(
            f"shard-smoke: trace JSONL differs beyond the shard field at "
            f"decision {first}:\n  K=1: {dense_lines[first]}\n  "
            f"K={SMOKE_SHARDS}: {sharded_lines[first]}",
            file=sys.stderr,
        )
        return 1

    # Mid-run freeze/revive of the sharded engine: the revived run must
    # land exactly where the uninterrupted one did.
    interrupted = _make_engine(SMOKE_SHARDS)
    interrupted.run_until(SPLIT_TIME)
    blob, info = checkpoint_bytes(interrupted)
    if info.shards != SMOKE_SHARDS:
        print(
            f"shard-smoke: checkpoint recorded shards={info.shards}, "
            f"expected {SMOKE_SHARDS}",
            file=sys.stderr,
        )
        return 1
    revived = restore_bytes(blob)
    revived_result = revived.run()
    try:
        assert_replay_identical(sharded_result, revived_result)
    except ReplayDivergence as exc:
        print(
            f"shard-smoke: revived K={SMOKE_SHARDS} run diverged from the "
            f"uninterrupted one — {exc}",
            file=sys.stderr,
        )
        return 1

    print(
        f"shard-smoke: K=1 and K={SMOKE_SHARDS} byte-identical over "
        f"{len(dense_lines)} decisions ({len(attributed)} shards "
        f"attributed, {dense_result.faults_injected} faults injected); "
        f"mid-run checkpoint at t={SPLIT_TIME:g} revived identically"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
