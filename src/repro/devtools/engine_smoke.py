"""Engine-throughput smoke (CI gate, DESIGN.md §5.6).

Drives a short chaos-profile DollyMP² simulation — the paper's 30-node
testbed under the fault-smoke churn profile, 5-second slots — through
the batched event loop twice:

1. **current** — batched drains, lazy priorities, vectorized
   doubling-category knapsack and clone fill;
2. **scalar** — the same binary with every escape hatch enabled
   (``REPRO_EAGER_PRIORITIES``, ``REPRO_SCALAR_PRIORITIES``,
   ``REPRO_SCALAR_CLONE_FILL``), i.e. the eager per-event reference
   semantics.

The two runs must agree byte-for-byte (decision journal *and* full
``SimulationResult``) with the sanitizer validating every event — the
batched engine's contract is *faster, not different*.  On top of the
equality check the gate enforces a deliberately conservative events/sec
floor, so an accidental return to quadratic drains fails CI even before
the nightly trajectory notices.

Run:  PYTHONPATH=src python -m repro.devtools.engine_smoke
"""

from __future__ import annotations

import os
import sys
import time

from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.devtools.fault_smoke import SMOKE_PROFILE
from repro.sim.engine import SimulationEngine
from repro.sim.replay import ReplayDivergence, assert_replay_identical
from repro.workload.mapreduce import pagerank_job, wordcount_job

__all__ = ["main", "SCALAR_ENV", "MIN_EVENTS_PER_SEC"]

#: Escape hatches that switch every batched/vectorized path back to the
#: scalar reference (kept in sync with ``benchmarks.engine_bench``).
SCALAR_ENV = (
    "REPRO_EAGER_PRIORITIES",
    "REPRO_SCALAR_PRIORITIES",
    "REPRO_SCALAR_CLONE_FILL",
)

#: Floor for the *current* run, events per wall-clock second.  The
#: 30-node chaos run clears 2000+ ev/s on a developer machine even with
#: the sanitizer on; 300 leaves an order of magnitude of headroom for
#: slow CI runners while still catching a de-batched event loop (which
#: lands well below 100 at 30K servers and shows up here as a constant-
#: factor collapse too).
MIN_EVENTS_PER_SEC = 300.0


def _make_jobs():
    jobs = []
    for i in range(10):
        if i % 2 == 0:
            jobs.append(wordcount_job(4.0, arrival_time=40.0 * i, job_id=i))
        else:
            jobs.append(pagerank_job(1.0, arrival_time=40.0 * i, job_id=i))
    return jobs


def _run_once():
    """One recorded chaos run; returns (result, trace, events, wall_s)."""
    engine = SimulationEngine(
        paper_cluster_30_nodes(),
        DollyMPScheduler(max_clones=2),
        _make_jobs(),
        seed=7,
        schedule_interval=5.0,
        max_time=1e9,
        sanitize=True,
        record_trace=True,
        fault_profile=SMOKE_PROFILE,
    )
    t0 = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - t0
    return result, engine.trace, engine.events_processed, wall


def _run_scalar():
    """The same run with every escape hatch enabled (restored after)."""
    saved = {key: os.environ.get(key) for key in SCALAR_ENV}
    try:
        for key in SCALAR_ENV:
            os.environ[key] = "1"
        return _run_once()
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def main() -> int:
    result, trace, events, wall = _run_once()

    # The gate must not be vacuous: the chaos profile has to fire and
    # the workload has to finish despite it.
    if len(result.records) != len(_make_jobs()):
        print(
            f"engine-smoke: expected {len(_make_jobs())} finished jobs, "
            f"got {len(result.records)}",
            file=sys.stderr,
        )
        return 1
    if result.faults_injected == 0:
        print(
            "engine-smoke: chaos profile injected no faults — the "
            "batched-drain fault ordering goes unexercised",
            file=sys.stderr,
        )
        return 1

    scalar_result, scalar_trace, _, _ = _run_scalar()
    if scalar_trace.decisions != trace.decisions:
        print(
            "engine-smoke: scalar escape-hatch run produced a different "
            "decision trace — batched and scalar paths DIVERGED",
            file=sys.stderr,
        )
        return 1
    try:
        assert_replay_identical(result, scalar_result)
    except ReplayDivergence as exc:
        print(f"engine-smoke: batched vs scalar results diverged — {exc}", file=sys.stderr)
        return 1

    events_per_sec = events / wall if wall > 0 else float("inf")
    if events_per_sec < MIN_EVENTS_PER_SEC:
        print(
            f"engine-smoke: {events_per_sec:.0f} ev/s under the "
            f"{MIN_EVENTS_PER_SEC:.0f} ev/s floor — the event loop has "
            "regressed far beyond machine noise",
            file=sys.stderr,
        )
        return 1

    print(
        f"engine-smoke: {events} events in {wall:.2f}s "
        f"({events_per_sec:.0f} ev/s, floor {MIN_EVENTS_PER_SEC:.0f}); "
        f"{result.faults_injected} faults injected; scalar escape-hatch "
        f"run byte-identical over {len(trace)} decisions"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
