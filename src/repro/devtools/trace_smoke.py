"""Trace-ingestion smoke (CI gate, DESIGN.md §5.9).

Materializes deterministic raw-trace fixtures for all three supported
schemas and proves, per schema, the properties the ingestion pipeline
promises:

1. **Ingestion determinism** — two independent streaming passes over
   the same raw file yield byte-identical spec streams (canonical JSON
   compared), and match an in-memory load of the same specs.
2. **Stream identity** — a simulation fed by a
   :class:`~repro.workload.ingest.source.TraceIngestSource` finishes
   bit-identical to the same engine fed the fully materialized job
   list, without faults and under the ``chaos`` fault profile.
3. **Replay identity** — the decision trace recorded from a
   trace-ingested run replays bit-for-bit against a freshly rebuilt
   cluster + workload.

Fixtures land in ``$REPRO_TRACE_FIXTURES`` when set (CI points this at
an ``actions/cache`` directory keyed on the generator source hash, so
warm runs skip generation) or a temporary directory otherwise.

Run:  PYTHONPATH=src python -m repro.devtools.trace_smoke
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.online import DollyMPScheduler
from repro.faults import named_profile
from repro.resources import Resources
from repro.sim.engine import SimulationEngine
from repro.sim.replay import ReplayDivergence, assert_replay_identical, replay_trace
from repro.sim.runner import run_recorded
from repro.workload.google_trace import jobs_from_specs, spec_to_dict
from repro.workload.ingest import (
    TraceIngestSource,
    materialize,
    normalize_stream,
    open_reader,
)

__all__ = ["main", "FIXTURE_ROWS", "SMOKE_JOBS"]

#: Rows per materialized fixture and jobs simulated per schema — sized
#: for a sub-minute gate that still interleaves arrivals with service.
FIXTURE_ROWS = 500
SMOKE_JOBS = 30
SEED = 31


def _mk_engine(jobs_or_source, fault_profile=None):
    return SimulationEngine(
        homogeneous_cluster(16, Resources.of(16, 32)),
        DollyMPScheduler(max_clones=2),
        jobs_or_source,
        seed=SEED,
        schedule_interval=5.0,
        fault_profile=fault_profile,
    )

def _stream(path, schema):
    return normalize_stream(open_reader(path, schema), max_jobs=SMOKE_JOBS)


def _check_schema(schema: str, path: Path) -> str | None:
    """Run all three property checks; return an error string on failure."""
    specs = list(_stream(path, schema))
    if not specs:
        return f"{schema}: ingestion produced no jobs"

    # 1 — streaming determinism, byte-compared via canonical JSON.
    first = json.dumps([spec_to_dict(s) for s in specs], sort_keys=True)
    second = json.dumps(
        [spec_to_dict(s) for s in _stream(path, schema)], sort_keys=True
    )
    if first != second:
        return f"{schema}: two ingestion passes differ byte-wise"

    # 2 — streamed source vs in-memory workload, no faults + chaos.
    reference = _mk_engine(jobs_from_specs(specs)).run().deterministic()
    streamed = (
        _mk_engine(TraceIngestSource(_stream(path, schema)))
        .run()
        .deterministic()
    )
    if streamed != reference:
        return (
            f"{schema}: TraceIngestSource run DIVERGED from in-memory run "
            f"({streamed.num_jobs} vs {reference.num_jobs} jobs)"
        )
    profile = named_profile("chaos")
    ref_faulty = (
        _mk_engine(jobs_from_specs(specs), profile).run().deterministic()
    )
    streamed_faulty = (
        _mk_engine(TraceIngestSource(_stream(path, schema)), profile)
        .run()
        .deterministic()
    )
    if streamed_faulty != ref_faulty:
        return f"{schema}: fault-profile streamed run DIVERGED from in-memory run"

    # 3 — decision-trace replay identity of a trace-ingested run.
    recorded, trace = run_recorded(
        homogeneous_cluster(16, Resources.of(16, 32)),
        DollyMPScheduler(max_clones=2),
        TraceIngestSource(_stream(path, schema)),
        seed=SEED,
        schedule_interval=5.0,
    )
    try:
        replayed = replay_trace(
            trace,
            homogeneous_cluster(16, Resources.of(16, 32)),
            jobs_from_specs(specs),
        )
        assert_replay_identical(recorded, replayed)
    except ReplayDivergence as exc:
        return f"{schema}: replay DIVERGED — {exc}"
    return None


def main() -> int:
    fixture_dir = os.environ.get("REPRO_TRACE_FIXTURES")
    if fixture_dir:
        Path(fixture_dir).mkdir(parents=True, exist_ok=True)
        paths = materialize(fixture_dir, rows=FIXTURE_ROWS, seed=0)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory()
        paths = materialize(cleanup.name, rows=FIXTURE_ROWS, seed=0)
    try:
        checked = []
        for schema, path in paths.items():
            error = _check_schema(schema, path)
            if error is not None:
                print(f"trace-smoke: {error}", file=sys.stderr)
                return 1
            checked.append(schema)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    print(
        f"trace-smoke: {', '.join(checked)} — streaming ingestion "
        f"deterministic; TraceIngestSource runs bit-identical to in-memory "
        f"(plain + chaos faults); decision-trace replay identical "
        f"({FIXTURE_ROWS} fixture rows, {SMOKE_JOBS} jobs per schema)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
