"""Runtime sanitizer for the simulation engine.

The vectorized placement engine is only trustworthy while a set of
bookkeeping invariants hold (DESIGN.md §5.2).  The static linter
(``tools/repro_lint``) keeps the *code* from violating them; this module
checks the *running state*: with sanitization enabled
(``REPRO_SANITIZE=1`` or ``SimulationEngine(..., sanitize=True)``), the
engine re-derives every invariant from first principles after each
event and raises :class:`SanitizerError` on the first divergence.

Invariants checked (paper references in parentheses):

* **capacity-conservation** — per server, ``allocated + available ==
  capacity`` within ``EPS`` in both dimensions (the capacity model of
  Sec. 3 / Eq. 5), and the allocation equals the sum of the demands of
  the copies actually running there;
* **mirror-coherence** — the SoA availability mirror holds bit-for-bit
  the same floats as the ``Server`` objects it mirrors;
* **clone-bound** — no task holds more than ``1 + max_extra_clones``
  live copies (the Sec. 5 cap behind Thm. 2's speedup bound), and each
  task's cached live-copy counter matches its copy list;
* **negative-availability** — no availability or allocation entry is
  below ``-EPS`` anywhere;
* **time-monotonicity** — simulated time never moves backwards;
* **failed-server** — a crashed server (fault injection, DESIGN.md
  §5.5) hosts nothing: zero allocation, zero advertised availability,
  no resident copies, and the mirror's ``up`` flag agrees;
* **requeue-coherence** — a PENDING task has zero live copies and each
  phase's cached pending count matches its task states (fault requeues
  must keep both in sync);
* **clone-budget** — the engine's incremental ``clone_occupancy`` (the
  δ-budget numerator of Sec. 5) equals the sum of live clone demands
  re-derived from the cluster, and is exactly zero when no clone is
  live.

The sanitizer is O(servers + running copies) per event, so it roughly
doubles simulation cost — keep it off for benchmarks and sweeps, on for
tests and new-scheduler bring-up.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.resources import EPS
from repro.workload.task import TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimulationEngine

__all__ = [
    "InvariantKind",
    "SanitizerError",
    "SanitizerViolation",
    "SimulationSanitizer",
    "sanitize_default",
]


def sanitize_default() -> bool:
    """True when the ``REPRO_SANITIZE`` env toggle is on."""
    flag = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    return flag not in ("", "0", "false", "no")


class InvariantKind(enum.Enum):
    """The violation classes a sanitizer report can name."""

    CAPACITY_CONSERVATION = "capacity-conservation"
    MIRROR_COHERENCE = "mirror-coherence"
    CLONE_BOUND = "clone-bound"
    NEGATIVE_AVAILABILITY = "negative-availability"
    TIME_MONOTONICITY = "time-monotonicity"
    FAILED_SERVER = "failed-server"
    REQUEUE_COHERENCE = "requeue-coherence"
    CLONE_BUDGET = "clone-budget"


@dataclass(frozen=True)
class SanitizerViolation:
    """One invariant breach, tied to the event and entity that exposed it."""

    kind: InvariantKind
    message: str
    event: str
    server_id: int | None = None
    job_id: int | None = None
    task_uid: tuple[int, int, int] | None = None

    def __str__(self) -> str:
        where = []
        if self.server_id is not None:
            where.append(f"server={self.server_id}")
        if self.job_id is not None:
            where.append(f"job={self.job_id}")
        if self.task_uid is not None:
            where.append(f"task={self.task_uid}")
        loc = f" [{', '.join(where)}]" if where else ""
        return f"{self.kind.value}{loc} after {self.event}: {self.message}"


class SanitizerError(AssertionError):
    """Raised on the first event whose post-state breaks an invariant."""

    def __init__(self, violations: list[SanitizerViolation]) -> None:
        self.violations = violations
        lines = "\n".join(f"  - {v}" for v in violations)
        super().__init__(
            f"simulation sanitizer: {len(violations)} invariant "
            f"violation(s):\n{lines}"
        )


class SimulationSanitizer:
    """Re-derives the engine's invariants from scratch after each event.

    ``max_copies`` bounds *live* copies per task (original + clones).
    When not given it is inferred from the scheduler's
    ``CloningPolicy`` (``scheduler.policy.max_copies``) or the engine's
    ``max_copies_per_task``; with neither available the clone-cap check
    is skipped (the copy-list coherence check still runs).
    """

    def __init__(
        self, engine: "SimulationEngine", *, max_copies: int | None = None
    ) -> None:
        self.engine = engine
        if max_copies is None:
            policy = getattr(engine.scheduler, "policy", None)
            max_copies = getattr(policy, "max_copies", None)
        if max_copies is None:
            max_copies = engine.max_copies_per_task
        self.max_copies = max_copies
        self._last_time = -float("inf")

    # ------------------------------------------------------------------
    def check(self, event: str = "<manual check>") -> list[SanitizerViolation]:
        """All current invariant violations (empty when the state is clean)."""
        out: list[SanitizerViolation] = []
        out.extend(self._check_time(event))
        out.extend(self._check_servers(event))
        out.extend(self._check_mirror(event))
        out.extend(self._check_clone_bounds(event))
        out.extend(self._check_clone_budget(event))
        return out

    def after_event(self, event: str) -> None:
        """Engine hook: validate the post-event state, raise on breakage."""
        violations = self.check(event)
        if violations:
            raise SanitizerError(violations)

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------
    def _check_time(self, event: str) -> list[SanitizerViolation]:
        now = self.engine.now
        out: list[SanitizerViolation] = []
        if now < self._last_time:
            out.append(
                SanitizerViolation(
                    InvariantKind.TIME_MONOTONICITY,
                    f"now={now:g} moved backwards from {self._last_time:g}",
                    event,
                )
            )
        self._last_time = max(self._last_time, now)
        return out

    def _check_servers(self, event: str) -> list[SanitizerViolation]:
        out: list[SanitizerViolation] = []
        for server in self.engine.cluster:
            cap, alloc, avail = server.capacity, server.allocated, server.available
            if not server.up:
                # A crashed server hosts nothing: the Fail applier killed
                # every resident first (snapping allocation to exactly
                # zero) and mark_down zeroed the advertised availability.
                problems = []
                if server.running_copies:
                    problems.append(f"{len(server.running_copies)} resident copies")
                if alloc.cpu != 0.0 or alloc.mem != 0.0:
                    problems.append(f"allocated={alloc!r}")
                if avail.cpu != 0.0 or avail.mem != 0.0:
                    problems.append(f"available={avail!r}")
                if problems:
                    out.append(
                        SanitizerViolation(
                            InvariantKind.FAILED_SERVER,
                            "down server still holds " + ", ".join(problems),
                            event,
                            server_id=server.server_id,
                        )
                    )
                continue
            for dim in ("cpu", "mem"):
                a = getattr(alloc, dim)
                v = getattr(avail, dim)
                c = getattr(cap, dim)
                if v < -EPS or a < -EPS:
                    out.append(
                        SanitizerViolation(
                            InvariantKind.NEGATIVE_AVAILABILITY,
                            f"{dim}: available={v:g}, allocated={a:g}",
                            event,
                            server_id=server.server_id,
                        )
                    )
                if abs(a + v - c) > EPS:
                    out.append(
                        SanitizerViolation(
                            InvariantKind.CAPACITY_CONSERVATION,
                            f"{dim}: allocated {a:g} + available {v:g} != "
                            f"capacity {c:g}",
                            event,
                            server_id=server.server_id,
                        )
                    )
            # Allocation must equal the sum of running-copy demands.  The
            # engine adds/clamps incrementally, so allow one EPS of
            # accumulated round-off per resident copy.
            copies = sorted(server.running_copies, key=lambda c: c.copy_uid)
            tol = EPS * (len(copies) + 1)
            sum_cpu = 0.0
            sum_mem = 0.0
            for copy in copies:
                if not copy.live:
                    out.append(
                        SanitizerViolation(
                            InvariantKind.CAPACITY_CONSERVATION,
                            f"dead copy {copy.copy_uid} still resident",
                            event,
                            server_id=server.server_id,
                            task_uid=copy.task.uid,
                        )
                    )
                sum_cpu += copy.task.demand.cpu
                sum_mem += copy.task.demand.mem
            if abs(sum_cpu - alloc.cpu) > tol or abs(sum_mem - alloc.mem) > tol:
                out.append(
                    SanitizerViolation(
                        InvariantKind.CAPACITY_CONSERVATION,
                        f"allocated {alloc!r} != sum of {len(copies)} running "
                        f"copies ({sum_cpu:g}, {sum_mem:g})",
                        event,
                        server_id=server.server_id,
                    )
                )
        return out

    def _check_mirror(self, event: str) -> list[SanitizerViolation]:
        out: list[SanitizerViolation] = []
        mirror = self.engine.cluster.mirror
        for server in self.engine.cluster:
            i = server.server_id
            # Bitwise equality on purpose: the mirror stores exactly the
            # Server floats, and the vectorized/scalar equivalence proof
            # depends on them never differing by even one ulp.
            pairs = (
                ("avail_cpu", mirror.avail_cpu[i], server.available.cpu),
                ("avail_mem", mirror.avail_mem[i], server.available.mem),
                ("alloc_cpu", mirror.alloc_cpu[i], server.allocated.cpu),
                ("alloc_mem", mirror.alloc_mem[i], server.allocated.mem),
                ("cap_cpu", mirror.cap_cpu[i], server.capacity.cpu),
                ("cap_mem", mirror.cap_mem[i], server.capacity.mem),
                ("up", bool(mirror.up[i]), server.up),
            )
            for name, mirrored, truth in pairs:
                if mirrored != truth:
                    out.append(
                        SanitizerViolation(
                            InvariantKind.MIRROR_COHERENCE,
                            f"mirror.{name}[{i}]={float(mirrored):g} != "
                            f"server value {truth:g}",
                            event,
                            server_id=server.server_id,
                        )
                    )
        return out

    def _check_clone_bounds(self, event: str) -> list[SanitizerViolation]:
        out: list[SanitizerViolation] = []
        lifetime_cap = self.engine.max_copies_per_task
        # Every live copy must still hold its reservation — a live copy
        # missing from its server means it was released early (or twice)
        # while the engine still expects it to finish.
        resident = {
            (s.server_id, c.copy_uid)
            for s in self.engine.cluster
            for c in s.running_copies
        }
        for job_id in sorted(self.engine.active_jobs):
            job = self.engine.active_jobs[job_id]
            for phase in job.phases:
                pending = sum(
                    1 for t in phase.tasks if t.state is TaskState.PENDING
                )
                if pending != phase.num_pending:
                    out.append(
                        SanitizerViolation(
                            InvariantKind.REQUEUE_COHERENCE,
                            f"phase {phase.index}: cached pending count "
                            f"{phase.num_pending} != actual {pending}",
                            event,
                            job_id=job_id,
                        )
                    )
                for task in phase.tasks:
                    live = 0
                    for copy in task.copies:
                        if not copy.live:
                            continue
                        live += 1
                        if (copy.server_id, copy.copy_uid) not in resident:
                            out.append(
                                SanitizerViolation(
                                    InvariantKind.CAPACITY_CONSERVATION,
                                    f"live copy {copy.copy_uid} is not "
                                    f"resident on server {copy.server_id} — "
                                    "released early or twice",
                                    event,
                                    server_id=copy.server_id,
                                    job_id=job_id,
                                    task_uid=task.uid,
                                )
                            )
                    if task.state is TaskState.PENDING and live:
                        out.append(
                            SanitizerViolation(
                                InvariantKind.REQUEUE_COHERENCE,
                                f"PENDING task holds {live} live copies",
                                event,
                                job_id=job_id,
                                task_uid=task.uid,
                            )
                        )
                    if live != task.num_live_copies:
                        out.append(
                            SanitizerViolation(
                                InvariantKind.CLONE_BOUND,
                                f"cached live-copy count "
                                f"{task.num_live_copies} != actual {live}",
                                event,
                                job_id=job_id,
                                task_uid=task.uid,
                            )
                        )
                    if self.max_copies is not None and live > self.max_copies:
                        out.append(
                            SanitizerViolation(
                                InvariantKind.CLONE_BOUND,
                                f"{live} live copies exceed the cap of "
                                f"{self.max_copies} (1 original + "
                                f"{self.max_copies - 1} extra clones)",
                                event,
                                job_id=job_id,
                                task_uid=task.uid,
                            )
                        )
                    # Fault-killed copies don't count against the
                    # lifetime cap (they never competed for the task).
                    if (
                        lifetime_cap is not None
                        and len(task.copies) - task.fault_losses > lifetime_cap
                    ):
                        out.append(
                            SanitizerViolation(
                                InvariantKind.CLONE_BOUND,
                                f"{len(task.copies)} total copies "
                                f"({task.fault_losses} fault losses) exceed "
                                f"max_copies_per_task={lifetime_cap}",
                                event,
                                job_id=job_id,
                                task_uid=task.uid,
                            )
                        )
        return out

    def _check_clone_budget(self, event: str) -> list[SanitizerViolation]:
        """The incremental clone occupancy must match a from-scratch
        rescan of live clone copies — the δ-budget accounting of
        ``CloningPolicy.budget_remaining`` reads it every pass, so any
        leak here silently starves (or overruns) cloning."""
        out: list[SanitizerViolation] = []
        engine = self.engine
        occ = engine.clone_occupancy
        sum_cpu = 0.0
        sum_mem = 0.0
        live_clones = 0
        for server in engine.cluster:
            for copy in server.running_copies:
                if copy.is_clone and copy.live:
                    live_clones += 1
                    sum_cpu += copy.task.demand.cpu
                    sum_mem += copy.task.demand.mem
        if occ.cpu < 0.0 or occ.mem < 0.0:
            out.append(
                SanitizerViolation(
                    InvariantKind.CLONE_BUDGET,
                    f"clone occupancy went negative: {occ!r}",
                    event,
                )
            )
        if live_clones == 0:
            # The release path snaps to exactly zero with the last live
            # clone — bitwise, not within-EPS, by design.
            if occ.cpu != 0.0 or occ.mem != 0.0:
                out.append(
                    SanitizerViolation(
                        InvariantKind.CLONE_BUDGET,
                        f"no live clones but clone occupancy is {occ!r}",
                        event,
                    )
                )
            return out
        tol = EPS * (engine.clones_launched + 1)
        if abs(occ.cpu - sum_cpu) > tol or abs(occ.mem - sum_mem) > tol:
            out.append(
                SanitizerViolation(
                    InvariantKind.CLONE_BUDGET,
                    f"clone occupancy {occ!r} != sum of {live_clones} live "
                    f"clone demands ({sum_cpu:g}, {sum_mem:g})",
                    event,
                )
            )
        return out
