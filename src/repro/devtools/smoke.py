"""Sanitizer-enabled smoke simulation (CI gate).

Runs a small but representative DollyMP² workload — the paper's 30-node
heterogeneous cluster, mixed WordCount/PageRank jobs, cloning enabled —
with the runtime sanitizer validating every event, and exits non-zero if
any invariant breaks or the run diverges from expectations.

Run:  REPRO_SANITIZE=1 PYTHONPATH=src python -m repro.devtools.smoke
(the module forces sanitization on regardless of the environment).

With ``REPRO_SMOKE_ARTIFACTS=<dir>`` the run also collects observability
and writes ``smoke_metrics.json`` / ``smoke_metrics.prom`` /
``smoke_spans.jsonl`` there — CI uploads the directory as a workflow
artifact.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.observability import Observability
from repro.sim.runner import run_simulation
from repro.workload.mapreduce import pagerank_job, wordcount_job

__all__ = ["main", "ARTIFACTS_ENV"]

#: Directory to drop smoke observability artifacts into (CI uploads it).
ARTIFACTS_ENV = "REPRO_SMOKE_ARTIFACTS"


def main() -> int:
    cluster = paper_cluster_30_nodes()
    jobs = []
    for i in range(8):
        if i % 2 == 0:
            jobs.append(wordcount_job(4.0, arrival_time=45.0 * i, job_id=i))
        else:
            jobs.append(pagerank_job(1.0, arrival_time=45.0 * i, job_id=i))
    scheduler = DollyMPScheduler(max_clones=2)
    artifacts = os.environ.get(ARTIFACTS_ENV, "").strip()
    obs = Observability() if artifacts else None
    if obs is not None:
        obs.record_workload(jobs)
    result = run_simulation(
        cluster, scheduler, jobs, seed=7, sanitize=True, observability=obs
    )
    if obs is not None:
        out = Path(artifacts)
        out.mkdir(parents=True, exist_ok=True)
        obs.dump_metrics(out / "smoke_metrics.json")
        obs.dump_metrics(out / "smoke_metrics.prom")
        obs.dump_spans(out / "smoke_spans.jsonl")
        print(f"smoke: observability artifacts -> {out}")
    if len(result.records) != len(jobs):
        print(
            f"smoke: expected {len(jobs)} finished jobs, got "
            f"{len(result.records)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"smoke: {len(result.records)} jobs finished cleanly under the "
        f"sanitizer ({result.clones_launched} clones launched, "
        f"total flowtime {result.total_flowtime:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
