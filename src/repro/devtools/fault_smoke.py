"""Fault-injection smoke (CI gate, DESIGN.md §5.5).

Runs a churn-heavy DollyMP² simulation — the paper's 30-node
heterogeneous cluster, mixed WordCount/PageRank jobs, an aggressive
server-churn + copy-failure profile — with the runtime sanitizer
validating every event, then proves the three properties the fault
subsystem promises:

1. **Activity** — the profile actually fired (servers failed, copies
   were lost) and the workload still ran to completion;
2. **Capacity conservation** — after the run, every up server exposes
   exactly its capacity and every down server exposes exactly zero;
3. **Determinism** — the recorded trace (JSONL round-tripped) replays
   bit-identically with observability attached, and a second same-seed
   run reproduces the first byte-for-byte.

Run:  PYTHONPATH=src python -m repro.devtools.fault_smoke
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.faults import FaultProfile
from repro.observability import Observability
from repro.resources import Resources
from repro.sim.actions import DecisionTrace
from repro.sim.replay import ReplayDivergence, assert_replay_identical, replay_trace
from repro.sim.runner import run_recorded
from repro.workload.mapreduce import pagerank_job, wordcount_job

__all__ = ["main", "SMOKE_PROFILE"]

#: Aggressive-but-survivable churn: a failure somewhere every ~3 simulated
#: minutes, quick repairs, a light per-copy failure hazard on top.
SMOKE_PROFILE = FaultProfile(
    mtbf=180.0,
    mttr=25.0,
    copy_fail_rate=1.0 / 900.0,
    slowdown_rate=1.0 / 600.0,
)


def _make_jobs():
    jobs = []
    for i in range(8):
        if i % 2 == 0:
            jobs.append(wordcount_job(4.0, arrival_time=45.0 * i, job_id=i))
        else:
            jobs.append(pagerank_job(1.0, arrival_time=45.0 * i, job_id=i))
    return jobs


def _run(observability=None):
    return run_recorded(
        paper_cluster_30_nodes(),
        DollyMPScheduler(max_clones=2),
        _make_jobs(),
        seed=7,
        sanitize=True,
        observability=observability,
        fault_profile=SMOKE_PROFILE,
    )


def _check_capacity(cluster) -> str | None:
    """Post-run conservation: up ⇒ available == capacity (bitwise),
    down ⇒ available == 0 (bitwise).  Returns an error string or None."""
    for server in cluster:
        if server.up:
            # Exact comparison on purpose: a drained server must return
            # to its capacity bit-for-bit.
            if server.available != server.capacity:
                return (
                    f"up server {server.server_id} leaked capacity: "
                    f"available {server.available} != capacity {server.capacity}"
                )
        elif server.available != Resources(0.0, 0.0):
            return (
                f"down server {server.server_id} exposes capacity: "
                f"available {server.available} != 0"
            )
    return None


def main() -> int:
    cluster = paper_cluster_30_nodes()
    result, trace = run_recorded(
        cluster,
        DollyMPScheduler(max_clones=2),
        _make_jobs(),
        seed=7,
        sanitize=True,
        fault_profile=SMOKE_PROFILE,
    )
    jobs_expected = len(_make_jobs())
    if len(result.records) != jobs_expected:
        print(
            f"fault-smoke: expected {jobs_expected} finished jobs, got "
            f"{len(result.records)}",
            file=sys.stderr,
        )
        return 1
    if result.faults_injected == 0 or result.copies_lost == 0:
        print(
            "fault-smoke: profile injected no faults "
            f"(faults_injected={result.faults_injected}, "
            f"copies_lost={result.copies_lost}) — the gate is vacuous",
            file=sys.stderr,
        )
        return 1
    err = _check_capacity(cluster)
    if err is not None:
        print(f"fault-smoke: {err}", file=sys.stderr)
        return 1

    # Determinism leg 1: JSONL round-trip + replay with observability.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fault_decisions.jsonl"
        trace.dump_jsonl(path)
        loaded = DecisionTrace.load_jsonl(path)
    if loaded.decisions != trace.decisions:
        print("fault-smoke: JSONL round-trip mutated the trace", file=sys.stderr)
        return 1
    try:
        replayed = replay_trace(
            loaded,
            paper_cluster_30_nodes(),
            _make_jobs(),
            sanitize=True,
            observability=Observability(),
        )
        assert_replay_identical(result, replayed)
    except ReplayDivergence as exc:
        print(f"fault-smoke: replay DIVERGED — {exc}", file=sys.stderr)
        return 1

    # Determinism leg 2: a second same-seed run is byte-identical.
    rerun, retrace = _run()
    if retrace.decisions != trace.decisions:
        print(
            "fault-smoke: same-seed rerun produced a different decision trace",
            file=sys.stderr,
        )
        return 1
    try:
        assert_replay_identical(result, rerun)
    except ReplayDivergence as exc:
        print(f"fault-smoke: same-seed rerun diverged — {exc}", file=sys.stderr)
        return 1

    print(
        f"fault-smoke: {result.faults_injected} faults "
        f"({result.copies_lost} copies lost, "
        f"{result.recoveries_masked_by_clone} masked by clones, "
        f"{result.tasks_requeued} tasks requeued) over "
        f"{len(result.records)} jobs; capacity conserved, "
        f"{len(trace)} decisions replayed bit-identically"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
