"""Developer tooling that ships with the library (opt-in at runtime).

* :mod:`repro.devtools.sanitizer` — the simulation sanitizer: after
  every event it re-derives the scheduler's correctness invariants from
  first principles and fails loudly on the first divergence.
* :mod:`repro.devtools.smoke` — a small deterministic DollyMP run used
  by CI as the sanitizer-enabled smoke test
  (``python -m repro.devtools.smoke``).
* :mod:`repro.devtools.replay_smoke` — the replay-determinism smoke:
  records a DollyMP run's decision trace, JSONL round-trips it, replays
  it against a fresh cluster and diffs the results bit-for-bit
  (``python -m repro.devtools.replay_smoke``).

The static half of the tooling lives outside the package in
``tools/repro_lint`` so that importing ``repro`` never pulls it in.
"""

from repro.devtools.sanitizer import (
    InvariantKind,
    SanitizerError,
    SanitizerViolation,
    SimulationSanitizer,
)

__all__ = [
    "InvariantKind",
    "SanitizerError",
    "SanitizerViolation",
    "SimulationSanitizer",
]
