"""Replay-determinism smoke (CI gate, DESIGN.md §5.3).

Records a representative DollyMP² simulation — the paper's 30-node
heterogeneous cluster, mixed WordCount/PageRank jobs, cloning enabled —
with the runtime sanitizer on, round-trips the decision trace through
its JSONL serialization, replays it against a freshly built cluster and
workload, and diffs the two :class:`SimulationResult`\\ s bit-for-bit.
Any divergence (a hidden-state dependence, a serialization lossiness, a
decision-point misalignment) exits non-zero with the first differing
quantity named.

Run:  PYTHONPATH=src python -m repro.devtools.replay_smoke

The replay leg runs with observability attached (metrics + spans), so
this gate also proves observability never steers the simulation.  With
``REPRO_SMOKE_ARTIFACTS=<dir>`` the decision trace and the replay's
metrics snapshot are written there for CI to upload.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
from pathlib import Path

from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.devtools.smoke import ARTIFACTS_ENV
from repro.observability import Observability
from repro.sim.actions import DecisionTrace
from repro.sim.replay import ReplayDivergence, assert_replay_identical, replay_trace
from repro.sim.runner import run_recorded
from repro.workload.mapreduce import pagerank_job, wordcount_job

__all__ = ["main"]


def _make_jobs():
    jobs = []
    for i in range(8):
        if i % 2 == 0:
            jobs.append(wordcount_job(4.0, arrival_time=45.0 * i, job_id=i))
        else:
            jobs.append(pagerank_job(1.0, arrival_time=45.0 * i, job_id=i))
    return jobs


def main() -> int:
    result, trace = run_recorded(
        paper_cluster_30_nodes(),
        DollyMPScheduler(max_clones=2),
        _make_jobs(),
        seed=7,
        sanitize=True,
    )
    artifacts = os.environ.get(ARTIFACTS_ENV, "").strip()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "decisions.jsonl"
        trace.dump_jsonl(path)
        loaded = DecisionTrace.load_jsonl(path)
        if artifacts:
            out = Path(artifacts)
            out.mkdir(parents=True, exist_ok=True)
            shutil.copy(path, out / "replay_decisions.jsonl")
    if loaded.decisions != trace.decisions:
        print("replay-smoke: JSONL round-trip mutated the trace", file=sys.stderr)
        return 1
    obs = Observability()
    try:
        replayed = replay_trace(
            loaded,
            paper_cluster_30_nodes(),
            _make_jobs(),
            sanitize=True,
            observability=obs,
        )
        assert_replay_identical(result, replayed)
    except ReplayDivergence as exc:
        print(f"replay-smoke: DIVERGED — {exc}", file=sys.stderr)
        return 1
    if artifacts:
        out = Path(artifacts)
        obs.dump_metrics(out / "replay_metrics.json")
        print(f"replay-smoke: observability artifacts -> {out}")
    print(
        f"replay-smoke: {len(trace)} decisions over {len(result.records)} jobs "
        f"({result.clones_launched} clones) replayed bit-identically"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
