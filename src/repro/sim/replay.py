"""Deterministic replay of a recorded decision trace.

A :class:`~repro.sim.actions.DecisionTrace` recorded by the engine is a
complete account of every scheduler-originated mutation: which task was
launched (or which copy killed), where, at which decision point, and
why that point opened.  Replaying the trace against a *fresh* cluster
and workload with the same duration RNG therefore reconstructs the
entire simulation — every engine-internal consequence (copy finishes,
first-copy-wins kills, job completions) re-derives itself from the same
events — and must end in a bit-identical
:class:`~repro.sim.metrics.SimulationResult`.

That equality is the **replay determinism oracle**: it complements the
runtime sanitizer (§5.2), which checks *state invariants* within one
run, by checking *decision sufficiency* across runs — if the engine ever
consulted hidden state (wall clock, hash order, leftover RNG coupling)
the replayed run would diverge and :func:`assert_replay_identical`
would name the first differing job.

:class:`ReplayScheduler` is a drop-in policy that emits the recorded
actions instead of deciding: it counts scheduler entry points exactly
as the recording engine did (arrival / task-finish / job-finish hooks
and schedule passes) and applies the decisions journaled at each
ordinal.  Alignment is by ordinal, not timestamp, so several passes at
one simulated time replay unambiguously.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.faults import FaultProfile
from repro.schedulers.base import Scheduler
from repro.sim.actions import Decision, DecisionTrace, Kill, Launch
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import SimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.sim.engine import ClusterView
    from repro.workload.job import Job

__all__ = [
    "ReplayScheduler",
    "ReplayDivergence",
    "replay_trace",
    "assert_replay_identical",
]


class ReplayDivergence(RuntimeError):
    """A replayed run did not reproduce the recorded one."""


class ReplayScheduler(Scheduler):
    """Re-emits a recorded decision sequence instead of deciding.

    The engine invokes policy entry points in a deterministic order; the
    recording engine numbered them (``Decision.point``) and this
    scheduler counts them identically, applying every decision recorded
    at the current ordinal.  Any misalignment — a decision whose point
    has already passed, or an unresolvable task/copy reference — raises
    :class:`ReplayDivergence` at the exact first divergent step rather
    than letting the runs drift apart silently.
    """

    def __init__(self, decisions: Iterable[Decision], *, name: str | None = None) -> None:
        # Fault decisions (kind "fail"/"recover") are journaled for the
        # audit trail but filtered here: the replay engine re-injects
        # them through its own reconstructed FaultInjector (same
        # churn_seed ⇒ same realization), so re-applying them from the
        # trace would fail/recover each server twice.  The entry-point
        # ordinals still line up because the fault hooks below advance
        # the point counter exactly as the recording engine did.
        self._decisions: list[Decision] = sorted(
            (d for d in decisions if d.kind in ("launch", "kill")),
            key=lambda d: d.seq,
        )
        self._cursor = 0
        self._point = 0
        if name is not None:
            self.name = name
        elif self._decisions:
            self.name = self._decisions[0].policy
        else:
            self.name = "replay"

    # -- entry points: each advances the ordinal and drains its decisions
    def on_job_arrival(self, job, view: "ClusterView") -> None:
        self._advance(view)

    def on_task_finish(self, task, view: "ClusterView") -> None:
        self._advance(view)

    def on_job_finish(self, job, view: "ClusterView") -> None:
        self._advance(view)

    def schedule(self, view: "ClusterView") -> None:
        self._advance(view)

    def on_server_fail(self, server, orphans, view: "ClusterView") -> None:
        self._advance(view)

    def on_server_recover(self, server, view: "ClusterView") -> None:
        self._advance(view)

    def on_copy_failure(self, copy, view: "ClusterView") -> None:
        self._advance(view)

    # ------------------------------------------------------------------
    def _advance(self, view: "ClusterView") -> None:
        self._point += 1
        while self._cursor < len(self._decisions):
            d = self._decisions[self._cursor]
            if d.point > self._point:
                break
            if d.point < self._point:
                raise ReplayDivergence(
                    f"decision #{d.seq} belongs to decision point {d.point} "
                    f"but the replay already reached point {self._point} — "
                    "the engine's entry-point sequence diverged from the recording"
                )
            view.apply(self._resolve(d, view))
            self._cursor += 1

    def _resolve(self, d: Decision, view: "ClusterView") -> Launch | Kill:
        """Re-bind a decision's structural references to live objects."""
        job = next((j for j in view.active_jobs if j.job_id == d.job_id), None)
        if job is None:
            raise ReplayDivergence(
                f"decision #{d.seq}: job {d.job_id} is not active at "
                f"t={view.time:g} in the replay"
            )
        try:
            task = job.phases[d.phase_index].tasks[d.task_index]
        except IndexError:
            raise ReplayDivergence(
                f"decision #{d.seq}: task {d.task_uid} does not exist in "
                "the replayed workload"
            ) from None
        if d.kind == "launch":
            return Launch(task, view.cluster[d.server_id], clone=d.clone)
        if d.kind == "kill":
            assert d.copy_index is not None
            if d.copy_index >= len(task.copies):
                raise ReplayDivergence(
                    f"decision #{d.seq}: task {d.task_uid} has only "
                    f"{len(task.copies)} copies, cannot kill #{d.copy_index}"
                )
            return Kill(task.copies[d.copy_index])
        raise ReplayDivergence(f"decision #{d.seq}: unknown kind {d.kind!r}")

    def assert_exhausted(self) -> None:
        """Every recorded decision must have been re-applied."""
        if self._cursor != len(self._decisions):
            d = self._decisions[self._cursor]
            raise ReplayDivergence(
                f"replay ended with {len(self._decisions) - self._cursor} "
                f"decisions unapplied (first: #{d.seq} {d.kind} of task "
                f"{d.task_uid} at point {d.point})"
            )


def replay_trace(
    trace: DecisionTrace | Sequence[Decision],
    cluster: "Cluster",
    jobs: Iterable["Job"],
    *,
    seed: int | None = None,
    schedule_interval: float | None = None,
    max_time: float = math.inf,
    sanitize: bool | None = None,
    observability=None,
    fault_profile: FaultProfile | None = None,
    churn_seed: int | None = None,
) -> SimulationResult:
    """Re-execute a recorded trace against a fresh cluster + workload.

    ``seed`` and ``schedule_interval`` default to the values stored in
    the trace's ``meta`` (present when recorded via
    :func:`repro.sim.runner.run_recorded`); they must match the
    recording run for the duration RNG and slot grid to line up.
    Likewise ``fault_profile``/``churn_seed`` default to the recording's
    ``meta["faults"]`` — the replay engine reconstructs the same
    injector and re-derives the identical failure realization, so
    recorded ``Fail``/``Recover`` decisions are verified, not re-applied.
    ``observability`` attaches a per-run metrics/span/profiler bundle —
    the replayed run's sim-derived metrics must equal the recording's.
    """
    meta = trace.meta if isinstance(trace, DecisionTrace) else {}
    if seed is None:
        if "seed" not in meta:
            raise ValueError("seed not given and absent from trace meta")
        seed = int(meta["seed"])
    if schedule_interval is None:
        schedule_interval = float(meta.get("schedule_interval", 0.0))
    faults_meta = meta.get("faults")
    if faults_meta:
        if fault_profile is None:
            fault_profile = FaultProfile.from_meta(faults_meta["profile"])
        if churn_seed is None and faults_meta.get("churn_seed") is not None:
            churn_seed = int(faults_meta["churn_seed"])
    scheduler = ReplayScheduler(trace, name=meta.get("policy"))
    engine = SimulationEngine(
        cluster,
        scheduler,
        jobs,
        seed=seed,
        schedule_interval=schedule_interval,
        max_time=max_time,
        sanitize=sanitize,
        observability=observability,
        fault_profile=fault_profile,
        churn_seed=churn_seed,
    )
    result = engine.run()
    scheduler.assert_exhausted()
    return result


def assert_replay_identical(
    recorded: SimulationResult, replayed: SimulationResult
) -> None:
    """Raise :class:`ReplayDivergence` unless the two results are
    bit-for-bit identical in every simulated quantity.

    Per-job records (flow times, running times, copy/clone counts,
    resource-seconds) are compared with exact float equality — the
    oracle's whole point — and so are the aggregate counters.  Wall-clock
    measurements (``schedule_pass_seconds``) are excluded: they measure
    the host, not the simulation.
    """
    if len(recorded.records) != len(replayed.records):
        raise ReplayDivergence(
            f"job count differs: recorded {len(recorded.records)}, "
            f"replayed {len(replayed.records)}"
        )
    for a, b in zip(recorded.records, replayed.records):
        if a != b:
            raise ReplayDivergence(
                f"job {a.job_id} diverged:\n  recorded: {a}\n  replayed: {b}"
            )
    for attr in (
        "scheduler_name",
        "cluster_capacity",
        "avg_utilization",
        "clones_launched",
        "copies_launched",
        "simulated_time",
        "events_processed",
        "faults_injected",
        "copies_lost",
        "recoveries_masked_by_clone",
        "tasks_requeued",
    ):
        va, vb = getattr(recorded, attr), getattr(replayed, attr)
        if va != vb:
            raise ReplayDivergence(f"{attr} diverged: recorded {va!r}, replayed {vb!r}")
