"""Server sharding: partition map + sharded event queue (DESIGN.md §5.10).

The sharded engine partitions the cluster's servers into K shards.  Each
shard owns a local event heap (server-scoped events: copy finishes and
failures, server crash/recover/slowdown churn) and a mirror slice (the
per-shard availability bounds driving the blocked placement kernels in
:mod:`repro.cluster.mirror` and :mod:`repro.schedulers.packing`).
Cluster-wide events — job arrivals and schedule ticks — live in a
dedicated *global lane* beside the server shards.

Determinism argument (the merge barrier)
----------------------------------------

Every event still receives its sequence number from **one shared
counter**, exactly as the single-heap :class:`~repro.sim.events.
EventQueue` does.  The drain merges shard heads by the same total order
key ``(time, kind, seq)``: :meth:`ShardedEventQueue.pop` pops the
minimum head across lanes, and :meth:`ShardedEventQueue.pop_batch`
collects every lane's events at the earliest timestamp and merge-sorts
them by ``(kind, seq)``.  Because a deterministic run performs pushes in
an identical order regardless of K, the merged drain order is *equal* —
not just equivalent — to the single-heap pop order, so every RNG draw,
decision point and journal entry lands identically for any K.  K=1
degenerates to one shard lane plus the global lane, and the engine keeps
using the plain :class:`~repro.sim.events.EventQueue` there so the
default configuration is byte-for-byte the pre-shard engine.

Cross-shard effects need no locks or message passing in this in-process
design: clone placements spanning shards and fault churn all mutate
state through the engine's single ``apply`` choke point, and the merge
barrier alone fixes their interleaving.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from repro.sim.events import Event, EventKind

__all__ = ["ShardMap", "ShardedEventQueue", "GLOBAL_LANE_KINDS"]


#: Cluster-wide event kinds routed to the global lane rather than a
#: server shard: arrivals name a job, ticks name nobody.
GLOBAL_LANE_KINDS = frozenset({EventKind.JOB_ARRIVAL, EventKind.SCHEDULE_TICK})


class ShardMap:
    """Deterministic assignment of server ids to K shards.

    The default partition is *contiguous and balanced*: shard ``k`` owns
    server ids ``[k*M//K, (k+1)*M//K)``.  Contiguity is what lets the
    availability mirror treat each shard as an array slice; an explicit
    ``assignment`` (tests exercise random maps) is accepted too, in
    which case the mirror falls back to dense kernels while event-queue
    sharding still applies.
    """

    __slots__ = ("num_servers", "shards", "_assignment", "_slices")

    def __init__(
        self,
        num_servers: int,
        shards: int,
        *,
        assignment: Sequence[int] | None = None,
    ) -> None:
        if num_servers < 0:
            raise ValueError(f"num_servers must be non-negative, got {num_servers}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.num_servers = num_servers
        self.shards = shards
        if assignment is None:
            self._assignment: np.ndarray | None = None
            self._slices: list[tuple[int, int]] | None = [
                (k * num_servers // shards, (k + 1) * num_servers // shards)
                for k in range(shards)
            ]
        else:
            arr = np.asarray(assignment, dtype=np.int64)
            if arr.shape != (num_servers,):
                raise ValueError(
                    f"assignment must map all {num_servers} servers, "
                    f"got shape {arr.shape}"
                )
            if arr.size and (arr.min() < 0 or arr.max() >= shards):
                raise ValueError(
                    f"assignment values must lie in [0, {shards}), "
                    f"got range [{arr.min()}, {arr.max()}]"
                )
            self._assignment = arr
            # An explicit map that happens to be the contiguous balanced
            # partition is recognized so the fast mirror path still
            # engages.
            default = np.repeat(
                np.arange(shards, dtype=np.int64),
                np.diff([k * num_servers // shards for k in range(shards + 1)]),
            )
            if np.array_equal(arr, default):
                self._assignment = None
                self._slices = [
                    (k * num_servers // shards, (k + 1) * num_servers // shards)
                    for k in range(shards)
                ]
            else:
                self._slices = None

    # -- queries --------------------------------------------------------
    @property
    def contiguous(self) -> bool:
        """Whether shards are contiguous server-id ranges (mirror slices)."""
        return self._slices is not None

    @property
    def slices(self) -> list[tuple[int, int]]:
        """Per-shard ``(lo, hi)`` id ranges (contiguous maps only)."""
        if self._slices is None:
            raise ValueError("non-contiguous shard map has no slices")
        return list(self._slices)

    def shard_of(self, server_id: int) -> int:
        if not 0 <= server_id < self.num_servers:
            raise IndexError(
                f"server id {server_id} outside [0, {self.num_servers})"
            )
        if self._assignment is not None:
            return int(self._assignment[server_id])
        # Invert the balanced partition in O(1): shard k owns ids
        # [floor(kM/K), floor((k+1)M/K)), and both inequalities reduce to
        # k = ceil((i+1)K/M) - 1 — runs on every event push and every
        # journaled decision, so no scan.
        return ((server_id + 1) * self.shards - 1) // self.num_servers

    def indices(self, shard: int) -> np.ndarray:
        """Server ids owned by ``shard`` (ascending)."""
        if not 0 <= shard < self.shards:
            raise IndexError(f"shard {shard} outside [0, {self.shards})")
        if self._assignment is not None:
            return np.flatnonzero(self._assignment == shard)
        lo, hi = self._slices[shard]  # type: ignore[index]
        return np.arange(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "contiguous" if self.contiguous else "explicit"
        return f"ShardMap({self.num_servers} servers, K={self.shards}, {shape})"


class ShardedEventQueue:
    """K per-shard heaps + a global lane, drained in merged global order.

    Drop-in replacement for :class:`~repro.sim.events.EventQueue`
    (same drain API, RL008 applies equally): ``push`` routes each event
    to its owning lane by kind/payload, and the pop family merges lane
    heads on the shared ``(time, kind, seq)`` key — see the module
    docstring for why this reproduces the single-heap order exactly.
    """

    def __init__(self, shard_map: ShardMap) -> None:
        self.shard_map = shard_map
        # Lane K is the global lane (arrivals, ticks).
        self._lanes: list[list[tuple[float, int, int, Event]]] = [
            [] for _ in range(shard_map.shards + 1)
        ]
        self._seq = itertools.count()
        self._len = 0

    # -- routing --------------------------------------------------------
    def lane_of(self, kind: EventKind, payload: Any) -> int:
        """Owning lane index: the payload server's shard, or the global
        lane for cluster-wide kinds."""
        if kind in GLOBAL_LANE_KINDS or payload is None:
            return self.shard_map.shards
        server_id = getattr(payload, "server_id", None)
        if server_id is None:
            return self.shard_map.shards
        return self.shard_map.shard_of(server_id)

    # -- EventQueue drain API -------------------------------------------
    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        ev = Event(time, kind, next(self._seq), payload)
        heapq.heappush(self._lanes[self.lane_of(kind, payload)], (time, kind, ev.seq, ev))
        self._len += 1
        return ev

    def _min_lane(self) -> int:
        """Index of the lane whose head has the smallest (time, kind, seq)."""
        # Heap entries compare by (time, kind, seq) before ever reaching
        # the Event member (seqs are unique), so whole entries order the
        # lanes without slicing out a key tuple per probe.
        best = -1
        best_entry = None
        for i, lane in enumerate(self._lanes):
            if lane and (best_entry is None or lane[0] < best_entry):
                best, best_entry = i, lane[0]
        return best

    def pop(self) -> Event:
        i = self._min_lane()
        if i < 0:
            raise IndexError("pop from empty event queue")
        self._len -= 1
        return heapq.heappop(self._lanes[i])[3]

    def pop_batch(self) -> list[Event]:
        """Every event at the earliest timestamp, merged into the exact
        (time, kind, seq) pop order — the merge barrier."""
        if self._len == 0:
            raise IndexError("pop from empty event queue")
        t = min(lane[0][0] for lane in self._lanes if lane)
        # Equal-time entries sort by (kind, seq) when compared whole —
        # exactly the merge key — so the raw heap tuples need no
        # repacking and no key function.
        merged: list[tuple[float, int, int, Event]] = []
        for lane in self._lanes:
            while lane and lane[0][0] == t:
                merged.append(heapq.heappop(lane))
        if len(merged) > 1:
            merged.sort()
        self._len -= len(merged)
        return [e[3] for e in merged]

    def peek(self) -> Optional[Event]:
        i = self._min_lane()
        return self._lanes[i][0][3] if i >= 0 else None

    def peek_time(self) -> Optional[float]:
        i = self._min_lane()
        return self._lanes[i][0][0] if i >= 0 else None

    def peek_key(self) -> Optional[tuple[float, int, int]]:
        i = self._min_lane()
        return self._lanes[i][0][:3] if i >= 0 else None

    def has_kind(self, kind: EventKind) -> bool:
        return any(entry[1] == kind for lane in self._lanes for entry in lane)

    def lane_sizes(self) -> list[int]:
        """Pending events per lane (K shard lanes + the global lane) —
        observability for the shard benchmark and smoke gates."""
        return [len(lane) for lane in self._lanes]

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debugging aid
        raise TypeError("event queues are drained via pop/pop_batch (RL008)")

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0
