"""Discrete-event cluster simulator: engine, events, metrics, runner."""

from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.engine import SimulationEngine, ClusterView
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.runner import run_simulation

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "SimulationEngine",
    "ClusterView",
    "JobRecord",
    "SimulationResult",
    "run_simulation",
]
