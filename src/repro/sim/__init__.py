"""Discrete-event cluster simulator: engine, events, actions, metrics,
runner, and the trace-replay determinism oracle."""

from repro.sim.actions import (
    Action,
    Decision,
    DecisionTrace,
    InvalidAction,
    Kill,
    Launch,
    TraceLimitExceeded,
)
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.engine import SimulationEngine, ClusterView
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.replay import (
    ReplayDivergence,
    ReplayScheduler,
    assert_replay_identical,
    replay_trace,
)
from repro.sim.runner import run_recorded, run_simulation

__all__ = [
    "Action",
    "Decision",
    "DecisionTrace",
    "InvalidAction",
    "Kill",
    "Launch",
    "TraceLimitExceeded",
    "Event",
    "EventKind",
    "EventQueue",
    "SimulationEngine",
    "ClusterView",
    "JobRecord",
    "SimulationResult",
    "ReplayDivergence",
    "ReplayScheduler",
    "assert_replay_identical",
    "replay_trace",
    "run_recorded",
    "run_simulation",
]
