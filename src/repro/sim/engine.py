"""The discrete-event cluster simulation engine.

Responsibilities (everything a YARN ResourceManager + NodeManagers did in
the paper's prototype, reduced to what the evaluation metrics observe):

* event loop over job arrivals, task-copy completions and slot ticks;
* container placement with multi-resource capacity enforcement (Eq. 5);
* phase dependency gating (Eq. 7) and job completion tracking (Eq. 8);
* clone lifecycle: independent duration sampling per copy, first-copy-
  wins completion, killing of the remaining copies (Secs. 3, 5);
* utilization/overhead accounting for the evaluation figures;
* optional fault injection (DESIGN.md §5.5): server crash/recover
  churn, per-copy failures and transient slowdowns scheduled by a
  :class:`~repro.faults.injector.FaultInjector` and applied through the
  same validated ``apply`` choke point (``Fail``/``Recover`` actions).

Scheduling policy is fully delegated to a
:class:`~repro.schedulers.base.Scheduler` through :class:`ClusterView`.
In *slotted* mode (``schedule_interval > 0``) scheduling decisions only
happen at slot boundaries, matching the trace-driven simulator of
Sec. 6.3 ("the scheduling interval … to be 5 seconds"); with interval 0
the engine schedules after every state-changing event, matching the
event-driven YARN prototype.

**Action protocol** (DESIGN.md §5.3): policies never mutate the cluster
directly.  They emit typed :class:`~repro.sim.actions.Launch` /
:class:`~repro.sim.actions.Kill` actions through ``view.apply`` (or the
``view.launch`` / ``view.kill`` convenience wrappers), and the engine's
single :meth:`SimulationEngine.apply` choke point validates each action
*before* touching any state — including the duration RNG — applies it
atomically, and (when recording) journals it as a
:class:`~repro.sim.actions.Decision` in a bounded
:class:`~repro.sim.actions.DecisionTrace`.  A recorded trace replays
bit-identically via :mod:`repro.sim.replay`.

**Session API** (DESIGN.md §5.8): the engine is a resumable session,
not a one-shot loop.  :meth:`SimulationEngine.start` primes arrivals /
fault chains / the slot grid, :meth:`~SimulationEngine.step` processes
exactly one simulated instant (one coalesced batch drain plus its
closing schedule pass), :meth:`~SimulationEngine.run_until` steps
through every instant up to a time bound, :meth:`~SimulationEngine.drain`
steps until no runnable event remains, and
:meth:`~SimulationEngine.finalize` builds the
:class:`~repro.sim.metrics.SimulationResult`.  The legacy
:meth:`~SimulationEngine.run` is a thin ``start → drain → finalize``
wrapper and reproduces the pre-session batched-drain order
byte-identically.  Jobs enter either up front (a list, today's
behaviour), through a pull-based
:class:`~repro.workload.arrivals.ArrivalSource`, or injected mid-run
via :meth:`~SimulationEngine.ingest` — the service layer
(:mod:`repro.service`) builds on exactly these increments, and
:mod:`repro.sim.checkpoint` can persist/restore the whole session
between any two instants.
"""

from __future__ import annotations

import math
import time as _wallclock
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.devtools.sanitizer import SimulationSanitizer, sanitize_default
from repro.faults import FaultInjector, FaultProfile
from repro.observability import Observability, PhaseProfiler, observability_default
from repro.observability.instruments import FaultInstruments
from repro.resources import Resources
from repro.sim.actions import (
    FAULT_POLICY,
    Action,
    Decision,
    DecisionTrace,
    Fail,
    InvalidAction,
    Kill,
    Launch,
    Recover,
)
from repro.sim.events import BASE_EVENT_KINDS, EventKind, EventQueue
from repro.sim.metrics import SimulationResult, build_result
from repro.sim.shard import ShardedEventQueue, ShardMap
from repro.workload.arrivals import ArrivalSource, StaticSource
from repro.workload.job import Job
from repro.workload.task import Task, TaskCopy, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.schedulers.base import Scheduler

__all__ = ["ClusterView", "SimulationEngine"]


class ClusterView:
    """The scheduler's window into the simulation.

    Exposes read access to time/cluster/jobs plus one mutation channel:
    :meth:`apply`, which submits a typed action to the engine's choke
    point.  ``launch``/``kill`` are thin conveniences that build the
    corresponding action — policy code must not reach past this facade
    (enforced by repro-lint rule RL007).
    """

    def __init__(self, engine: "SimulationEngine") -> None:
        self._engine = engine

    # -- read access ----------------------------------------------------
    @property
    def time(self) -> float:
        return self._engine.now

    @property
    def cluster(self) -> Cluster:
        return self._engine.cluster

    @property
    def active_jobs(self) -> list[Job]:
        """Arrived, unfinished jobs — the A_t of Algorithm 2."""
        return list(self._engine.active_jobs.values())

    @property
    def rng(self) -> np.random.Generator:
        """Policy-owned randomness (e.g. random tie-breaking)."""
        return self._engine.policy_rng

    @property
    def clone_occupancy(self) -> Resources:
        """Resources currently held by live clone copies (incremental —
        used by DollyMP's δ budget without rescanning the cluster)."""
        return self._engine.clone_occupancy

    @property
    def observability(self) -> Observability | None:
        """The run's observability bundle (None when not opted in).
        Read-only from policy code: emit metrics/spans, never steer."""
        return self._engine.observability

    # -- mutations: the action protocol ---------------------------------
    def apply(self, action: Action) -> TaskCopy | None:
        """Submit a typed action; returns the new copy for a Launch."""
        return self._engine.apply(action)

    def launch(self, task: Task, server: Server, *, clone: bool = False) -> TaskCopy:
        copy = self._engine.apply(Launch(task, server, clone=clone))
        assert copy is not None
        return copy

    def kill(self, copy: TaskCopy) -> None:
        self._engine.apply(Kill(copy))


class SimulationEngine:
    """Runs one workload under one scheduling policy."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: "Scheduler",
        jobs: Iterable[Job] | ArrivalSource,
        *,
        seed: int = 0,
        schedule_interval: float = 0.0,
        max_time: float = math.inf,
        max_copies_per_task: int | None = None,
        sanitize: bool | None = None,
        record_trace: bool = False,
        trace_maxlen: int | None = None,
        observability: Observability | None = None,
        profile: bool | None = None,
        fault_profile: FaultProfile | None = None,
        churn_seed: int | None = None,
        shards: int = 1,
        shard_map: "ShardMap | None" = None,
    ) -> None:
        if schedule_interval < 0:
            raise ValueError("schedule_interval must be non-negative")
        self.cluster = cluster
        self.scheduler = scheduler
        # Sharded engine (DESIGN.md §5.10): partition servers into K
        # shards with per-shard event lanes and mirror bounds.  K=1
        # keeps the plain single-heap EventQueue and dense kernels —
        # byte-for-byte the pre-shard engine.  An explicit shard_map
        # (possibly non-contiguous, for tests) overrides `shards`.
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shard_map is not None and shard_map.num_servers != len(cluster):
            raise ValueError(
                f"shard map covers {shard_map.num_servers} servers, "
                f"cluster has {len(cluster)}"
            )
        if shard_map is None and shards > 1:
            shard_map = ShardMap(len(cluster), shards)
        self.shard_map = shard_map
        self.shards = shard_map.shards if shard_map is not None else 1
        # The workload enters through an ArrivalSource (DESIGN.md §5.8).
        # A plain job list — today's callers, and an *empty* list for a
        # session that starts idle — wraps into the eager StaticSource,
        # which start() primes exactly like the pre-session engine did.
        if isinstance(jobs, ArrivalSource):
            self.arrivals: ArrivalSource = jobs
            self.jobs = sorted(jobs.initial_jobs(), key=lambda j: j.arrival_time)
        else:
            self.jobs = sorted(jobs, key=lambda j: j.arrival_time)
            self.arrivals = StaticSource(self.jobs)
        self.schedule_interval = float(schedule_interval)
        self.max_time = float(max_time)
        self.max_copies_per_task = max_copies_per_task
        # Separate RNG streams: durations must not shift when a policy
        # draws random numbers, so comparisons across schedulers see the
        # same straggler realizations wherever placement agrees.
        self.duration_rng = np.random.default_rng(seed)
        self.policy_rng = np.random.default_rng(seed + 104_729)

        self.now = 0.0
        if shard_map is None:
            self.events: EventQueue | ShardedEventQueue = EventQueue()
        else:
            self.events = ShardedEventQueue(shard_map)
            if shard_map.contiguous:
                cluster.mirror.bind_shards(shard_map)
        self.active_jobs: dict[int, Job] = {}
        self.finished_jobs: list[Job] = []
        self.view = ClusterView(self)

        # Fault injection (DESIGN.md §5.5).  The injector owns a third
        # RNG stream (churn_seed), so a run with faults disabled draws
        # the exact same duration/policy sequences as a build without
        # the fault subsystem at all.
        if fault_profile is not None and not fault_profile.enabled:
            fault_profile = None
        self.faults: FaultInjector | None = (
            FaultInjector(self, fault_profile, churn_seed=churn_seed, seed=seed)
            if fault_profile is not None
            else None
        )
        self._pending_arrivals = len(self.jobs)
        self._orphaned: list[Task] = []
        self.faults_injected = 0
        self.copies_lost = 0
        self.recoveries_masked_by_clone = 0
        self.tasks_requeued = 0

        # Session state (DESIGN.md §5.8).  `_started` latches after
        # start() primes the queues; `_halted` latches when, with faults
        # attached, the workload drains and only the fault tail remains
        # (the legacy loop's `stop` flag) — ingest() clears it, since a
        # new arrival revives the workload.  `expect_arrivals` is the
        # service layer's promise that more jobs will be injected even
        # while none are active or queued: it keeps `workload_active()`
        # true so fault renewal chains extend across idle gaps exactly
        # as they would had the whole stream been known up front.
        self._started = False
        self._priming = False
        self._halted = False
        self.expect_arrivals = False
        self._job_ids = {j.job_id for j in self.jobs}
        self._run_t0: float | None = None

        # Decision journal (DESIGN.md §5.3).  `_decision_point` numbers
        # scheduler entry points; `_decision_cause` names the event kind
        # that opened the current one.  Both are metadata on recorded
        # decisions and the alignment key the replay engine uses.
        if trace_maxlen is None:
            self.trace: DecisionTrace | None = DecisionTrace() if record_trace else None
        else:
            self.trace = DecisionTrace(maxlen=trace_maxlen) if record_trace else None
        self._decision_point = 0
        self._decision_cause = "init"

        # Accounting
        self.events_processed = 0
        self.clones_launched = 0
        self.copies_launched = 0
        self.clone_occupancy = Resources(0.0, 0.0)
        self._live_clone_count = 0
        self.schedule_pass_seconds: list[float] = []
        self._alloc_integral_cpu = 0.0
        self._alloc_integral_mem = 0.0
        self._last_account_time = 0.0

        # Opt-in invariant checking (DESIGN.md §5.2): after every event
        # the sanitizer re-derives capacity conservation, mirror
        # coherence, the clone cap and time monotonicity from scratch.
        if sanitize is None:
            sanitize = sanitize_default()
        self.sanitizer = SimulationSanitizer(self) if sanitize else None

        # Observability (DESIGN.md §5.4): None unless the run (or the
        # environment) opted in — the disabled hot path pays only a
        # pointer check per event.  `profile=True` forces the wall-time
        # profiler on, creating a bundle if none was given.
        if observability is None:
            observability = observability_default()
        if profile:
            if observability is None:
                observability = Observability(profile=True)
            elif observability.profiler is None:
                observability.profiler = PhaseProfiler()
        self.observability = observability
        ins = observability.sim if observability is not None else None
        self._ins = ins
        if observability is not None:
            observability.bind_clock(lambda: self.now)
            observability.bind_cluster(self.cluster)
        # Pre-bound per-EventKind counter children and span names keep
        # the per-event cost to one dict hit + one attribute bump.
        if ins is not None:
            # Fault event kinds and decision causes are bound only when
            # an injector is attached: a no-fault run's metric snapshot
            # must stay byte-identical to one from a build without the
            # fault subsystem.
            kinds = tuple(EventKind) if self.faults is not None else BASE_EVENT_KINDS
            self._ev_child = {k: ins.events.labels(kind=k.name.lower()) for k in kinds}
            causes = ["job_arrival", "task_finish", "job_finish", "schedule"]
            if self.faults is not None:
                causes += ["server_fail", "server_recover", "copy_fail"]
            self._dp_child = {c: ins.decision_points.labels(cause=c) for c in causes}
        else:
            self._ev_child = self._dp_child = None
        self._fault_ins = (
            FaultInstruments(observability.registry)
            if self.faults is not None
            and observability is not None
            and observability.registry is not None
            else None
        )
        self._ev_span_name = {k: f"event:{k.name.lower()}" for k in EventKind}

        self._validate_feasible()

    # ------------------------------------------------------------------
    # Setup / validation
    # ------------------------------------------------------------------
    def _validate_feasible(self) -> None:
        """Reject workloads containing tasks no server could ever host."""
        self._max_cap = Resources(
            max(s.capacity.cpu for s in self.cluster),
            max(s.capacity.mem for s in self.cluster),
        )
        for job in self.jobs:
            self._validate_job(job)

    def _validate_job(self, job: Job) -> None:
        """Feasibility gate for one job — applied to the construction
        workload and to every job entering later through ingest()."""
        max_cap = self._max_cap
        for phase in job.phases:
            if not phase.demand.fits_in(max_cap):
                raise ValueError(
                    f"job {job.job_id} phase {phase.index}: demand "
                    f"{phase.demand} exceeds every server (max {max_cap})"
                )
        if job.arrival_time < 0:
            raise ValueError(f"job {job.job_id}: negative arrival time")

    # ------------------------------------------------------------------
    # The action choke point
    # ------------------------------------------------------------------
    def apply(self, action: Action) -> TaskCopy | None:
        """Validate, apply and journal one typed action.

        The single mutation channel of the engine: every scheduler-
        originated state change flows through here.  Validation runs
        *before* any mutation (including the duration-RNG draw), so a
        rejected action leaves the simulation bit-identical; a valid
        action is applied atomically and, when recording, appended to
        the decision trace with time/cause/policy metadata.
        """
        ins = self._ins
        if isinstance(action, Launch):
            try:
                self._validate_launch(action.task, action.server)
            except InvalidAction:
                if ins is not None:
                    ins.rejected_launches.inc()
                raise
            copy = self._apply_launch(action.task, action.server, clone=action.clone)
            self._record(action.task, action.server.server_id, clone=copy.is_clone)
            if ins is not None:
                ins.launches.inc()
            return copy
        if isinstance(action, Kill):
            copy = action.copy
            try:
                self._validate_kill(copy)
            except InvalidAction:
                if ins is not None:
                    ins.rejected_kills.inc()
                raise
            self._apply_kill(copy)
            self._record(
                copy.task,
                copy.server_id,
                kind="kill",
                copy_index=copy.task.copies.index(copy),
            )
            if ins is not None:
                ins.kills.inc()
            return None
        if isinstance(action, Fail):
            server = action.server
            if not server.up:
                raise InvalidAction(
                    f"server {server.server_id} is already down at t={self.now:g}",
                    kind="fail",
                    time=self.now,
                    server_id=server.server_id,
                )
            self._apply_fail(server)
            self._record_fault("fail", server.server_id)
            return None
        if isinstance(action, Recover):
            server = action.server
            if server.up:
                raise InvalidAction(
                    f"server {server.server_id} is already up at t={self.now:g}",
                    kind="recover",
                    time=self.now,
                    server_id=server.server_id,
                )
            self._apply_recover(server)
            self._record_fault("recover", server.server_id)
            return None
        raise TypeError(f"not an action: {action!r}")

    def _record(
        self,
        task: Task,
        server_id: int,
        *,
        kind: str = "launch",
        clone: bool = False,
        copy_index: int | None = None,
    ) -> None:
        if self.trace is None:
            return
        job_id, phase_index, task_index = task.uid
        self.trace.append(
            Decision(
                seq=len(self.trace),
                time=self.now,
                point=self._decision_point,
                cause=self._decision_cause,
                policy=self.scheduler.name,
                kind=kind,
                job_id=job_id,
                phase_index=phase_index,
                task_index=task_index,
                server_id=server_id,
                clone=clone,
                copy_index=copy_index,
                shard=self._shard_of(server_id),
            )
        )

    def _record_fault(self, kind: str, server_id: int) -> None:
        """Journal a Fail/Recover.  Fault actions carry no task, so the
        task coordinates are -1 sentinels and the policy column names
        the injector rather than the scheduler — replay filters these
        out and re-derives them from its own injector."""
        if self.trace is None:
            return
        self.trace.append(
            Decision(
                seq=len(self.trace),
                time=self.now,
                point=self._decision_point,
                cause=self._decision_cause,
                policy=FAULT_POLICY,
                kind=kind,
                job_id=-1,
                phase_index=-1,
                task_index=-1,
                server_id=server_id,
                clone=False,
                copy_index=None,
                shard=self._shard_of(server_id),
            )
        )

    def _shard_of(self, server_id: int) -> int | None:
        """Shard provenance for journaled decisions (None when unsharded)."""
        return self.shard_map.shard_of(server_id) if self.shard_map else None

    # ------------------------------------------------------------------
    # Validation (raises InvalidAction before any state is touched)
    # ------------------------------------------------------------------
    def _validate_launch(self, task: Task, server: Server) -> None:
        job = task.job

        def bad(message: str) -> InvalidAction:
            return InvalidAction(
                message,
                kind="launch",
                time=self.now,
                task_uid=task.uid,
                server_id=server.server_id,
            )

        if job.job_id not in self.active_jobs:
            raise bad(f"job {job.job_id} is not active at t={self.now:g}")
        if task.state is TaskState.FINISHED:
            raise bad(f"task {task.uid} already finished")
        if not job.phase_ready(task.phase, self.now):
            raise bad(
                f"task {task.uid}: parent phases unfinished or shuffle "
                f"delay pending (Eq. 7 violated)"
            )
        # Fault-killed copies don't count against the lifetime cap: a
        # task that lost its work to a crash may be relaunched.
        if (
            self.max_copies_per_task is not None
            and len(task.copies) - task.fault_losses >= self.max_copies_per_task
        ):
            raise bad(f"task {task.uid}: copy cap {self.max_copies_per_task} reached")
        if not server.up:
            raise bad(f"server {server.server_id} is down")
        if not server.can_fit(task.demand):
            raise bad(
                f"server {server.server_id}: cannot fit {task.demand} "
                f"in {server.available}"
            )

    def _validate_kill(self, copy: TaskCopy) -> None:
        if copy.live:
            return
        state = "finished" if copy.finished else "killed"
        raise InvalidAction(
            f"kill of already-{state} copy {copy.task.uid}#"
            f"{copy.task.copies.index(copy)} on server {copy.server_id} "
            f"at t={self.now:g} — occupancy was already released",
            kind="kill",
            time=self.now,
            task_uid=copy.task.uid,
            copy_index=copy.task.copies.index(copy),
            server_id=copy.server_id,
        )

    # ------------------------------------------------------------------
    # Appliers (assume validated input; used by apply() and internally)
    # ------------------------------------------------------------------
    def _apply_launch(self, task: Task, server: Server, *, clone: bool) -> TaskCopy:
        # A RUNNING task already has a live copy, so any further launch
        # is a clone even if the policy didn't flag it.  Keyed on state
        # rather than `has_run`: a fault-requeued task keeps its dead
        # copies in the history, but its next launch is a fresh primary.
        is_clone = clone or task.state is TaskState.RUNNING
        self._account_until(self.now)
        duration = self._sample_duration(task, server)
        copy = TaskCopy(task, server.server_id, self.now, duration, is_clone=is_clone)
        server.allocate(copy)  # re-checks Eq. (5) at the owner layer
        task.add_copy(copy)
        self.events.push(copy.finish_time, EventKind.COPY_FINISH, copy)
        self.copies_launched += 1
        if is_clone:
            self.clones_launched += 1
            self._live_clone_count += 1
            self.clone_occupancy = self.clone_occupancy + task.demand
        ins = self._ins
        if ins is not None:
            ins.copies.inc()
            if is_clone:
                ins.clones.inc()
            ins.copy_duration.observe(duration)
        if self.faults is not None:
            self.faults.on_copy_launched(copy)
        return copy

    def _apply_kill(self, copy: TaskCopy) -> None:
        self._account_until(self.now)
        copy.killed = True
        # Truncate the copy's charged duration to the time it ran; the
        # resource-usage metrics (Fig. 8b) charge only actual occupancy.
        copy.duration = max(self.now - copy.start_time, 1e-12)
        self.cluster[copy.server_id].release(copy)
        if copy.is_clone:
            self._release_clone(copy.task)

    def _release_clone(self, task: Task) -> None:
        """Return one clone's demand to the incremental δ-budget
        occupancy.  Snaps to exactly zero when the last live clone
        leaves (mirroring Server.release's idle snap), so repeated
        add/subtract rounding cannot leak budget across a long run —
        `CloningPolicy.budget_remaining` sees the full δ ceiling again
        whenever no clone is live."""
        self._live_clone_count -= 1
        if self._live_clone_count <= 0:
            self._live_clone_count = 0
            self.clone_occupancy = Resources(0.0, 0.0)
        else:
            self.clone_occupancy = (
                self.clone_occupancy - task.demand
            ).clamp_nonnegative()

    def _apply_fail(self, server: Server) -> None:
        """Crash one server: kill every resident copy (deterministic
        copy-uid order), take the capacity out of both placement paths,
        and sort each victim task into clone-masked vs orphaned.  The
        kills are engine consequences of the Fail action, not scheduler
        decisions, so they bypass the journal like first-copy-wins kills."""
        self._account_until(self.now)
        victims = sorted(server.running_copies, key=lambda c: c.copy_uid)
        tasks: list[Task] = []
        # One crash releases every resident copy on the same server:
        # coalesce the whole victim sweep (plus the down-flag flip) into
        # a single mirror store for that server.
        mirror = self.cluster.mirror
        mirror.begin_coalesce()
        try:
            for copy in victims:
                self._apply_kill(copy)
                copy.task.fault_losses += 1
                if copy.task not in tasks:
                    tasks.append(copy.task)
            server.mark_down()
        finally:
            mirror.end_coalesce()
        requeued: list[Task] = []
        masked = 0
        for task in tasks:
            if task.num_live_copies > 0:
                masked += 1  # a surviving clone carries the task
            else:
                task.requeue()
                requeued.append(task)
        self.faults_injected += 1
        self.copies_lost += len(victims)
        self.recoveries_masked_by_clone += masked
        self.tasks_requeued += len(requeued)
        self._orphaned = requeued
        fins = self._fault_ins
        if fins is not None:
            fins.server_fails.inc()
            if victims:
                fins.copies_lost.inc(len(victims))
            if masked:
                fins.masked_by_clone.inc(masked)
            if requeued:
                fins.tasks_requeued.inc(len(requeued))
            fins.servers_down.set(len(self.cluster) - self.cluster.num_up())

    def _apply_recover(self, server: Server) -> None:
        """Return a crashed server to service at full capacity."""
        self._account_until(self.now)
        server.mark_up()
        fins = self._fault_ins
        if fins is not None:
            fins.server_recovers.inc()
            fins.servers_down.set(len(self.cluster) - self.cluster.num_up())

    # -- back-compat imperative entry points (thin action wrappers) -----
    def launch_copy(self, task: Task, server: Server, *, clone: bool = False) -> TaskCopy:
        copy = self.apply(Launch(task, server, clone=clone))
        assert copy is not None
        return copy

    def kill_copy(self, copy: TaskCopy) -> None:
        self.apply(Kill(copy))

    def _sample_duration(self, task: Task, server: Server) -> float:
        """Duration of one copy: a fresh draw from the phase's straggler
        distribution scaled by the server's slowdown.

        Independent draws per copy implement the paper's clone model —
        each clone behaves like "a task randomly chosen from the same job
        phase" (Sec. 6.3) — and first-copy-wins takes the minimum.
        """
        base = task.phase.distribution.sample(self.duration_rng)
        return float(base) * server.slowdown

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _account_until(self, t: float) -> None:
        dt = t - self._last_account_time
        if dt > 0:
            # Mirror aggregates: one vectorized reduction per event
            # instead of a per-server Python sum.
            cpu, mem = self.cluster.mirror.total_allocated_components()
            self._alloc_integral_cpu += cpu * dt
            self._alloc_integral_mem += mem * dt
            self._last_account_time = t

    def average_utilization(self) -> Resources:
        """Time-averaged allocated fraction over the simulated horizon."""
        if self.now <= 0:
            return Resources(0.0, 0.0)
        total = self.cluster.total_capacity
        return Resources(
            self._alloc_integral_cpu / (total.cpu * self.now),
            self._alloc_integral_mem / (total.mem * self.now),
        )

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def _open_decision_point(self, cause: str) -> None:
        """A scheduler entry point is about to run: decisions applied
        until the next one belong to this (ordinal, cause) opportunity."""
        self._decision_point += 1
        self._decision_cause = cause
        dp = self._dp_child
        if dp is not None:
            dp[cause].inc()

    def _policy_entry(self, cause: str, hook, *args) -> None:
        """Open a decision point and run one scheduler hook."""
        self._open_decision_point(cause)
        self._run_hook(cause, hook, *args)

    def _run_hook(self, cause: str, hook, *args) -> None:
        """Run one scheduler hook inside the *current* decision point,
        wrapped in a ``decision:<cause>`` span and a ``scheduler``
        profiler frame when observability is enabled.  Fault processors
        open the point themselves so the Fail/Recover decision is
        journaled at the same ordinal the hook runs under."""
        obs = self.observability
        if obs is None:
            hook(*args, self.view)
            return
        tracer = obs.tracer
        prof = obs.profiler
        span = (
            tracer.enter(f"decision:{cause}", point=self._decision_point)
            if tracer is not None
            else None
        )
        frame = prof.enter("scheduler") if prof is not None else None
        try:
            hook(*args, self.view)
        finally:
            if frame is not None:
                prof.exit(frame)
            if span is not None:
                tracer.exit(span)

    def _process_arrival(self, job: Job) -> None:
        self._pending_arrivals -= 1
        self.active_jobs[job.job_id] = job
        # Pull-based sources stay one arrival ahead: consuming this
        # arrival fetches the next job from the stream.  Arrival events
        # tie-break on kind before seq, and same-kind pushes keep stream
        # order, so the pull schedule never reorders processing relative
        # to an eager all-upfront push of the same jobs.
        if not self.arrivals.eager and not self.arrivals.exhausted:
            self._pull_arrival()
        ins = self._ins
        if ins is not None:
            ins.active_jobs.set(len(self.active_jobs))
        self._policy_entry("job_arrival", self.scheduler.on_job_arrival, job)

    def _process_copy_finish(self, copy: TaskCopy) -> None:
        if not copy.live:
            return  # stale event: the copy was killed earlier
        task = copy.task
        # Coalesce the winner's release plus the first-copy-wins kills
        # into one mirror delta per touched server (reads flush first,
        # and `_account_until` is a no-op inside a timestamp, so nothing
        # observes the deferred window).
        mirror = self.cluster.mirror
        mirror.begin_coalesce()
        try:
            copy.finished = True
            self.cluster[copy.server_id].release(copy)
            if copy.is_clone:
                self._release_clone(task)
            if task.state is TaskState.FINISHED:
                return  # another copy already won (equal-time tie)
            # First copy wins: kill the rest and complete the task.  These
            # kills are engine consequences of the COPY_FINISH event, not
            # scheduler decisions, so they bypass the journal (replay
            # re-derives them from the same event).
            kills = 0
            for other in task.copies:
                if other is not copy and other.live:
                    self._apply_kill(other)
                    kills += 1
        finally:
            mirror.end_coalesce()
        task.complete(self.now)
        ins = self._ins
        if ins is not None and kills:
            ins.preempt_kills.inc(kills)
        self._policy_entry("task_finish", self.scheduler.on_task_finish, task)
        job = task.job
        if job.mark_finished_if_done(self.now):
            del self.active_jobs[job.job_id]
            self.finished_jobs.append(job)
            if ins is not None:
                assert job.finish_time is not None
                ins.job_flowtime.observe(job.finish_time - job.arrival_time)
                ins.active_jobs.set(len(self.active_jobs))
            self._policy_entry("job_finish", self.scheduler.on_job_finish, job)
        elif task.phase.is_finished:
            self._arm_delayed_children(job, task.phase)

    # ------------------------------------------------------------------
    # Fault event processing (DESIGN.md §5.5)
    # ------------------------------------------------------------------
    def workload_active(self) -> bool:
        """Whether unfinished jobs exist or are still to arrive — the
        predicate gating fault-chain extension and the drain break.

        A streamed session counts an unexhausted arrival source (or an
        explicit ``expect_arrivals`` pledge from a service runner) as
        pending work: a one-shot run that knew the whole stream up front
        would still have those arrivals queued here, so the fault renewal
        chain must stay alive across stream gaps to keep the churn RNG
        draw sequence identical."""
        return (
            bool(self.active_jobs)
            or self._pending_arrivals > 0
            or not self.arrivals.exhausted
            or self.expect_arrivals
        )

    def _process_fault_event(self, ev) -> bool:
        """Dispatch one injector-scheduled event; returns whether the
        cluster state changed in a way that warrants a schedule pass."""
        kind = ev.kind
        if kind is EventKind.SERVER_FAIL:
            return self._process_server_fail(ev.payload)
        if kind is EventKind.SERVER_RECOVER:
            return self._process_server_recover(ev.payload)
        if kind is EventKind.COPY_FAIL:
            return self._process_copy_fail(ev.payload)
        faults = self.faults
        assert faults is not None
        if kind is EventKind.SERVER_SLOW_START:
            faults.on_slow_start(ev.payload)
            self.faults_injected += 1
            if self._fault_ins is not None:
                self._fault_ins.slowdowns.inc()
        else:  # SERVER_SLOW_END
            faults.on_slow_end(ev.payload)
        return False  # slowdowns don't change placement feasibility

    def _process_server_fail(self, server: Server) -> bool:
        faults = self.faults
        assert faults is not None
        if not server.up:
            return False  # defensive: chains schedule one fail per server
        if faults.profile.keep_one_up and self.cluster.num_up() <= 1:
            # Never crash the last healthy server — but extend the
            # renewal chain anyway so the failure process (and its RNG
            # stream position) is independent of cluster state.
            faults.schedule_next_failure(server)
            return False
        self._open_decision_point("server_fail")
        self.apply(Fail(server))
        orphans = self._orphaned
        self._orphaned = []
        self._run_hook("server_fail", self.scheduler.on_server_fail, server, orphans)
        faults.schedule_recovery(server)
        return True

    def _process_server_recover(self, server: Server) -> bool:
        faults = self.faults
        assert faults is not None
        if server.up:
            return False  # defensive: one recovery is scheduled per crash
        self._open_decision_point("server_recover")
        self.apply(Recover(server))
        self._run_hook("server_recover", self.scheduler.on_server_recover, server)
        faults.schedule_next_failure(server)
        return True

    def _process_copy_fail(self, copy: TaskCopy) -> bool:
        if not copy.live:
            return False  # stale: the copy finished or was killed first
        task = copy.task
        self._apply_kill(copy)
        task.fault_losses += 1
        self.faults_injected += 1
        self.copies_lost += 1
        if task.num_live_copies > 0:
            self.recoveries_masked_by_clone += 1
            masked = True
        else:
            task.requeue()
            self.tasks_requeued += 1
            masked = False
        fins = self._fault_ins
        if fins is not None:
            fins.copy_fails.inc()
            fins.copies_lost.inc()
            if masked:
                fins.masked_by_clone.inc()
            else:
                fins.tasks_requeued.inc()
        self._open_decision_point("copy_fail")
        self._run_hook("copy_fail", self.scheduler.on_copy_failure, copy)
        return True

    def _arm_delayed_children(self, job: Job, finished_phase) -> None:
        """A phase with a shuffle delay becomes schedulable strictly
        between events; arm a wakeup so event-driven runs revisit it.
        (Slotted runs pick it up at the next slot boundary anyway.)"""
        if self.schedule_interval > 0:
            return
        for child in job.phases:
            if finished_phase.index not in child.parents or child.start_delay == 0:
                continue
            ready_at = job.phase_ready_time(child)
            if ready_at is not None and ready_at > self.now:
                self.events.push(ready_at, EventKind.SCHEDULE_TICK)

    def _run_schedule_pass(self) -> None:
        self._open_decision_point("schedule")
        obs = self.observability
        if obs is None:
            t0 = _wallclock.perf_counter()
            self.scheduler.schedule(self.view)
            self.schedule_pass_seconds.append(_wallclock.perf_counter() - t0)
            return
        tracer = obs.tracer
        prof = obs.profiler
        span = (
            tracer.enter("decision:schedule", point=self._decision_point)
            if tracer is not None
            else None
        )
        frame = prof.enter("scheduler") if prof is not None else None
        t0 = _wallclock.perf_counter()
        try:
            self.scheduler.schedule(self.view)
        finally:
            dt = _wallclock.perf_counter() - t0
            self.schedule_pass_seconds.append(dt)
            if frame is not None:
                prof.exit(frame)
            if span is not None:
                tracer.exit(span)
        ins = self._ins
        if ins is not None:
            ins.wall_schedule_pass.observe(dt)

    # ------------------------------------------------------------------
    # Session API (DESIGN.md §5.8)
    # ------------------------------------------------------------------
    def start(self) -> "SimulationEngine":
        """Prime the session: queue the known arrivals, start the fault
        processes, and lay down the slot grid.  Idempotent; every other
        session increment (step/run_until/drain/ingest) calls it first,
        so explicit use is only needed to pin the priming time.

        The push order — arrivals (workload order), fault priming, the
        first slot tick — is the exact order the pre-session ``run()``
        used, so event sequence numbers (and therefore same-instant
        tie-breaks) are preserved bit-for-bit."""
        if self._started:
            return self
        self._started = True
        self._run_t0 = _wallclock.perf_counter()
        first_arrival: float | None = None
        if self.arrivals.eager:
            for job in self.jobs:
                self.events.push(job.arrival_time, EventKind.JOB_ARRIVAL, job)
            if self.jobs:
                first_arrival = self.jobs[0].arrival_time
        else:
            job = self._pull_arrival()
            if job is not None:
                first_arrival = job.arrival_time
        if self.faults is not None:
            self.faults.prime()
        if self.schedule_interval > 0 and first_arrival is not None:
            aligned = (
                math.floor(first_arrival / self.schedule_interval)
                * self.schedule_interval
            )
            self.events.push(max(aligned, 0.0), EventKind.SCHEDULE_TICK)
        return self

    def _pull_arrival(self) -> Job | None:
        """Fetch the next job from a pull-based arrival source.

        Engine-internal pulls happen while the tick chain is alive —
        at ``start()`` (the aligned initial tick is laid right after)
        or mid-instant inside arrival processing (where the current
        tick sits in the popped batch, invisible to ``has_kind``) — so
        ``_priming`` suppresses ingest()'s dead-chain tick re-arm,
        which is only for *external* ingests into an idle session.
        """
        self._priming = True
        try:
            job = self.arrivals.take()
            if job is not None:
                self.ingest(job)
        finally:
            self._priming = False
        return job

    def ingest(self, job: Job) -> Job:
        """Inject one job into a live session.

        The online-arrival mutation channel: validates the job exactly
        like a construction-time workload (feasibility, non-negative
        arrival), requires its arrival not to precede the session clock,
        and queues the arrival event.  Starts the session if needed, and
        clears a fault-tail halt — a new arrival revives the workload.
        Jobs must be ingested in non-decreasing arrival order to match a
        run that knew the whole stream up front (the arrival sources
        enforce this; direct callers own it)."""
        if not self._started:
            self.start()
        self._validate_job(job)
        if job.arrival_time < self.now:
            raise ValueError(
                f"job {job.job_id}: arrival {job.arrival_time:g} precedes "
                f"the session clock t={self.now:g}"
            )
        if job.job_id in self._job_ids:
            raise ValueError(f"job {job.job_id}: duplicate job id in this session")
        self.jobs.append(job)
        self._job_ids.add(job.job_id)
        self._pending_arrivals += 1
        self._halted = False
        self.events.push(job.arrival_time, EventKind.JOB_ARRIVAL, job)
        # A slotted session whose tick chain died while idle must re-arm
        # it at exactly the slot the uninterrupted chain would have hit:
        # _next_tick_time() jumps over the idle gap to the slot holding
        # the next event, which is this arrival.
        if (
            self.schedule_interval > 0
            and not self._priming
            and not self.events.has_kind(EventKind.SCHEDULE_TICK)
        ):
            nxt = self._next_tick_time()
            if nxt is not None:
                self.events.push(nxt, EventKind.SCHEDULE_TICK)
        return job

    def step(self) -> bool:
        """Process the next simulated instant; returns False when no
        runnable event remains.

        One instant = every queued event sharing the earliest timestamp
        (plus same-instant pushes), processed in the exact (time, kind,
        seq) order of the batched drain, closed by at most one schedule
        pass — precisely one iteration of the legacy ``run()`` loop.
        Raises the max_time/starvation guard like the legacy loop; with
        faults attached, refuses (returns False) once only the fault
        tail remains."""
        if not self._started:
            self.start()
        if self._halted:
            return False
        events = self.events
        if not events:
            return False
        if self.faults is not None and not self.workload_active():
            # Only fault events remain once the workload drains.
            self._halted = True
            return False
        batch = events.pop_batch()
        t = batch[0].time
        if t > self.max_time:
            raise RuntimeError(
                f"simulation exceeded max_time={self.max_time:g} "
                f"(possible starvation under {self.scheduler.name})"
            )
        self._account_until(t)
        self.now = t
        self._process_instant(t, batch)
        return True

    def run_until(self, t: float, *, inclusive: bool = True) -> float:
        """Step through every instant up to ``t`` and return the clock.

        Processes instants while the next pending event is ≤ ``t``
        (< ``t`` with ``inclusive=False`` — the streaming runner uses
        the exclusive bound so equal-time arrivals land in one instant).
        The clock never advances past the last processed event, so a
        bound beyond the horizon leaves the session exactly where
        ``drain()`` would.  The max_time/starvation guards apply to each
        step, so a stuck slotted session raises instead of spinning."""
        if not self._started:
            self.start()
        while not self._halted:
            nt = self.events.peek_time()
            if nt is None or (nt > t if inclusive else nt >= t):
                break
            if not self.step():
                break
        return self.now

    def drain(self) -> int:
        """Step until no runnable event remains; returns instants run."""
        instants = 0
        while self.step():
            instants += 1
        return instants

    def finalize(self) -> SimulationResult:
        """Close the session and build its result.

        Mirrors the legacy end-of-run epilogue: flushes the sim-time /
        wall-run gauges, rejects a drained queue that left jobs
        unfinished (deadlock guard), and snapshots the result."""
        ins = self._ins
        if ins is not None:
            ins.sim_time.set(self.now)
            if self._run_t0 is not None:
                ins.wall_run.set(_wallclock.perf_counter() - self._run_t0)
        if self.active_jobs:
            raise RuntimeError(
                f"event queue drained with {len(self.active_jobs)} jobs unfinished"
            )
        return build_result(self)

    def partial_result(self) -> SimulationResult:
        """Result over the jobs finished *so far* — the live-metrics
        variant of finalize(): no completeness check, no gauge flush,
        valid between any two instants of a running session."""
        return build_result(self)

    def run(self) -> SimulationResult:
        """Legacy one-shot entry point: start → drain → finalize."""
        self.start()
        self.drain()
        return self.finalize()

    # ------------------------------------------------------------------
    # Pickling (checkpoint/restore, DESIGN.md §5.8)
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        # Wall-clock anchor is meaningless across processes; finalize()
        # after a restore simply skips the wall_run gauge.
        state["_run_t0"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        # The observability clock is a closure over this engine (dropped
        # by SpanTracer.__getstate__); rebind it to the revived instance.
        if self.observability is not None:
            self.observability.bind_clock(lambda: self.now)

    # ------------------------------------------------------------------
    # One instant of the batched drain
    # ------------------------------------------------------------------
    def _process_instant(self, t: float, batch) -> None:
        # Batched drain (DESIGN.md §5.6): every event sharing the
        # earliest timestamp is popped in one heap sweep and processed
        # from a local list, preserving the exact (time, kind, seq)
        # order the per-event loop produced.  Two escape valves keep the
        # order bit-identical when processing pushes *new* events at the
        # current instant: (a) a head check before each local event, in
        # case a pushed event sorts earlier (smaller kind — pushed seqs
        # are always larger); (b) a re-drain once the local list runs
        # out.  One schedule pass still closes each instant, exactly as
        # before; batching never reorders or merges decision points.
        obs = self.observability
        tracer = obs.tracer if obs is not None else None
        prof = obs.profiler if obs is not None else None
        ev_child = self._ev_child
        span_name = self._ev_span_name
        events = self.events
        sanitizer = self.sanitizer
        slotted = self.schedule_interval > 0

        idx = 0
        n = len(batch)
        while True:
            # -- select the next event in exact pop order ----------
            if idx < n:
                ev = batch[idx]
                hk = events.peek_key()
                if hk is not None and hk[0] == t and (hk[1], hk[2]) < (ev.kind, ev.seq):
                    ev = events.pop()  # zero-delay push sorted earlier
                else:
                    idx += 1
            elif events.peek_time() == t:
                batch = events.pop_batch()  # pushed while processing
                n = len(batch)
                ev = batch[0]
                idx = 1
            else:
                break
            if self.faults is not None and not self.workload_active():
                self._halted = True  # drop the fault tail mid-instant too
                break

            self.events_processed += 1
            kind = ev.kind
            if ev_child is not None:
                ev_child[kind].inc()
            span = tracer.enter(span_name[kind]) if tracer is not None else None
            frame = prof.enter("engine") if prof is not None else None
            try:
                if kind is EventKind.JOB_ARRIVAL:
                    self._process_arrival(ev.payload)
                    dirty = True
                elif kind is EventKind.COPY_FINISH:
                    self._process_copy_finish(ev.payload)
                    dirty = True
                elif kind is not EventKind.SCHEDULE_TICK:
                    dirty = self._process_fault_event(ev)
                else:  # SCHEDULE_TICK
                    dirty = False
                    self._run_schedule_pass()
                    # Slotted mode sustains the tick chain; event-driven
                    # mode only sees one-shot wakeups (delayed-phase
                    # arming).  `idx < n` counts locally-held events the
                    # per-event loop would still see queued.
                    if slotted and (self.active_jobs or idx < n or events):
                        nxt = self._next_tick_time()
                        if nxt is not None:
                            events.push(nxt, EventKind.SCHEDULE_TICK)

                if not slotted and dirty and idx >= n and events.peek_time() != t:
                    # Last state change of this instant: one pass.
                    self._run_schedule_pass()
            finally:
                if frame is not None:
                    prof.exit(frame)
                if span is not None:
                    tracer.exit(span)

            if sanitizer is not None:
                sanitizer.after_event(f"{kind.name} @ t={t:g}")
            if idx >= n:
                # Mid-batch the locally-held events are still pending
                # work, so starvation can only be judged at the end of
                # the instant (the per-event loop agrees: it never
                # fired with same-time events still queued).
                self._check_progress()

    def _next_tick_time(self) -> Optional[float]:
        """Next slot boundary; jumps over idle gaps to the slot containing
        the next event when nothing is running."""
        base = self.now + self.schedule_interval
        if self.active_jobs:
            return base
        nxt = self.events.peek()
        if nxt is None:
            return None
        k = math.ceil(nxt.time / self.schedule_interval)
        return max(base, k * self.schedule_interval)

    def _check_progress(self) -> None:
        """Detect starvation: active jobs, nothing running, nothing queued."""
        if self.active_jobs and not self.events:
            running = self.cluster.running_copy_count()
            if running == 0:
                stuck = sorted(self.active_jobs)
                raise RuntimeError(
                    f"scheduler {self.scheduler.name} starved jobs {stuck}: "
                    "no copies running and no events pending"
                )
