"""High-level simulation entry point.

``run_simulation`` is the one-call public API: give it a cluster, a
scheduler and a workload, get a :class:`SimulationResult` back.  Jobs
must be freshly built per run (task state is mutated); use a factory
when comparing schedulers on "the same" workload — see
:func:`compare_schedulers`.

``compare_schedulers`` additionally supports multi-seed sweeps
(``seeds=[...]``) and parallel execution (``workers=N``) so benchmark
sweeps use all cores: each (scheduler, seed) combination is an
independent simulation, dispatched through ``concurrent.futures``.

``run_recorded`` is the journaling variant: same simulation, but every
scheduler decision is recorded in a :class:`DecisionTrace` (DESIGN.md
§5.3) that :func:`repro.sim.replay.replay_trace` can re-execute
bit-identically against a fresh cluster/workload.
"""

from __future__ import annotations

import math
import pickle
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Callable, Iterable, Mapping, Sequence

from repro.cluster.cluster import Cluster
from repro.faults import FaultProfile
from repro.observability import Observability
from repro.schedulers.base import Scheduler
from repro.sim.actions import DecisionTrace
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import SimulationResult
from repro.workload.job import Job

__all__ = ["run_simulation", "run_recorded", "compare_schedulers"]


def run_simulation(
    cluster: Cluster,
    scheduler: Scheduler,
    jobs: Iterable[Job],
    *,
    seed: int = 0,
    schedule_interval: float = 0.0,
    max_time: float = math.inf,
    sanitize: bool | None = None,
    observability: Observability | None = None,
    fault_profile: FaultProfile | None = None,
    churn_seed: int | None = None,
) -> SimulationResult:
    """Simulate ``jobs`` on ``cluster`` under ``scheduler``.

    ``schedule_interval`` selects slotted scheduling (the paper's trace
    simulator uses 5 s); 0 means event-driven like the YARN prototype.
    The ``seed`` fixes the straggler realizations: two schedulers run
    with the same seed see identical duration draws for identical
    placement sequences.  ``sanitize`` enables the per-event invariant
    checker (default: the ``REPRO_SANITIZE`` environment toggle).
    ``observability`` attaches a per-run metrics/span/profiler bundle
    (default: the ``REPRO_METRICS``/``REPRO_PROFILE`` toggles).
    ``fault_profile`` attaches a deterministic fault injector (DESIGN.md
    §5.5); its RNG stream derives from ``churn_seed`` (default:
    ``seed`` + a fixed offset), so identical seeds give identical
    failure realizations and a ``None`` profile leaves every existing
    RNG stream untouched.
    """
    engine = SimulationEngine(
        cluster,
        scheduler,
        jobs,
        seed=seed,
        schedule_interval=schedule_interval,
        max_time=max_time,
        sanitize=sanitize,
        observability=observability,
        fault_profile=fault_profile,
        churn_seed=churn_seed,
    )
    return engine.run()


def run_recorded(
    cluster: Cluster,
    scheduler: Scheduler,
    jobs: Iterable[Job],
    *,
    seed: int = 0,
    schedule_interval: float = 0.0,
    max_time: float = math.inf,
    sanitize: bool | None = None,
    trace_maxlen: int | None = None,
    observability: Observability | None = None,
    fault_profile: FaultProfile | None = None,
    churn_seed: int | None = None,
) -> tuple[SimulationResult, DecisionTrace]:
    """Like :func:`run_simulation`, but journal every scheduler decision.

    Returns ``(result, trace)``; the trace's ``meta`` records the seed,
    slot interval and policy name so :func:`repro.sim.replay.replay_trace`
    can re-execute it without re-stating the configuration.  Replaying
    against a freshly rebuilt cluster/workload must reproduce ``result``
    bit-for-bit (the determinism oracle of DESIGN.md §5.3).
    """
    engine = SimulationEngine(
        cluster,
        scheduler,
        jobs,
        seed=seed,
        schedule_interval=schedule_interval,
        max_time=max_time,
        sanitize=sanitize,
        record_trace=True,
        trace_maxlen=trace_maxlen,
        observability=observability,
        fault_profile=fault_profile,
        churn_seed=churn_seed,
    )
    result = engine.run()
    trace = engine.trace
    assert trace is not None
    trace.meta.update(
        {
            "policy": scheduler.name,
            "seed": seed,
            "schedule_interval": schedule_interval,
            "num_jobs": len(result.records),
            "num_decisions": len(trace),
        }
    )
    if engine.faults is not None:
        # Everything replay_trace needs to reconstruct the injector:
        # the profile's scalars plus the resolved churn seed.
        trace.meta["faults"] = {
            "profile": engine.faults.profile.to_meta(),
            "churn_seed": engine.faults.churn_seed,
        }
    return result, trace


def _run_combo(
    make_cluster: Callable[[], Cluster],
    make_sched: Callable[[], Scheduler],
    make_jobs: Callable[[], list[Job]],
    seed: int,
    schedule_interval: float,
    max_time: float,
    fault_profile: FaultProfile | None = None,
    churn_seed: int | None = None,
) -> SimulationResult:
    """One (scheduler, seed) cell of a sweep — module-level so worker
    processes can unpickle it."""
    return run_simulation(
        make_cluster(),
        make_sched(),
        make_jobs(),
        seed=seed,
        schedule_interval=schedule_interval,
        max_time=max_time,
        fault_profile=fault_profile,
        churn_seed=churn_seed,
    )


def compare_schedulers(
    make_cluster: Callable[[], Cluster],
    make_jobs: Callable[[], list[Job]],
    schedulers: Mapping[str, Callable[[], Scheduler]],
    *,
    seed: int = 0,
    seeds: Sequence[int] | None = None,
    schedule_interval: float = 0.0,
    max_time: float = math.inf,
    workers: int | None = None,
    fault_profile: FaultProfile | None = None,
    churn_seed: int | None = None,
):
    """Run the same (freshly rebuilt) workload under several policies.

    Factories are required because jobs and clusters are stateful; each
    policy gets a pristine copy and the same duration seed(s).

    * ``seeds=None`` (default): one run per scheduler at ``seed``;
      returns ``{name: SimulationResult}`` (the historical shape).
    * ``seeds=[s0, s1, ...]``: a multi-seed sweep; returns
      ``{name: {seed: SimulationResult}}``.
    * ``workers=N`` (N > 1): run the independent (scheduler, seed)
      cells in parallel.  Picklable factories (module-level functions)
      are dispatched to a process pool so sweeps use all cores;
      unpicklable factories (lambdas, closures) fall back to a thread
      pool, which is still correct but GIL-bound.
    """
    seed_list = [seed] if seeds is None else list(seeds)
    if not seed_list:
        raise ValueError("seeds must be non-empty when provided")
    combos = [(name, make, s) for name, make in schedulers.items() for s in seed_list]

    cells: dict[tuple[str, int], SimulationResult] = {}
    if workers is not None and workers > 1 and len(combos) > 1:
        cells = _run_parallel(
            make_cluster,
            make_jobs,
            combos,
            schedule_interval,
            max_time,
            workers,
            fault_profile,
            churn_seed,
        )
    else:
        for name, make, s in combos:
            cells[(name, s)] = _run_combo(
                make_cluster,
                make,
                make_jobs,
                s,
                schedule_interval,
                max_time,
                fault_profile,
                churn_seed,
            )

    if seeds is None:
        return {name: cells[(name, seed)] for name in schedulers}
    return {
        name: {s: cells[(name, s)] for s in seed_list} for name in schedulers
    }


def _run_parallel(
    make_cluster: Callable[[], Cluster],
    make_jobs: Callable[[], list[Job]],
    combos: list[tuple[str, Callable[[], Scheduler], int]],
    schedule_interval: float,
    max_time: float,
    workers: int,
    fault_profile: FaultProfile | None = None,
    churn_seed: int | None = None,
) -> dict[tuple[str, int], SimulationResult]:
    try:
        pickle.dumps((make_cluster, make_jobs, [m for _, m, _ in combos]))
        pool_cls = ProcessPoolExecutor
    except Exception:
        # Lambdas/closures can't cross a process boundary; threads keep
        # the parallel API usable (numpy kernels release the GIL).
        pool_cls = ThreadPoolExecutor
    out: dict[tuple[str, int], SimulationResult] = {}
    with pool_cls(max_workers=workers) as pool:
        futures = {
            pool.submit(
                _run_combo,
                make_cluster,
                make,
                make_jobs,
                s,
                schedule_interval,
                max_time,
                fault_profile,
                churn_seed,
            ): (name, s)
            for name, make, s in combos
        }
        for fut in as_completed(futures):
            out[futures[fut]] = fut.result()
    return out
