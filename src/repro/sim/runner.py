"""High-level simulation entry point.

``run_simulation`` is the one-call public API: give it a cluster, a
scheduler and a workload, get a :class:`SimulationResult` back.  Jobs
must be freshly built per run (task state is mutated); use a factory
when comparing schedulers on "the same" workload — see
:func:`compare_schedulers`.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping

from repro.cluster.cluster import Cluster
from repro.schedulers.base import Scheduler
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import SimulationResult
from repro.workload.job import Job

__all__ = ["run_simulation", "compare_schedulers"]


def run_simulation(
    cluster: Cluster,
    scheduler: Scheduler,
    jobs: Iterable[Job],
    *,
    seed: int = 0,
    schedule_interval: float = 0.0,
    max_time: float = math.inf,
) -> SimulationResult:
    """Simulate ``jobs`` on ``cluster`` under ``scheduler``.

    ``schedule_interval`` selects slotted scheduling (the paper's trace
    simulator uses 5 s); 0 means event-driven like the YARN prototype.
    The ``seed`` fixes the straggler realizations: two schedulers run
    with the same seed see identical duration draws for identical
    placement sequences.
    """
    engine = SimulationEngine(
        cluster,
        scheduler,
        jobs,
        seed=seed,
        schedule_interval=schedule_interval,
        max_time=max_time,
    )
    return engine.run()


def compare_schedulers(
    make_cluster: Callable[[], Cluster],
    make_jobs: Callable[[], list[Job]],
    schedulers: Mapping[str, Callable[[], Scheduler]],
    *,
    seed: int = 0,
    schedule_interval: float = 0.0,
    max_time: float = math.inf,
) -> dict[str, SimulationResult]:
    """Run the same (freshly rebuilt) workload under several policies.

    Factories are required because jobs and clusters are stateful; each
    policy gets a pristine copy and the same duration seed.
    """
    results: dict[str, SimulationResult] = {}
    for name, make_sched in schedulers.items():
        results[name] = run_simulation(
            make_cluster(),
            make_sched(),
            make_jobs(),
            seed=seed,
            schedule_interval=schedule_interval,
            max_time=max_time,
        )
    return results
