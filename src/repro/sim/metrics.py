"""Per-job records and aggregate results of one simulation run.

The evaluation (Sec. 6) compares schedulers on: job flowtime (f_j − a_j,
the OPT objective), job running time (finish − first launch, Figs. 1,
4b, 5), resource usage (copy-seconds weighted by demand, Fig. 8b),
makespan, clone counts/fractions (Fig. 10b) and scheduling overhead
(Sec. 6.3.3).  Everything needed for those figures is captured here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.resources import Resources

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimulationEngine
    from repro.workload.job import Job

__all__ = ["JobRecord", "SimulationResult", "build_result"]


@dataclass(frozen=True)
class JobRecord:
    """Everything the figures need about one completed job."""

    job_id: int
    name: str
    arrival_time: float
    first_start_time: float
    finish_time: float
    num_phases: int
    num_tasks: int
    num_copies: int
    num_clones: int
    tasks_with_clones: int
    cpu_seconds: float
    mem_seconds: float

    @property
    def flowtime(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def running_time(self) -> float:
        return self.finish_time - self.first_start_time

    @property
    def wait_time(self) -> float:
        return self.first_start_time - self.arrival_time

    def normalized_usage(self, total: Resources) -> float:
        """Resource usage as in Fig. 8(b): CPU- and memory-seconds summed
        after normalizing each dimension by the cluster total."""
        return self.cpu_seconds / total.cpu + self.mem_seconds / total.mem


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of one (workload, scheduler) run."""

    scheduler_name: str
    records: tuple[JobRecord, ...]
    cluster_capacity: Resources
    avg_utilization: Resources
    clones_launched: int
    copies_launched: int
    simulated_time: float
    schedule_pass_seconds: tuple[float, ...]
    # Fault accounting (DESIGN.md §5.5) — all zero absent injection.
    faults_injected: int = 0
    copies_lost: int = 0
    recoveries_masked_by_clone: int = 0
    tasks_requeued: int = 0
    # Events processed by the engine (DESIGN.md §5.8) — part of the
    # bit-identity surface for session vs one-shot comparisons.
    events_processed: int = 0

    # ------------------------------------------------------------------
    # Vector accessors (sorted by job id so runs are comparable job-wise)
    # ------------------------------------------------------------------
    def flowtimes(self) -> np.ndarray:
        return np.array([r.flowtime for r in self.records])

    def running_times(self) -> np.ndarray:
        return np.array([r.running_time for r in self.records])

    def usages(self) -> np.ndarray:
        return np.array(
            [r.normalized_usage(self.cluster_capacity) for r in self.records]
        )

    # ------------------------------------------------------------------
    # Scalar aggregates
    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self.records)

    @property
    def total_flowtime(self) -> float:
        return float(self.flowtimes().sum())

    @property
    def mean_flowtime(self) -> float:
        # Empty workloads (idle service sessions) aggregate to 0.0
        # rather than a numpy nan/warning.
        if not self.records:
            return 0.0
        return float(self.flowtimes().mean())

    @property
    def mean_running_time(self) -> float:
        if not self.records:
            return 0.0
        return float(self.running_times().mean())

    @property
    def makespan(self) -> float:
        """Longest completion: max f_j − min a_j (Fig. 8 reports this)."""
        if not self.records:
            return 0.0
        finish = max(r.finish_time for r in self.records)
        arrive = min(r.arrival_time for r in self.records)
        return finish - arrive

    @property
    def total_usage(self) -> float:
        return float(self.usages().sum())

    @property
    def clone_task_fraction(self) -> float:
        """Fraction of tasks that had at least one clone (Fig. 10b)."""
        tasks = sum(r.num_tasks for r in self.records)
        cloned = sum(r.tasks_with_clones for r in self.records)
        return cloned / tasks if tasks else 0.0

    @property
    def mean_schedule_pass_ms(self) -> float:
        if not self.schedule_pass_seconds:
            return 0.0
        return 1e3 * float(np.mean(self.schedule_pass_seconds))

    @property
    def max_schedule_pass_ms(self) -> float:
        if not self.schedule_pass_seconds:
            return 0.0
        return 1e3 * float(np.max(self.schedule_pass_seconds))

    def deterministic(self) -> "SimulationResult":
        """Copy with host wall-clock fields cleared — the bit-identity
        comparison surface for session-vs-one-shot and checkpoint
        restore checks (``schedule_pass_seconds`` is perf_counter noise
        that legitimately differs between two runs of the same seed)."""
        return replace(self, schedule_pass_seconds=())

    def cumulative_flowtime_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(arrival-ordered job index, cumulative flowtime) — the series
        plotted in Fig. 7."""
        order = sorted(self.records, key=lambda r: r.arrival_time)
        flows = np.array([r.flowtime for r in order])
        return np.arange(1, len(order) + 1), np.cumsum(flows)

    def summary(self) -> dict[str, float]:
        out = {
            "jobs": float(self.num_jobs),
            "total_flowtime": self.total_flowtime,
            "mean_flowtime": self.mean_flowtime,
            "mean_running_time": self.mean_running_time,
            "makespan": self.makespan,
            "total_usage": self.total_usage,
            "clones": float(self.clones_launched),
            "clone_task_fraction": self.clone_task_fraction,
            "avg_cpu_utilization": self.avg_utilization.cpu,
            "avg_mem_utilization": self.avg_utilization.mem,
            "mean_schedule_pass_ms": self.mean_schedule_pass_ms,
        }
        # Fault keys appear only when faults fired, so no-fault summaries
        # stay byte-identical to a build without the fault subsystem.
        if self.faults_injected:
            out["faults_injected"] = float(self.faults_injected)
            out["copies_lost"] = float(self.copies_lost)
            out["recoveries_masked_by_clone"] = float(self.recoveries_masked_by_clone)
            out["tasks_requeued"] = float(self.tasks_requeued)
        return out


def record_for_job(job: "Job") -> JobRecord:
    """Build the per-job record from a finished job's task copies."""
    if job.finish_time is None:
        raise ValueError(f"job {job.job_id} has not finished")
    first_start = job.first_start_time()
    assert first_start is not None
    num_copies = 0
    num_clones = 0
    tasks_with_clones = 0
    cpu_seconds = 0.0
    mem_seconds = 0.0
    for phase in job.phases:
        for task in phase.tasks:
            num_copies += len(task.copies)
            clones_here = sum(1 for c in task.copies if c.is_clone)
            num_clones += clones_here
            if clones_here:
                tasks_with_clones += 1
            for c in task.copies:
                cpu_seconds += phase.demand.cpu * c.duration
                mem_seconds += phase.demand.mem * c.duration
    return JobRecord(
        job_id=job.job_id,
        name=job.name,
        arrival_time=job.arrival_time,
        first_start_time=first_start,
        finish_time=job.finish_time,
        num_phases=job.num_phases,
        num_tasks=job.num_tasks,
        num_copies=num_copies,
        num_clones=num_clones,
        tasks_with_clones=tasks_with_clones,
        cpu_seconds=cpu_seconds,
        mem_seconds=mem_seconds,
    )


def build_result(engine: "SimulationEngine") -> SimulationResult:
    records = tuple(
        record_for_job(j) for j in sorted(engine.finished_jobs, key=lambda j: j.job_id)
    )
    return SimulationResult(
        scheduler_name=engine.scheduler.name,
        records=records,
        cluster_capacity=engine.cluster.total_capacity,
        avg_utilization=engine.average_utilization(),
        clones_launched=engine.clones_launched,
        copies_launched=engine.copies_launched,
        simulated_time=engine.now,
        schedule_pass_seconds=tuple(engine.schedule_pass_seconds),
        faults_injected=engine.faults_injected,
        copies_lost=engine.copies_lost,
        recoveries_masked_by_clone=engine.recoveries_masked_by_clone,
        tasks_requeued=engine.tasks_requeued,
        events_processed=engine.events_processed,
    )
