"""The engine–scheduler action protocol.

Schedulers do not mutate the cluster imperatively; they emit *typed
actions* — :class:`Launch` and :class:`Kill` — that the engine validates
and applies through a single choke point
(:meth:`~repro.sim.engine.SimulationEngine.apply`).  Every applied
action is journaled as a frozen :class:`Decision` carrying the
simulated time, the event cause that opened the scheduling opportunity,
and the policy that decided — making a whole schedule an auditable,
serializable sequence of decisions, the representation the
competitive-analysis literature reasons about and the prerequisite for
batched application and multi-process sharding.

Three layers:

* **Actions** (`Launch`, `Kill`, plus the fault-injector's `Fail` /
  `Recover`) reference live simulation objects and are what policy code
  (or the deterministic fault processes of :mod:`repro.faults`)
  constructs and hands to the engine's ``apply``.
* **Decisions** are the serializable residue of an applied action: pure
  ints/floats/strs identifying the task/copy/server *structurally*
  (job id, phase index, task index, copy index), so a recorded decision
  can be re-resolved against a *fresh* cluster and workload.
* **DecisionTrace** is the bounded append-only journal.  It refuses to
  grow past ``maxlen`` (raising :class:`TraceLimitExceeded`) rather
  than silently dropping decisions — a truncated trace could never
  replay, so the bound is a guard rail, not a ring buffer.

Validation failures raise :class:`InvalidAction`, a structured error
naming the offending task/copy/server, *before* any state (including
the duration RNG) is touched — a rejected action leaves the engine
bit-identical to before the attempt.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.server import Server
    from repro.workload.task import Task, TaskCopy

__all__ = [
    "Launch",
    "Kill",
    "Fail",
    "Recover",
    "Action",
    "FAULT_POLICY",
    "Decision",
    "DecisionTrace",
    "InvalidAction",
    "TraceLimitExceeded",
    "TRACE_SCHEMA",
    "DEFAULT_TRACE_MAXLEN",
]

#: JSONL schema tag written in the header line of an exported trace.
TRACE_SCHEMA = "repro-decision-trace/v1"

#: ``Decision.policy`` value for journal entries originated by the
#: fault injector rather than a scheduling policy.
FAULT_POLICY = "fault-injector"

#: Default bound on a DecisionTrace.  Generous (a 10k-job trace-sim run
#: stays well under 1M decisions) yet finite, so a runaway scheduler
#: cannot silently eat the host's memory through the journal.
DEFAULT_TRACE_MAXLEN = 2_000_000


# ======================================================================
# Actions — what schedulers emit
# ======================================================================
@dataclass(frozen=True)
class Launch:
    """Place one copy of ``task`` on ``server``.

    ``clone=True`` marks the copy as an extra (cloned) attempt; the
    engine also auto-promotes a launch of an already-running task to a
    clone, mirroring the historical ``ClusterView.launch`` semantics.
    """

    task: "Task"
    server: "Server"
    clone: bool = False


@dataclass(frozen=True)
class Kill:
    """Terminate a *live* task copy and release its reservation.

    Killing a copy that already finished or was already killed is a
    protocol violation — the engine raises :class:`InvalidAction`
    instead of silently corrupting occupancy accounting.
    """

    copy: "TaskCopy"


@dataclass(frozen=True)
class Fail:
    """Mark a server failed (crash semantics, :mod:`repro.faults`).

    The engine kills every resident copy (engine-internal kills, like
    first-copy-wins preemption), zeroes the server's availability in
    both the scalar bookkeeping and the vectorized mirror, and re-queues
    tasks left with no live copy as PENDING.  Failing an already-down
    server raises :class:`InvalidAction`.
    """

    server: "Server"


@dataclass(frozen=True)
class Recover:
    """Return a failed server to service with its full capacity.

    Recovering a server that is already up raises
    :class:`InvalidAction`.
    """

    server: "Server"


Action = Union[Launch, Kill, Fail, Recover]


# ======================================================================
# Errors
# ======================================================================
class InvalidAction(RuntimeError):
    """A typed action failed validation at the engine choke point.

    Subclasses ``RuntimeError`` for continuity with the pre-protocol
    engine errors; carries structured fields naming the entities
    involved so tooling (and tests) need not parse the message.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str,
        time: float,
        task_uid: tuple[int, int, int] | None = None,
        copy_index: int | None = None,
        server_id: int | None = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.time = time
        self.task_uid = task_uid
        self.copy_index = copy_index
        self.server_id = server_id


class TraceLimitExceeded(RuntimeError):
    """The bounded DecisionTrace refused to grow past its ``maxlen``."""

    def __init__(self, maxlen: int) -> None:
        super().__init__(
            f"decision trace exceeded its bound of {maxlen} decisions — "
            "raise trace_maxlen or disable recording for this run"
        )
        self.maxlen = maxlen


# ======================================================================
# Decisions — the serializable journal entries
# ======================================================================
@dataclass(frozen=True)
class Decision:
    """One applied action, with enough metadata to replay and audit it.

    ``point`` is the ordinal of the scheduler entry point (arrival /
    task-finish / job-finish hook or schedule pass) during which the
    decision was made; the replay engine re-opens the same entry points
    in the same order, so ``point`` pins each decision to its exact
    scheduling opportunity without relying on timestamps (several
    passes can share one simulated time).
    """

    seq: int          # position in the trace (0-based, dense)
    time: float       # simulated time of application
    point: int        # decision-point ordinal (see above)
    cause: str        # entry point kind: job_arrival | task_finish | job_finish |
                      # schedule | server_fail | server_recover | copy_fail
    policy: str       # scheduler name that emitted the action (or FAULT_POLICY)
    kind: str         # "launch" | "kill" | "fail" | "recover"
    job_id: int
    phase_index: int
    task_index: int
    server_id: int
    clone: bool = False
    copy_index: int | None = None  # which task.copies[...] a Kill targets
    # Shard provenance (DESIGN.md §5.10): which server shard the decision
    # touched, None in an unsharded session.  Excluded from equality so a
    # trace recorded at K=4 replays bit-for-bit on any K — the shard
    # column is audit metadata, not part of the decision's identity.
    shard: int | None = field(default=None, compare=False)

    @property
    def task_uid(self) -> tuple[int, int, int]:
        return (self.job_id, self.phase_index, self.task_index)

    def to_json(self) -> str:
        d = asdict(self)
        if d.get("shard") is None:
            del d["shard"]  # unsharded lines stay byte-identical to v1 traces
        return json.dumps(d, separators=(",", ":"), sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "Decision":
        return Decision(**json.loads(line))


@dataclass
class DecisionTrace:
    """Bounded, append-only journal of applied decisions.

    ``meta`` carries run provenance (policy name, seed, schedule
    interval, workload descriptors, expected results …) so an exported
    trace is self-describing; :mod:`repro.sim.replay` consumes it.
    """

    maxlen: int = DEFAULT_TRACE_MAXLEN
    meta: dict = field(default_factory=dict)
    _decisions: list[Decision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.maxlen < 1:
            raise ValueError("trace maxlen must be positive")

    # -- journal protocol ----------------------------------------------
    def append(self, decision: Decision) -> None:
        if len(self._decisions) >= self.maxlen:
            raise TraceLimitExceeded(self.maxlen)
        self._decisions.append(decision)

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._decisions)

    def __getitem__(self, i: int) -> Decision:
        return self._decisions[i]

    @property
    def decisions(self) -> tuple[Decision, ...]:
        return tuple(self._decisions)

    # -- JSONL export / import -----------------------------------------
    def dump_jsonl(self, path: str | Path) -> None:
        """Write header (schema + meta) plus one decision per line."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            header = {"schema": TRACE_SCHEMA, "maxlen": self.maxlen, "meta": self.meta}
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for d in self._decisions:
                fh.write(d.to_json() + "\n")

    @staticmethod
    def load_jsonl(path: str | Path) -> "DecisionTrace":
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line.strip():
                raise ValueError(f"{path}: empty trace file")
            header = json.loads(header_line)
            if header.get("schema") != TRACE_SCHEMA:
                raise ValueError(
                    f"{path}: unknown trace schema {header.get('schema')!r} "
                    f"(expected {TRACE_SCHEMA!r})"
                )
            trace = DecisionTrace(
                maxlen=int(header.get("maxlen", DEFAULT_TRACE_MAXLEN)),
                meta=dict(header.get("meta", {})),
            )
            for line in fh:
                if line.strip():
                    trace.append(Decision.from_json(line))
        return trace
