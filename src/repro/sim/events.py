"""Event types and the priority queue driving the simulation.

The paper models a time-slotted system (Sec. 3); the engine is
event-driven with an optional slot quantization of scheduling decisions
(Sec. 6.3 uses 5-second slots).  Three event kinds exist:

* ``JOB_ARRIVAL`` — job j becomes known to the scheduler at a_j;
* ``COPY_FINISH`` — a task copy reaches its sampled duration;
* ``SCHEDULE_TICK`` — a slot boundary at which scheduling decisions are
  made (only used when the engine runs in slotted mode).

Ties at equal timestamps are broken so state-changing events (finishes,
arrivals) are processed before the tick that should observe them.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    # Numeric order = processing priority at equal timestamps.
    COPY_FINISH = 0
    JOB_ARRIVAL = 1
    SCHEDULE_TICK = 2


@dataclass(order=True)
class Event:
    time: float
    kind: EventKind
    seq: int = field(compare=True, default=0)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A heap of events with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        ev = Event(time, kind, next(self._seq), payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
