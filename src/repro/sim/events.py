"""Event types and the priority queue driving the simulation.

The paper models a time-slotted system (Sec. 3); the engine is
event-driven with an optional slot quantization of scheduling decisions
(Sec. 6.3 uses 5-second slots).  The workload event kinds:

* ``JOB_ARRIVAL`` — job j becomes known to the scheduler at a_j;
* ``COPY_FINISH`` — a task copy reaches its sampled duration;
* ``SCHEDULE_TICK`` — a slot boundary at which scheduling decisions are
  made (only used when the engine runs in slotted mode).

The fault-injection subsystem (:mod:`repro.faults`) adds its own kinds,
scheduled by the seeded failure processes:

* ``COPY_FAIL`` — one task copy dies mid-run (its server stays up);
* ``SERVER_FAIL`` / ``SERVER_RECOVER`` — a server crashes (killing every
  resident copy) and later rejoins with full capacity;
* ``SERVER_SLOW_START`` / ``SERVER_SLOW_END`` — a transient background-
  load window multiplying the server's slowdown factor.

Ties at equal timestamps are broken so state-changing events (finishes,
arrivals, faults) are processed before the tick that should observe
them.  The relative order of the original three kinds (COPY_FINISH <
JOB_ARRIVAL < SCHEDULE_TICK) is preserved, so runs without fault
injection break ties exactly as they did before the fault kinds existed.

Drain API
---------

The queue is the single source of event ordering; simulation logic must
consume it only through :meth:`EventQueue.pop`, :meth:`EventQueue.pop_batch`
and the :meth:`EventQueue.peek` family (repro-lint RL008 rejects direct
``_heap`` iteration elsewhere).  ``pop_batch`` drains every event sharing
the earliest timestamp in one call, preserving the exact (time, kind,
seq) order ``pop`` would produce — the engine uses it to coalesce
same-instant capacity releases into a single mirror delta.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["EventKind", "BASE_EVENT_KINDS", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    # Numeric order = processing priority at equal timestamps.  A copy
    # finishing exactly when it would fail counts as finished (FINISH
    # precedes FAIL); every fault lands before the tick observing it.
    COPY_FINISH = 0
    JOB_ARRIVAL = 1
    COPY_FAIL = 2
    SERVER_FAIL = 3
    SERVER_RECOVER = 4
    SERVER_SLOW_START = 5
    SERVER_SLOW_END = 6
    SCHEDULE_TICK = 7


#: The kinds every simulation uses; the remaining members only appear
#: when a :class:`repro.faults.FaultInjector` is attached to the engine.
BASE_EVENT_KINDS = (
    EventKind.COPY_FINISH,
    EventKind.JOB_ARRIVAL,
    EventKind.SCHEDULE_TICK,
)


@dataclass(order=True)
class Event:
    time: float
    kind: EventKind
    seq: int = field(compare=True, default=0)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A heap of events with stable FIFO tie-breaking.

    Heap entries are ``(time, kind, seq, Event)`` tuples rather than the
    events themselves: tuple comparison is C-speed and short-circuits on
    ``time``, where the dataclass ``__lt__`` was a measured hotspot in
    long runs (millions of comparisons).  ``seq`` is unique, so the
    ``Event`` slot is never compared.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        ev = Event(time, kind, next(self._seq), payload)
        heapq.heappush(self._heap, (time, kind, ev.seq, ev))
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[3]

    def pop_batch(self) -> list[Event]:
        """Pop every event sharing the earliest timestamp, in pop order.

        Equivalent to repeated :meth:`pop` while :meth:`peek_time` equals
        the first popped event's time; callers that push new events while
        processing a batch must re-check :meth:`peek_key` against the
        remaining batch entries to preserve exact per-event order (the
        engine's drain loop does).
        """
        if not self._heap:
            raise IndexError("pop from empty event queue")
        heap = self._heap
        t = heap[0][0]
        batch = [heapq.heappop(heap)[3]]
        while heap and heap[0][0] == t:
            batch.append(heapq.heappop(heap)[3])
        return batch

    def peek(self) -> Optional[Event]:
        return self._heap[0][3] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Earliest pending timestamp, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def peek_key(self) -> Optional[tuple[float, int, int]]:
        """The (time, kind, seq) ordering key of the head event."""
        return self._heap[0][:3] if self._heap else None

    def has_kind(self, kind: EventKind) -> bool:
        """Whether any pending event has the given kind.

        Part of the drain API so callers need not touch ``_heap``
        (RL008); the engine uses it to decide whether a slotted
        session's tick chain is still armed before re-arming it on an
        online ingest.
        """
        return any(entry[1] == kind for entry in self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
