"""Event types and the priority queue driving the simulation.

The paper models a time-slotted system (Sec. 3); the engine is
event-driven with an optional slot quantization of scheduling decisions
(Sec. 6.3 uses 5-second slots).  The workload event kinds:

* ``JOB_ARRIVAL`` — job j becomes known to the scheduler at a_j;
* ``COPY_FINISH`` — a task copy reaches its sampled duration;
* ``SCHEDULE_TICK`` — a slot boundary at which scheduling decisions are
  made (only used when the engine runs in slotted mode).

The fault-injection subsystem (:mod:`repro.faults`) adds its own kinds,
scheduled by the seeded failure processes:

* ``COPY_FAIL`` — one task copy dies mid-run (its server stays up);
* ``SERVER_FAIL`` / ``SERVER_RECOVER`` — a server crashes (killing every
  resident copy) and later rejoins with full capacity;
* ``SERVER_SLOW_START`` / ``SERVER_SLOW_END`` — a transient background-
  load window multiplying the server's slowdown factor.

Ties at equal timestamps are broken so state-changing events (finishes,
arrivals, faults) are processed before the tick that should observe
them.  The relative order of the original three kinds (COPY_FINISH <
JOB_ARRIVAL < SCHEDULE_TICK) is preserved, so runs without fault
injection break ties exactly as they did before the fault kinds existed.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["EventKind", "BASE_EVENT_KINDS", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    # Numeric order = processing priority at equal timestamps.  A copy
    # finishing exactly when it would fail counts as finished (FINISH
    # precedes FAIL); every fault lands before the tick observing it.
    COPY_FINISH = 0
    JOB_ARRIVAL = 1
    COPY_FAIL = 2
    SERVER_FAIL = 3
    SERVER_RECOVER = 4
    SERVER_SLOW_START = 5
    SERVER_SLOW_END = 6
    SCHEDULE_TICK = 7


#: The kinds every simulation uses; the remaining members only appear
#: when a :class:`repro.faults.FaultInjector` is attached to the engine.
BASE_EVENT_KINDS = (
    EventKind.COPY_FINISH,
    EventKind.JOB_ARRIVAL,
    EventKind.SCHEDULE_TICK,
)


@dataclass(order=True)
class Event:
    time: float
    kind: EventKind
    seq: int = field(compare=True, default=0)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A heap of events with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        ev = Event(time, kind, next(self._seq), payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
