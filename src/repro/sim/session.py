"""Long-lived session driver: step loop + periodic side effects.

:class:`SimulationSession` wraps a :class:`~repro.sim.engine.
SimulationEngine` with the cadenced side effects a service needs —
periodic checkpoints and live metrics publication — while leaving the
simulation semantics entirely to the engine.  Cadences are measured in
**simulated** seconds, so the side-effect schedule is deterministic:
two runs of the same seed checkpoint at the same instants, and a
restored run re-publishes from the same boundaries.

The driver is also what the `python -m repro serve` loop and the
service-smoke CI gate share; tests drive it directly with in-memory
arrival sources.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.sim.checkpoint import save_checkpoint
from repro.sim.metrics import SimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimulationEngine

__all__ = ["SimulationSession"]


class SimulationSession:
    """Drives an engine to completion with periodic checkpoint/metrics.

    Parameters
    ----------
    engine:
        The session engine (any arrival source).
    checkpoint_path / checkpoint_every:
        When both set, :func:`~repro.sim.checkpoint.save_checkpoint`
        overwrites ``checkpoint_path`` (atomically) each time simulated
        time crosses a multiple of ``checkpoint_every`` seconds.
    on_metrics / metrics_every:
        ``on_metrics(engine)`` is called on the same kind of simulated
        cadence — publishers live in :mod:`repro.observability.live`.
        With ``metrics_every=0`` it is called once per processed
        instant (every step).
    """

    def __init__(
        self,
        engine: "SimulationEngine",
        *,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: float = 0.0,
        on_metrics: Callable[["SimulationEngine"], None] | None = None,
        metrics_every: float = 0.0,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if metrics_every < 0:
            raise ValueError("metrics_every must be non-negative")
        self.engine = engine
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_every = checkpoint_every
        self.on_metrics = on_metrics
        self.metrics_every = metrics_every
        self.checkpoints_written = 0
        # Cadence grids are kept as *integer boundary indices* into the
        # multiplicative grid {k·every}: the float boundary is always
        # recomputed as k*every, never accumulated with +=, so a session
        # revived at any instant lands on bit-identical boundaries (an
        # accumulated grid drifts ulps away from the restore grid and
        # double-fires or skips a cadence point).
        self._ckpt_k = self._first_index(checkpoint_every)
        self._metrics_k = self._first_index(metrics_every)

    def _first_index(self, every: float) -> int:
        """Smallest k with ``k*every`` strictly after the engine clock.

        ``int(now // every) + 1`` alone is not strictly-after in float
        arithmetic: the product can round back onto the clock (e.g.
        ``50 * 0.1 == 5.0`` with ``now == 5.0``), which made a cadence
        point coinciding with an event time fire twice.  The correction
        loop (at most a step or two) restores the strict inequality.
        """
        if every <= 0:
            return 0
        now = self.engine.now
        k = int(now // every) + 1
        while k * every <= now:
            k += 1
        return k

    @property
    def _next_checkpoint(self) -> float:
        """Next checkpoint boundary (inf when cadence disabled)."""
        if self.checkpoint_every <= 0:
            return float("inf")
        return self._ckpt_k * self.checkpoint_every

    @property
    def _next_metrics(self) -> float:
        if self.metrics_every <= 0:
            return float("inf")
        return self._metrics_k * self.metrics_every

    # ------------------------------------------------------------------
    def _after_step(self) -> None:
        now = self.engine.now
        if self.checkpoint_path is not None and self.checkpoint_every > 0:
            if now >= self._ckpt_k * self.checkpoint_every:
                save_checkpoint(self.engine, self.checkpoint_path)
                self.checkpoints_written += 1
                while self._ckpt_k * self.checkpoint_every <= now:
                    self._ckpt_k += 1
        if self.on_metrics is not None:
            if self.metrics_every <= 0 or now >= self._metrics_k * self.metrics_every:
                self.on_metrics(self.engine)
                if self.metrics_every > 0:
                    while self._metrics_k * self.metrics_every <= now:
                        self._metrics_k += 1

    def pump(self) -> int:
        """Step the engine until no runnable event remains, applying the
        cadenced side effects after each instant; returns instants run.

        With a pull arrival source the engine blocks inside arrival
        processing while waiting for the next job, so one ``pump`` call
        rides out an unbounded stream; it returns at end-of-stream once
        the queued work drains (or immediately for an idle session).
        """
        engine = self.engine
        engine.start()
        instants = 0
        while engine.step():
            instants += 1
            self._after_step()
        return instants

    def run(self) -> SimulationResult:
        """Pump to completion and finalize; writes a final checkpoint
        (when configured) and a final metrics publication so consumers
        always observe the end-of-run state."""
        self.pump()
        if self.checkpoint_path is not None:
            save_checkpoint(self.engine, self.checkpoint_path)
            self.checkpoints_written += 1
        result = self.engine.finalize()
        if self.on_metrics is not None:
            self.on_metrics(self.engine)
        return result
