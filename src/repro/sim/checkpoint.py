"""Deterministic checkpoint/restore of a live simulation session.

The persistence layer of the session API (DESIGN.md §5.8).  A
checkpoint captures the *complete* engine state between two instants —
event queue (including its sequence counter), cluster and its SoA
placement mirror, scheduler (priorities, caches), all three RNG streams
(duration, policy, churn), the fault injector, the clone-budget ledger,
the decision trace and observability bundle — so that

    restore(checkpoint(engine at t)) → drain → finalize

is bit-identical to letting the original engine run uninterrupted.

Determinism argument
--------------------

The engine's evolution from one instant to the next is a pure function
of (event queue contents, mutable simulation state, RNG stream states):
every wall-clock read is segregated into profiling fields that never
feed back into decisions (repro-lint RL010 enforces this), and every
decision flows through the ``apply`` choke point.  Pickling snapshots
exactly that closure of state — aliasing included, because pickle's
memo preserves object identity (a task copy referenced by both a server
and the event queue revives as one object, not two).  The only
deliberately excluded state is host-specific: the observability clock
closure (rebound to the revived engine by ``__setstate__``) and the
wall-time anchor of the run (``finalize`` after restore skips the
wall_run gauge).  Pull-based arrival sources serialize their consumed
count and re-attach the byte stream after restore; the engine pulls the
next job at exactly the same decision point either way.

Checkpoints are *internal* state snapshots built on :mod:`pickle`: load
only files you produced (the standard pickle caveat).  The envelope
carries a format tag and a state fingerprint so a truncated or foreign
file fails loudly instead of reviving garbage.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimulationEngine

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointInfo",
    "checkpoint_bytes",
    "restore_bytes",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_info",
]

#: Format tag in the envelope; bumped on any layout change.
CHECKPOINT_FORMAT = "repro-checkpoint-v1"

#: Fixed pickle protocol so checkpoints written by any supported
#: interpreter (3.10–3.12) load on any other.
_PROTOCOL = 4


@dataclass(frozen=True)
class CheckpointInfo:
    """Summary metadata stored beside (and readable without) the state."""

    format: str
    sim_time: float
    events_processed: int
    jobs_total: int
    jobs_finished: int
    jobs_active: int
    arrivals_consumed: int
    scheduler: str
    digest: str
    # Shard count of the frozen session (DESIGN.md §5.10).  Defaults to
    # 1 so v1 checkpoints written before sharding still summarize.
    shards: int = 1

    def to_dict(self) -> dict:
        return {
            "format": self.format,
            "sim_time": self.sim_time,
            "events_processed": self.events_processed,
            "jobs_total": self.jobs_total,
            "jobs_finished": self.jobs_finished,
            "jobs_active": self.jobs_active,
            "arrivals_consumed": self.arrivals_consumed,
            "scheduler": self.scheduler,
            "digest": self.digest,
            "shards": self.shards,
        }


def _info_for(engine: "SimulationEngine", digest: str) -> CheckpointInfo:
    return CheckpointInfo(
        format=CHECKPOINT_FORMAT,
        sim_time=engine.now,
        events_processed=engine.events_processed,
        jobs_total=len(engine.jobs),
        jobs_finished=len(engine.finished_jobs),
        jobs_active=len(engine.active_jobs),
        arrivals_consumed=engine.arrivals.consumed,
        scheduler=engine.scheduler.name,
        digest=digest,
        shards=getattr(engine, "shards", 1),
    )


def checkpoint_bytes(engine: "SimulationEngine") -> tuple[bytes, CheckpointInfo]:
    """Serialize a session to bytes; returns ``(payload, info)``.

    The engine must be between instants (not inside ``step()``) — every
    public session increment leaves it there.
    """
    state = pickle.dumps(engine, protocol=_PROTOCOL)
    digest = hashlib.sha256(state).hexdigest()
    info = _info_for(engine, digest)
    buf = io.BytesIO()
    pickle.dump(
        {"format": CHECKPOINT_FORMAT, "info": info.to_dict(), "state": state},
        buf,
        protocol=_PROTOCOL,
    )
    return buf.getvalue(), info


def restore_bytes(payload: bytes) -> "SimulationEngine":
    """Revive a session from :func:`checkpoint_bytes` output."""
    envelope = pickle.loads(payload)
    if not isinstance(envelope, dict) or envelope.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"not a {CHECKPOINT_FORMAT} checkpoint "
            f"(format={envelope.get('format') if isinstance(envelope, dict) else None!r})"
        )
    state = envelope["state"]
    digest = hashlib.sha256(state).hexdigest()
    if digest != envelope["info"]["digest"]:
        raise ValueError("checkpoint state digest mismatch (truncated or corrupted)")
    return pickle.loads(state)


def save_checkpoint(engine: "SimulationEngine", path: str | Path) -> CheckpointInfo:
    """Write a checkpoint file atomically (tmp + rename); returns info.

    The rename makes a crash mid-write leave either the previous
    checkpoint or the new one, never a torn file — the service loop
    overwrites one path periodically and relies on this.
    """
    payload, info = checkpoint_bytes(engine)
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    tmp.replace(path)
    return info


def load_checkpoint(path: str | Path) -> "SimulationEngine":
    """Revive a session from a checkpoint file."""
    return restore_bytes(Path(path).read_bytes())


def checkpoint_info(path: str | Path) -> CheckpointInfo:
    """Read only the metadata summary of a checkpoint file."""
    envelope = pickle.loads(Path(path).read_bytes())
    if not isinstance(envelope, dict) or envelope.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"not a {CHECKPOINT_FORMAT} checkpoint")
    return CheckpointInfo(**envelope["info"])
