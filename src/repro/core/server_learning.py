"""Online learning of straggler-prone servers — the paper's future work.

The conclusion of the paper states: "As future works, we plan to apply
online learning methods to quickly identify those servers that can
easily lead to stragglers."  This module implements that extension:

* :class:`StragglerServerTracker` — an online estimator of each
  server's slowdown.  Every finished (or killed) task copy provides one
  observation: its realized duration divided by its phase's mean θ.
  Per-server estimates are exponentially-weighted averages, which track
  drifting background load; a confidence count gates decisions until
  enough samples accumulated.
* :class:`LearningDollyMPScheduler` — DollyMP with placement scores
  down-weighted by the learned slowdown, so new tasks and clones avoid
  servers currently identified as straggler-prone.  The tracker only
  *reads* finished tasks and steers scores; every actual placement
  still flows through the action protocol inherited from DollyMP, so
  learning runs record and replay like any other policy.

The ablation benchmark ``benchmarks/test_ablation_learning.py``
quantifies the benefit on a cluster with drifting per-server slowdowns.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.cluster.server import Server
from repro.core.online import DollyMPScheduler
from repro.workload.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView

__all__ = ["StragglerServerTracker", "LearningDollyMPScheduler"]


class StragglerServerTracker:
    """Online estimator of per-server slowdown, robust to the censoring
    that first-copy-wins cloning introduces.

    Two signals are combined:

    * **Duration signal** — each *winning* copy contributes
      ``duration / θ`` (its realized time relative to the phase mean);
      per-server log-domain EWMAs track a geometric mean, which resists
      the heavy-tailed straggler noise.  This signal alone is
      selection-biased: a slow server's copies rarely win, and when they
      do it is on lucky draws, so its duration estimate reads ≈1.
    * **Win-rate signal** — every ended copy of a contested task (one
      that ran k ≥ 2 simultaneous copies) contributes an *expected* win
      credit of 1/k to its server; actual wins are counted separately.
      A server that systematically wins less often than expected is
      slow, regardless of what its rare wins looked like.  The ratio of
      expected to (smoothed) observed wins multiplies the duration
      estimate, capped to avoid runaway on tiny samples.

    Both EWMAs make the tracker follow *drifting* background load.
    """

    #: Cap on the win-rate multiplier (protects tiny-sample servers).
    MAX_RATE_FACTOR = 16.0

    def __init__(self, *, alpha: float = 0.1, min_samples: int = 5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.alpha = alpha
        self.min_samples = min_samples
        self._log_estimate: dict[int, float] = {}
        self._count: dict[int, int] = {}
        self._contested: dict[int, int] = {}
        self._expected_wins: dict[int, float] = {}
        self._wins: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe(self, server_id: int, duration: float, theta: float) -> None:
        """Record one *uncensored* copy duration (a winning copy)."""
        if duration <= 0 or theta <= 0:
            raise ValueError("duration and theta must be positive")
        x = math.log(duration / theta)
        if server_id not in self._log_estimate:
            self._log_estimate[server_id] = x
            self._count[server_id] = 1
            return
        self._log_estimate[server_id] = (
            (1.0 - self.alpha) * self._log_estimate[server_id] + self.alpha * x
        )
        self._count[server_id] += 1

    def observe_task(self, task: Task) -> None:
        """Record every ended copy of a finished task.

        Winners feed the duration signal; all copies of contested tasks
        feed the win-rate signal (killed copies are censored — their
        durations are NOT used, which would bias estimates, but their
        *losses* are exactly the evidence that identifies slow servers).
        """
        theta = task.phase.theta
        k = len(task.copies)
        for copy in task.copies:
            sid = copy.server_id
            if copy.finished:
                self.observe(sid, copy.duration, theta)
            if k >= 2:
                self._contested[sid] = self._contested.get(sid, 0) + 1
                self._expected_wins[sid] = self._expected_wins.get(sid, 0.0) + 1.0 / k
                if copy.finished:
                    self._wins[sid] = self._wins.get(sid, 0) + 1

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def samples(self, server_id: int) -> int:
        """Uncensored (winning-copy) duration observations."""
        return self._count.get(server_id, 0)

    def contested(self, server_id: int) -> int:
        """Ended copies of this server that raced ≥1 sibling."""
        return self._contested.get(server_id, 0)

    def win_rate_factor(self, server_id: int) -> float:
        """Expected-over-observed win ratio (≥1 means under-winning)."""
        if self._contested.get(server_id, 0) < self.min_samples:
            return 1.0
        expected = self._expected_wins.get(server_id, 0.0)
        observed = self._wins.get(server_id, 0) + 0.5  # smoothing
        return min(max(expected / observed, 1.0), self.MAX_RATE_FACTOR)

    def estimated_slowdown(self, server_id: int) -> float:
        """Combined slowdown estimate (1.0 until enough samples)."""
        if self._count.get(server_id, 0) >= self.min_samples:
            base = math.exp(self._log_estimate[server_id])
        else:
            base = 1.0
        return base * self.win_rate_factor(server_id)

    def risky_servers(self, threshold: float = 1.5) -> list[int]:
        """Servers whose estimated slowdown exceeds ``threshold``."""
        seen = set(self._log_estimate) | set(self._contested)
        return sorted(
            sid for sid in seen if self.estimated_slowdown(sid) > threshold
        )


class LearningDollyMPScheduler(DollyMPScheduler):
    """DollyMP + straggler-server avoidance.

    Placement scores are multiplied by ``1 / estimate(server)^bias`` so
    tasks drift away from servers the tracker has identified as slow;
    ``bias`` controls how aggressively (0 = plain DollyMP).
    """

    def __init__(
        self,
        *,
        bias: float = 1.0,
        tracker: StragglerServerTracker | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if bias < 0:
            raise ValueError("bias must be non-negative")
        self.bias = bias
        self.tracker = tracker if tracker is not None else StragglerServerTracker()
        self.name = f"Learning{self.name}"

    def on_task_finish(self, task: Task, view: "ClusterView") -> None:
        super().on_task_finish(task, view)  # keep the measure cache honest
        self.tracker.observe_task(task)

    def server_weight(self, server: Server) -> float:
        est = self.tracker.estimated_slowdown(server.server_id)
        return est ** (-self.bias)

    def schedule(self, view: "ClusterView") -> None:
        # Reuse Algorithm 2 wholesale, injecting the learned weights into
        # the placement loop (see DollyMPScheduler.schedule).
        self._server_weight_hook = self.server_weight
        super().schedule(view)
