"""DollyMP core: knapsack oracle, volume/priority computation (Alg. 1),
the online scheduler (Alg. 2), the cloning policy, and the theoretical
analyses of Secs. 4.1 and 4.2."""

from repro.core.knapsack import max_count_knapsack, max_count_knapsack_exact
from repro.core.volume import (
    dominant_share,
    phase_dominant_share,
    job_volume,
    job_effective_length,
    JobMeasure,
    measure_job,
    measure_single_task_job,
)
from repro.core.transient import compute_priorities, priority_groups
from repro.core.cloning_policy import CloningPolicy, delay_assignment_map
from repro.core.online import DollyMPScheduler
from repro.core.server_learning import LearningDollyMPScheduler, StragglerServerTracker
from repro.core.estimation import EstimatingDollyMPScheduler, PhaseStatsEstimator
from repro.core.locality import (
    assign_tasks_to_containers,
    best_locality_copy,
    clone_placement_order,
)
from repro.core.theory import (
    flow_schedule_all_then_clone_smallest,
    flow_serial_maximal_cloning,
    flow_two_clones_smallest_first,
    theorem1_bound_holds,
)

__all__ = [
    "max_count_knapsack",
    "max_count_knapsack_exact",
    "dominant_share",
    "phase_dominant_share",
    "job_volume",
    "job_effective_length",
    "JobMeasure",
    "measure_job",
    "measure_single_task_job",
    "compute_priorities",
    "priority_groups",
    "CloningPolicy",
    "delay_assignment_map",
    "DollyMPScheduler",
    "LearningDollyMPScheduler",
    "StragglerServerTracker",
    "EstimatingDollyMPScheduler",
    "PhaseStatsEstimator",
    "assign_tasks_to_containers",
    "best_locality_copy",
    "clone_placement_order",
    "flow_schedule_all_then_clone_smallest",
    "flow_serial_maximal_cloning",
    "flow_two_clones_smallest_first",
    "theorem1_bound_holds",
]
