"""DollyMP's cloning policy (Secs. 4.1, 5 and Cor. 4.1).

Design facts from the paper:

* clones are launched **only after** no new (normal) task can be
  scheduled, using leftover resources, in the same priority order as
  normal scheduling (Sec. 5);
* each running task keeps **at most two extra clones** (three concurrent
  copies) — concavity of h and two-replica data locality both argue
  against more (Sec. 5);
* cloning priority goes to *small* jobs: "DollyMP chooses to schedule
  extra cloned copies for small jobs when the total amount of consumed
  resources under cloning is less than the resource demand of other
  jobs" (Sec. 4.1) — we expose this as a clone *budget*: live clones may
  occupy at most a δ-fraction of the cluster (δ = 0.3 in the paper's
  experiment parameterization, Sec. 6.1);
* Corollary 4.1's refinement launches r_j − 1 clones where r_j is the
  least copy count whose speedup pulls the job into its length category.

``delay_assignment_map`` implements the Sec. 5.2 policy for wiring the
outputs of upstream copies to downstream clones.

This module only *decides* (may_clone / budget_remaining); the actual
clone launches are emitted by the placement loops as typed
:class:`~repro.sim.actions.Launch` actions with ``clone=True``, so
every cloning decision lands in the engine's replayable journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.resources import Resources, sum_resources
from repro.workload.speedup import required_clones
from repro.workload.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster

__all__ = ["CloningPolicy", "clone_resource_occupancy", "delay_assignment_map"]


@dataclass(frozen=True)
class CloningPolicy:
    """Tunables of DollyMP's cloning behaviour.

    ``max_clones`` is the number of *extra* copies per task: 0 disables
    cloning (DollyMP⁰), 1 and 2 are the paper's DollyMP¹/DollyMP², and 3
    is the DollyMP³ ablation of Fig. 9.
    """

    max_clones: int = 2
    #: δ — ceiling on the cluster fraction (per dimension, dominant) that
    #: live clones may occupy. 1.0 disables the budget.
    budget_fraction: float = 0.3
    #: When True, cap a task's copies at the Corollary 4.1 count r_j for
    #: its job's length category instead of always cloning to the max.
    use_category_target: bool = False

    def __post_init__(self) -> None:
        if self.max_clones < 0:
            raise ValueError("max_clones must be non-negative")
        if not 0.0 <= self.budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    @property
    def max_copies(self) -> int:
        """Maximum concurrent copies per task (original included)."""
        return self.max_clones + 1

    def copies_allowed(self, task: Task, *, category_length: float | None = None) -> int:
        """How many total copies this task may hold right now."""
        cap = self.max_copies
        if self.use_category_target and category_length is not None:
            r = required_clones(
                task.phase.theta, category_length, task.phase.speedup, max_copies=cap
            )
            cap = min(cap, r if r is not None else cap)
        return cap

    def may_clone(self, task: Task, *, category_length: float | None = None) -> bool:
        """Whether ``task`` is eligible for one more clone (ignoring the
        budget and cluster capacity, which the scheduler checks)."""
        if self.max_clones == 0:
            return False
        live = task.num_live_copies
        if live == 0:
            return False  # only running tasks are cloned (Sec. 5)
        return live < self.copies_allowed(task, category_length=category_length)

    def budget_remaining(
        self, cluster: "Cluster", *, occupancy: Resources | None = None
    ) -> Resources:
        """Clone-occupiable resources left under the δ budget.

        ``occupancy`` lets callers that track clone usage incrementally
        (the simulation engine does) skip the full cluster scan.

        Accounting contract: resources held by a clone return to the
        budget the moment the engine releases the copy — first-copy-wins
        kills, explicit kills and fault kills all decrement the
        incremental occupancy on the spot, and the engine snaps it to
        exactly zero when the last live clone exits, so a drained
        cluster always exposes the full δ ceiling again (the sanitizer's
        clone-budget invariant re-derives this from scratch each event).
        """
        if self.budget_fraction >= 1.0:
            return cluster.total_capacity
        ceiling = cluster.total_capacity * self.budget_fraction
        used = occupancy if occupancy is not None else clone_resource_occupancy(cluster)
        return (ceiling - used).clamp_nonnegative()

    def within_budget(
        self,
        cluster: "Cluster",
        demand: Resources,
        *,
        occupancy: Resources | None = None,
    ) -> bool:
        return demand.fits_in(self.budget_remaining(cluster, occupancy=occupancy))


def clone_resource_occupancy(cluster: "Cluster") -> Resources:
    """Total resources currently held by live clone copies.

    Copies are summed in launch order (``copy_uid``): ``running_copies``
    is a set, and float addition is order-sensitive, so an unsorted sum
    could differ between two runs of the same schedule.
    """
    return sum_resources(
        c.task.demand
        for server in cluster
        for c in sorted(server.running_copies, key=lambda c: c.copy_uid)
        if c.is_clone
    )


def delay_assignment_map(num_upstream: int, num_downstream: int) -> dict[int, list[int]]:
    """Sec. 5.2's delay assignment between copies of adjacent phases.

    Returns ``{downstream_copy: [upstream_copies feeding it]}``.

    * With at least as many upstream copies as downstream clones, the AM
    "waits to assign the outputs of two early upstream copies to each of
    the downstream clones evenly" — upstream copies are dealt round-robin
    (earliest finishers first), giving each downstream copy up to two
    distinct feeds before any third is assigned.
    * With fewer upstream copies than downstream, "the output from the
    copy that finishes first" (copy 0) feeds every downstream copy.
    """
    if num_upstream < 1 or num_downstream < 1:
        raise ValueError("need at least one copy on each side")
    if num_upstream < num_downstream:
        return {d: [0] for d in range(num_downstream)}
    mapping: dict[int, list[int]] = {d: [] for d in range(num_downstream)}
    feeds = min(num_upstream, 2 * num_downstream)
    for u in range(feeds):
        mapping[u % num_downstream].append(u)
    return mapping
