"""Algorithm 1: the transient scheduling (priority) computation.

Jobs are binned into doubling length categories 2^1, 2^2, …, 2^g.  At
level l, the knapsack oracle packs as many jobs as possible among those
with effective length ≤ 2^l subject to total volume ≤ 2^l; a job's
priority p_j is the *first* level at which the oracle selects it.  Small
quick jobs get low levels (scheduled first, SRPT-like); big-volume jobs
surface once capacity doubles enough (SVF-like), and all jobs within a
level are treated equally — the SRPT/SVF balance at the heart of DollyMP
(Sec. 4.2).

The level count g = log₂(Σv / (1 − max_j d_j)) comes from the paper's
completion-time argument (Sec. 4.2.1); we additionally round up so the
last level can hold every job, which the argument presumes.

This computation is pure (measures in, priority levels out) and holds
no engine references: the scheduling layer turns the resulting order
into :class:`~repro.sim.actions.Launch` actions, keeping Algorithm 1
itself trivially compatible with trace recording and replay.
"""

from __future__ import annotations

import math
import os
from typing import Sequence

import numpy as np

from repro.core.knapsack import max_count_knapsack, max_count_knapsack_batch
from repro.core.volume import JobMeasure

__all__ = ["num_levels", "compute_priorities", "priority_groups"]


def _vectorized_priorities_default() -> bool:
    """Vectorized category/knapsack pass unless REPRO_SCALAR_PRIORITIES
    opts out (escape hatch mirroring REPRO_SCALAR_PLACEMENT; the
    equivalence suite runs both paths against each other)."""
    flag = os.environ.get("REPRO_SCALAR_PRIORITIES", "").strip().lower()
    return flag in ("", "0", "false", "no")


def num_levels(measures: Sequence[JobMeasure]) -> int:
    """g of Algorithm 1, padded so that level g can pack all jobs."""
    if not measures:
        return 0
    total_volume = sum(m.volume for m in measures)
    max_share = max(m.max_dominant_share for m in measures)
    # Guard: a job demanding the full cluster makes 1 - max d ≤ 0; the
    # bound degenerates, so clamp the denominator.
    denom = max(1.0 - max_share, 1e-6)
    g = math.ceil(math.log2(max(total_volume / denom, 2.0)))
    max_length = max(m.length for m in measures)
    max_volume = max(m.volume for m in measures)
    need = math.ceil(math.log2(max(max_length, max_volume, total_volume, 2.0)))
    return max(g, need, 1)


def compute_priorities(measures: Sequence[JobMeasure]) -> dict[int, int]:
    """Map job_id → priority level (lower = scheduled earlier).

    Implements steps 2–11 of Algorithm 1.  Every job receives a finite
    priority: jobs never selected (possible only through float edge
    cases) fall to level g + 1.

    Dispatches to the vectorized doubling-category pass unless
    ``REPRO_SCALAR_PRIORITIES`` selects the scalar reference loop; the
    two are bit-identical (see :func:`_compute_priorities_vectorized`).
    """
    if not measures:
        return {}
    ids = [m.job_id for m in measures]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate job ids in measures")
    if _vectorized_priorities_default():
        return _compute_priorities_vectorized(measures, ids)
    return _compute_priorities_scalar(measures)


def _compute_priorities_scalar(measures: Sequence[JobMeasure]) -> dict[int, int]:
    """Reference per-level loop: one knapsack call per category."""
    g = num_levels(measures)
    priorities: dict[int, int] = {}
    for level in range(1, g + 1):
        cap = 2.0**level
        # B_l: every job with effective length within the category — the
        # oracle re-packs the whole set; jobs selected at earlier levels
        # keep their priority (step 7 only assigns where p^{l-1} = ∞).
        eligible = [m for m in measures if m.length <= cap]
        if not eligible:
            continue
        chosen = max_count_knapsack([m.volume for m in eligible], cap)
        for idx in chosen:
            priorities.setdefault(eligible[idx].job_id, level)
    for m in measures:  # float-edge fallback; the theory says unreachable
        priorities.setdefault(m.job_id, g + 1)
    return priorities


def _compute_priorities_vectorized(
    measures: Sequence[JobMeasure], ids: list[int]
) -> dict[int, int]:
    """All g categories in one batched knapsack over a single sort.

    Bit-identical to the scalar loop: the batch oracle's masked cumsum
    over the globally stable-sorted volumes adds exactly the floats the
    per-level ``max_count_knapsack`` would (stable sort of the eligible
    subset == subset of the stable-sorted whole), and the keep-earliest
    rule (step 7 assigns only where p^{l-1} = ∞) is the boolean
    ``assigned`` mask.  ``num_levels`` stays scalar on purpose — its
    sequential float sum is part of the identity contract.
    """
    n = len(measures)
    vol = np.fromiter((m.volume for m in measures), np.float64, n)
    length = np.fromiter((m.length for m in measures), np.float64, n)
    g = num_levels(measures)
    caps = [2.0**level for level in range(1, g + 1)]
    chosen = max_count_knapsack_batch(
        vol, caps, eligible=[length <= cap for cap in caps]
    )
    lvl = np.full(n, g + 1, dtype=np.int64)
    assigned = np.zeros(n, dtype=bool)
    for level_idx, sel in enumerate(chosen):
        take = sel[~assigned[sel]]
        if take.size:
            lvl[take] = level_idx + 1
            assigned[take] = True
    return {ids[i]: int(lvl[i]) for i in range(n)}


def priority_groups(priorities: dict[int, int]) -> list[tuple[int, list[int]]]:
    """Group job ids by level, ascending — the Ω_t^l sets of Algorithm 2."""
    groups: dict[int, list[int]] = {}
    for job_id, level in priorities.items():
        groups.setdefault(level, []).append(job_id)
    return [(lvl, sorted(groups[lvl])) for lvl in sorted(groups)]
