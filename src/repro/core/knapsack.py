"""The knapsack optimization oracle of Algorithm 1.

Step 6 of Algorithm 1 solves, per category l::

    max Σ x_j   s.t.   Σ v_j x_j ≤ 2^l,   x ∈ {0,1}

i.e. a 0/1 knapsack with *unit profits*.  As the paper notes, with equal
profits the oracle "can be solved efficiently by selecting items with the
smallest weights" — the greedy is exactly optimal here, not an
approximation.  :func:`max_count_knapsack` implements it in O(n log n);
:func:`max_count_knapsack_exact` is an independent dynamic program kept
for cross-validation in the test suite (and for integer-profit
generalizations).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "max_count_knapsack",
    "max_count_knapsack_batch",
    "max_count_knapsack_exact",
]


def max_count_knapsack(weights: Sequence[float], capacity: float) -> list[int]:
    """Indices of a maximum-cardinality subset with total weight ≤ capacity.

    Greedy smallest-weight-first, which is optimal for unit profits:
    exchanging any selected item for a lighter unselected one never
    decreases feasibility.  Ties broken by index for determinism.
    Zero- and negative-weight checks guard against bad volumes upstream.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    w = np.asarray(weights, dtype=float)
    if w.size == 0:
        return []
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    order = np.argsort(w, kind="stable")
    csum = np.cumsum(w[order])
    # Tolerate float accumulation at the boundary.
    k = int(np.searchsorted(csum, capacity * (1 + 1e-12), side="right"))
    return sorted(int(i) for i in order[:k])


def max_count_knapsack_batch(
    weights: Sequence[float],
    capacities: Sequence[float],
    *,
    eligible: Sequence[np.ndarray] | None = None,
) -> list[np.ndarray]:
    """Solve the unit-profit knapsack for many capacities in one pass.

    Equivalent to calling :func:`max_count_knapsack` once per capacity —
    optionally restricting instance ``i`` to the items where
    ``eligible[i]`` is true — but the O(n log n) stable sort is paid
    once, and the per-instance work is a masked cumsum plus a binary
    search.  Returned indices are in the *original* ``weights`` index
    space (unlike the scalar helper applied to a compacted eligible
    list), ascending.

    Bit-identical to the scalar loop: a stable sort of an eligible
    subset equals the subset of the stable-sorted whole (stability and
    filtering both preserve original relative order among equal
    weights), so the masked cumsum adds the same floats in the same
    order and the boundary search lands on the same k.
    """
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    if eligible is not None and len(eligible) != len(capacities):
        raise ValueError("eligible must supply one mask per capacity")
    order = np.argsort(w, kind="stable")
    w_sorted = w[order]
    full_csum = np.cumsum(w_sorted)
    boundary = np.multiply(capacities, 1 + 1e-12)
    results: list[np.ndarray] = []
    for i, cap in enumerate(capacities):
        if cap < 0:
            raise ValueError(f"capacity must be non-negative, got {cap}")
        if eligible is None:
            k = int(np.searchsorted(full_csum, boundary[i], side="right"))
            sel = order[:k]
        else:
            mask = np.asarray(eligible[i], dtype=bool)[order]
            csum = np.cumsum(w_sorted[mask])
            k = int(np.searchsorted(csum, boundary[i], side="right"))
            sel = order[np.flatnonzero(mask)[:k]]
        results.append(np.sort(sel))
    return results


def max_count_knapsack_exact(
    weights: Sequence[float],
    capacity: float,
    *,
    profits: Sequence[int] | None = None,
) -> list[int]:
    """Exact 0/1 knapsack by dynamic programming over total profit.

    ``dp[p]`` = minimum weight achieving profit exactly ``p``; the answer
    is the largest ``p`` with ``dp[p] ≤ capacity``.  With unit profits
    this is O(n²) — the complexity the paper quotes for the oracle — and
    agrees with the greedy; with general integer profits it solves the
    weighted variant used in ablations.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    w = [float(x) for x in weights]
    if any(x < 0 for x in w):
        raise ValueError("weights must be non-negative")
    n = len(w)
    p = [1] * n if profits is None else [int(x) for x in profits]
    if len(p) != n:
        raise ValueError("profits length must match weights")
    if any(x < 0 for x in p):
        raise ValueError("profits must be non-negative")
    total_profit = sum(p)
    INF = float("inf")
    # dp[i][prof] = min weight achieving profit `prof` using items < i.
    # Full table (not rolled) so the witness reconstruction is exact.
    dp = np.full((n + 1, total_profit + 1), INF)
    dp[0][0] = 0.0
    for i in range(n):
        dp[i + 1] = dp[i].copy()
        shifted = dp[i][: total_profit + 1 - p[i]] + w[i] if p[i] > 0 else dp[i] + w[i]
        if p[i] > 0:
            np.minimum(dp[i + 1][p[i] :], shifted, out=dp[i + 1][p[i] :])
        else:
            np.minimum(dp[i + 1], shifted, out=dp[i + 1])
    cap = capacity * (1 + 1e-12)
    feasible = np.nonzero(dp[n] <= cap)[0]
    best = int(feasible[-1]) if feasible.size else 0
    # Reconstruct a witness subset walking the table backwards.
    selected: list[int] = []
    prof = best
    for i in range(n - 1, -1, -1):
        if dp[i + 1][prof] == dp[i][prof]:
            continue  # item i not needed for this profit
        selected.append(i)
        prof -= p[i]
    selected.reverse()
    return selected
