"""The Application Master's second-level, locality-aware scheduling.

Sec. 5.2: "When RM allocates more containers than the number of pending
tasks, an AM will make a second-level scheduling decision to determine
where to launch each task and its clones, based on the data locality
constraint. Whenever a task or its cloned copy finishes, the
corresponding AM keeps another running copy with the best data locality
level and kills the remaining running copies."

This module implements that logic as pure functions over the
:class:`~repro.cluster.topology.Topology` locality model:

* :func:`assign_tasks_to_containers` — match tasks (with preferred
  servers = their HDFS replica locations) to allocated containers,
  minimizing total locality cost (greedy on the locality matrix, which
  is optimal here because the cost levels are the same for every task);
* :func:`best_locality_copy` — which running copy the AM keeps when a
  sibling finishes;
* :func:`clone_placement_order` — ranks candidate servers for a clone:
  replicas hold the input block, so "two clones can maintain a good
  data locality" (Sec. 5's rationale for the max-two-clones default).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import LocalityLevel, Topology
from repro.workload.task import Task, TaskCopy

__all__ = [
    "assign_tasks_to_containers",
    "best_locality_copy",
    "clone_placement_order",
]


def assign_tasks_to_containers(
    topology: Topology,
    tasks: Sequence[Task],
    container_servers: Sequence[int],
) -> dict[Task, int]:
    """Assign each task to one container, minimizing locality cost.

    Greedy by cost level: first give every task a NODE_LOCAL container
    where possible, then RACK_LOCAL, then whatever remains.  With three
    uniform cost levels this greedy is exchange-optimal.  Containers in
    excess of tasks stay unused; tasks in excess of containers stay
    unassigned (the RM will allocate more later).
    """
    free = list(container_servers)
    assignment: dict[Task, int] = {}
    for level in (LocalityLevel.NODE_LOCAL, LocalityLevel.RACK_LOCAL, LocalityLevel.OFF_RACK):
        for task in tasks:
            if task in assignment or not free:
                continue
            best_idx = None
            for idx, server in enumerate(free):
                if topology.locality(server, task.preferred_servers) == level:
                    best_idx = idx
                    break
            if best_idx is not None:
                assignment[task] = free.pop(best_idx)
    return assignment


def best_locality_copy(topology: Topology, copies: Sequence[TaskCopy]) -> TaskCopy:
    """Among live copies of one task, the one the AM keeps: best data
    locality, earliest start as tie-break (more progress)."""
    live = [c for c in copies if c.live]
    if not live:
        raise ValueError("no live copies to choose from")
    return min(
        live,
        key=lambda c: (
            topology.locality(c.server_id, c.task.preferred_servers),
            c.start_time,
            c.copy_uid,
        ),
    )


def clone_placement_order(
    topology: Topology, task: Task, candidate_servers: Sequence[int]
) -> list[int]:
    """Candidate servers for a clone, best locality first.

    Replica holders come first (each data block keeps two replicas, so
    up to two copies can read locally — the paper's data-locality
    argument for capping clones at two), then rack-local servers, then
    the rest; stable within a level.
    """
    return sorted(
        candidate_servers,
        key=lambda s: (int(topology.locality(s, task.preferred_servers)), s),
    )
