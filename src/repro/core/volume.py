"""Job volume and effective processing time (Eqs. 9–10 and 14–17).

These are the two scalars Algorithm 1 consumes per job:

* the **effective processing time** e_j — for a single-task job simply
  θ_j (Eq. 10 context); for a DAG job the critical-path sum of the
  variance-penalized phase lengths e_j^k = θ_j^k + r·σ_j^k (Eq. 14), and
  online, the critical path over the *remaining* phases only (Eq. 17);
* the **volume** v_j — dominant share × effective time, summed over the
  (remaining) tasks of every (remaining) phase (Eqs. 10, 14, 16).

In the prototype this computation lives in the Application Master, which
reports (v_j, e_j) to the Resource Manager on submission (Sec. 5.2);
here :func:`measure_job` plays that role.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resources import Resources
from repro.workload.job import Job
from repro.workload.phase import Phase

__all__ = [
    "dominant_share",
    "phase_dominant_share",
    "job_volume",
    "job_effective_length",
    "JobMeasure",
    "measure_job",
    "measure_single_task_job",
]

#: Default deviation weight r (the experiments use r = 1.5, Sec. 6.1/6.3).
DEFAULT_R = 1.5


def dominant_share(demand: Resources, total_capacity: Resources) -> float:
    """d_j of Eq. (9): max over dimensions of demand / cluster total."""
    return demand.dominant_share(total_capacity)


def phase_dominant_share(phase: Phase, total_capacity: Resources) -> float:
    """d_j^k of Eq. (15)."""
    return phase.demand.dominant_share(total_capacity)


def job_volume(
    job: Job,
    total_capacity: Resources,
    *,
    r: float = DEFAULT_R,
    remaining_only: bool = True,
) -> float:
    """v_j of Eq. (14), or v_j(t) of Eq. (16) when ``remaining_only``.

    Σ_k n_j^k · e_j^k · d_j^k, with n_j^k the (unfinished) task count.
    """
    total = 0.0
    for phase in job.phases:
        n = phase.num_unfinished if remaining_only else phase.num_tasks
        if n == 0:
            continue
        total += n * phase.effective_time(r) * phase_dominant_share(phase, total_capacity)
    return total


def job_effective_length(
    job: Job,
    *,
    r: float = DEFAULT_R,
    remaining_only: bool = True,
) -> float:
    """e_j of Eq. (14), or e_j(t) of Eq. (17) when ``remaining_only``."""
    if remaining_only:
        return job.remaining_effective_length(r)
    return job.effective_length(r)


@dataclass(frozen=True)
class JobMeasure:
    """The (volume, effective length) pair Algorithm 1 consumes."""

    job_id: int
    volume: float
    length: float
    max_dominant_share: float

    def __post_init__(self) -> None:
        if self.volume < 0 or self.length < 0:
            raise ValueError("volume and length must be non-negative")


def measure_job(
    job: Job,
    total_capacity: Resources,
    *,
    r: float = DEFAULT_R,
    remaining_only: bool = True,
) -> JobMeasure:
    """Compute the Algorithm-1 inputs for one (possibly partial) job."""
    shares = [
        phase_dominant_share(p, total_capacity)
        for p in job.phases
        if not (remaining_only and p.is_finished)
    ]
    return JobMeasure(
        job_id=job.job_id,
        volume=job_volume(job, total_capacity, r=r, remaining_only=remaining_only),
        length=job_effective_length(job, r=r, remaining_only=remaining_only),
        max_dominant_share=max(shares, default=0.0),
    )


def measure_single_task_job(
    job_id: int,
    demand: Resources,
    theta: float,
    total_capacity: Resources,
) -> JobMeasure:
    """The transient-analysis measure: v_j = d_j·θ_j (Eqs. 9–10)."""
    d = dominant_share(demand, total_capacity)
    return JobMeasure(job_id=job_id, volume=d * theta, length=theta, max_dominant_share=d)
