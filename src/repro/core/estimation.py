"""Application Master statistics estimation (Sec. 5.2).

The real DollyMP does not know task statistics a priori; its AM
estimates them in three tiers:

1. "recurring jobs are fairly common ... For such jobs, AM directly
   applies task statistics measured in prior runs of the job";
2. "the tasks from the same phase within a job have similar resource
   requirements and execution properties.  Hence, AM estimates the
   resource demands and execution times of a phase ... using the
   measured statistics from the first few tasks, and update[s] it
   timely when more tasks finish";
3. "when none of the above properties are satisfied, AM just uses the
   resource demand from the container request" — i.e. the submitted
   hint.

:class:`PhaseStatsEstimator` implements all three tiers, and
:class:`EstimatingDollyMPScheduler` runs Algorithm 2 on the *estimated*
(θ, σ) instead of the ground truth — quantifying how much DollyMP's
performance depends on clairvoyance (see
``tests/core/test_estimation.py``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.online import DollyMPScheduler
from repro.core.transient import compute_priorities
from repro.core.volume import JobMeasure, phase_dominant_share
from repro.workload.dag import critical_path_length
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView

__all__ = ["PhaseStatsEstimator", "EstimatingDollyMPScheduler"]


def _moments(durations: list[float]) -> tuple[float, float]:
    n = len(durations)
    mean = sum(durations) / n
    if n < 2:
        return mean, 0.0
    var = sum((d - mean) ** 2 for d in durations) / (n - 1)
    return mean, math.sqrt(var)


class PhaseStatsEstimator:
    """Three-tier (θ, σ) estimation keyed by (job name, phase name).

    Recurring jobs share their ``job.name`` (e.g. ``wordcount-10GB``);
    history accumulates winner-copy durations per (job name, phase name)
    and is consulted when the current phase has too few finished tasks.
    """

    def __init__(
        self,
        *,
        min_task_samples: int = 3,
        max_history: int = 512,
        default_cv: float = 0.0,
    ) -> None:
        if min_task_samples < 1:
            raise ValueError("min_task_samples must be >= 1")
        if max_history < 2:
            raise ValueError("max_history must be >= 2")
        if default_cv < 0:
            raise ValueError("default_cv must be non-negative")
        self.min_task_samples = min_task_samples
        self.max_history = max_history
        self.default_cv = default_cv
        self._history: dict[tuple[str, str], list[float]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _key(job: Job, phase: Phase) -> tuple[str, str]:
        return (job.name, phase.name)

    @staticmethod
    def _phase_durations(phase: Phase) -> list[float]:
        """Winner-copy durations of the phase's finished tasks."""
        out = []
        for task in phase.tasks:
            if task.state is TaskState.FINISHED:
                for copy in task.copies:
                    if copy.finished:
                        out.append(copy.duration)
                        break
        return out

    def record_task(self, task: Task) -> None:
        """Fold a finished task's winner duration into the history."""
        job = task.job
        key = self._key(job, task.phase)
        for copy in task.copies:
            if copy.finished:
                hist = self._history.setdefault(key, [])
                hist.append(copy.duration)
                if len(hist) > self.max_history:
                    del hist[: len(hist) - self.max_history]
                break

    def history_size(self, job: Job, phase: Phase) -> int:
        return len(self._history.get(self._key(job, phase), ()))

    # ------------------------------------------------------------------
    def estimate(self, job: Job, phase: Phase) -> tuple[float, float]:
        """(θ̂, σ̂) for a phase, using the best available tier."""
        # Tier 2 first when the *current* phase already has samples —
        # fresher than history ("update it timely when more tasks
        # finish").
        current = self._phase_durations(phase)
        if len(current) >= self.min_task_samples:
            return _moments(current)
        # Tier 1: prior runs of the recurring job.
        hist = self._history.get(self._key(job, phase), [])
        if len(hist) >= self.min_task_samples:
            return _moments(hist)
        # Tier 3: the submitted hint (the "container request").
        theta = phase.theta
        sigma = phase.sigma if phase.sigma > 0 else self.default_cv * theta
        return theta, sigma

    def effective_time(self, job: Job, phase: Phase, r: float) -> float:
        theta, sigma = self.estimate(job, phase)
        return theta + r * sigma

    def measure_job(self, job: Job, total_capacity, *, r: float) -> JobMeasure:
        """The Algorithm-1 inputs computed from *estimated* statistics
        over the job's remaining phases (Eqs. 14–17 with θ̂, σ̂)."""
        volume = 0.0
        shares = []
        for phase in job.phases:
            n = phase.num_unfinished
            if n == 0:
                continue
            d = phase_dominant_share(phase, total_capacity)
            shares.append(d)
            volume += n * self.effective_time(job, phase, r) * d
        length = critical_path_length(
            job.parents_list(),
            lambda k: self.effective_time(job, job.phases[k], r),
            include=lambda k: not job.phases[k].is_finished,
        )
        return JobMeasure(
            job_id=job.job_id,
            volume=volume,
            length=length,
            max_dominant_share=max(shares, default=0.0),
        )


class EstimatingDollyMPScheduler(DollyMPScheduler):
    """DollyMP driven by AM-estimated statistics instead of ground truth."""

    def __init__(self, *, estimator: PhaseStatsEstimator | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.estimator = estimator if estimator is not None else PhaseStatsEstimator()
        self.name = f"Estimating{self.name}"

    def on_task_finish(self, task: Task, view: "ClusterView") -> None:
        self.estimator.record_task(task)

    def recompute_priorities(self, view: "ClusterView") -> None:
        total = view.cluster.total_capacity
        measures = [
            self.estimator.measure_job(j, total, r=self.r) for j in view.active_jobs
        ]
        self._priorities = compute_priorities(measures)
