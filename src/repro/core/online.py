"""The online DollyMP scheduler — Algorithm 2 of the paper.

Scheduling logic, in the paper's order:

1. **Priority recompute on arrival** (steps 1–5): when a job enters, the
   remaining volume v_j(t) (Eq. 16) and remaining effective length
   e_j(t) (Eq. 17) of every active job are fed to the transient
   Algorithm 1, yielding priority levels p_j(t).  "To reduce the
   overhead, the scheduling order of all jobs in the cluster won't be
   updated until the next job arrival."
2. **Normal task placement** (steps 6–15): sweep priority groups in
   increasing level; within a group all jobs are equal and the task with
   the best resource fit (inner product with the server's availability)
   is placed first.  Only each job's *first available phase* is
   schedulable (DAG gating).
3. **Clone placement** (step 16 — "Repeat Step 9 twice"): when no new
   task fits, leftover resources host clones, in the same priority
   order, at most ``max_clones`` extra copies per task, subject to the
   δ clone budget (Sec. 4.1's small-jobs-first rule).

All placements flow through the action protocol (the packing helpers
emit :class:`~repro.sim.actions.Launch` actions via ``view.apply``), so
a DollyMP run can be journaled and replayed bit-identically — the
oracle used to compare the policies of Sec. 6 over identical straggler
realizations.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.cloning_policy import CloningPolicy
from repro.core.transient import compute_priorities, priority_groups
from repro.core.volume import DEFAULT_R, JobMeasure, measure_job
from repro.schedulers.base import Scheduler
from repro.schedulers.packing import (
    CloneScoreCache,
    _vectorized_clone_fill_default,
    fill_clones_best_fit,
    fill_tasks_best_fit,
    pending_by_phase,
)
from repro.workload.job import Job
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView

__all__ = ["DollyMPScheduler"]


def _eager_priorities_default() -> bool:
    """Eager per-arrival recompute only when REPRO_EAGER_PRIORITIES asks.

    The default is *lazy* maintenance: arrivals arm a deferred recompute
    that materializes at the next priority read (bit-identical to the
    eager path; the escape hatch exists for the equivalence suite and
    the legacy-mode benchmark runs, mirroring REPRO_SCALAR_PLACEMENT).
    """
    flag = os.environ.get("REPRO_EAGER_PRIORITIES", "").strip().lower()
    return flag not in ("", "0", "false", "no")


class DollyMPScheduler(Scheduler):
    """DollyMP with ``max_clones`` extra copies per task.

    ``max_clones=0/1/2/3`` are the paper's DollyMP⁰/¹/²/³ variants;
    ``r`` is the deviation weight of the effective processing time
    (e = θ + r·σ; experiments use 1.5) and ``delta`` the clone resource
    budget (0.3 in the experiments; see DESIGN.md for the δ reading).
    """

    #: Optional per-server placement-score multiplier.  Subclasses (the
    #: straggler-learning extension) set this to steer placements away
    #: from servers identified as slow.
    _server_weight_hook = None

    def __init__(
        self,
        *,
        max_clones: int = 2,
        r: float = DEFAULT_R,
        delta: float = 0.3,
        use_category_target: bool = False,
    ) -> None:
        if r < 0:
            raise ValueError("r must be non-negative")
        self.r = r
        self.policy = CloningPolicy(
            max_clones=max_clones,
            budget_fraction=delta,
            use_category_target=use_category_target,
        )
        self.name = f"DollyMP^{max_clones}"
        self._priorities: dict[int, int] = {}
        # Incremental measure cache: a job's (volume, length) pair only
        # changes when one of its tasks finishes (task/phase volumes are
        # fixed at submission), so each JobMeasure is computed once and
        # invalidated by the on_task_finish/on_job_finish hooks instead
        # of re-measuring every active job on every arrival.
        self._measures: dict[int, JobMeasure] = {}
        self._measure_capacity: object | None = None
        # Lazy priority maintenance (DESIGN.md §5.6).  Arrivals *arm* a
        # deferred recompute instead of running Algorithm 1 immediately;
        # the first priority read (schedule / priority_of) resolves it.
        # To stay bit-identical to the eager path the resolve must see
        # the roster *as it stood at the last arrival*:
        #
        # * ``_roster`` mirrors the engine's active-job dict (insertion
        #   order preserved); jobs finishing while armed are kept until
        #   the resolve (``_deferred_gone``) because the eager recompute
        #   at the arrival would have included them — their volume
        #   competes in the knapsack even if they finish a moment later.
        # * ``_snapshots`` copy-on-write a job's at-arrival measure the
        #   moment a task finish would invalidate it.
        # * ``_unmeasured`` lists roster jobs whose cache entry was
        #   popped; the next arrival re-measures exactly those, so every
        #   armed window starts with a complete, current measure cache.
        #
        # Subclasses that override recompute_priorities (the estimating
        # scheduler's measures are *time-varying*) keep the eager path.
        self._eager = (
            _eager_priorities_default()
            or type(self).recompute_priorities is not DollyMPScheduler.recompute_priorities
        )
        self._roster: dict[int, Job] = {}
        self._armed = False
        self._snapshots: dict[int, JobMeasure] = {}
        self._deferred_gone: list[int] = []
        self._unmeasured: set[int] = set()
        # Pass-1 skip set: jobs verified to have zero pending tasks in
        # *any* phase (not just the ready ones).  A task re-enters
        # PENDING only through a fault requeue, and both requeue paths
        # land in a hook below (server-fail orphans, copy failures), so
        # membership is conservative — a skipped job contributes no
        # pass-1 candidates by construction.
        self._no_pending: set[int] = set()

    # ------------------------------------------------------------------
    # Priority maintenance
    # ------------------------------------------------------------------
    def recompute_priorities(self, view: "ClusterView") -> None:
        """Eager full recompute (public API; also the defensive path).

        Rebuilds the roster mirror from the view and resets every piece
        of lazy bookkeeping, so callers that drive the scheduler outside
        the engine hooks (microbenches, tests) get a coherent state.
        """
        total = view.cluster.total_capacity
        # Exact comparison on purpose: this is a cache identity key (same
        # cluster ⇒ same floats), not a tolerance check.
        if total != self._measure_capacity:  # repro-lint: ignore[RL003]
            # Measures are relative to the cluster total (Eq. 15); a
            # scheduler reused against a different cluster starts fresh.
            self._measures.clear()
            self._measure_capacity = total
        self._armed = False
        self._snapshots.clear()
        self._deferred_gone.clear()
        self._unmeasured.clear()
        cache = self._measures
        roster: dict[int, Job] = {}
        measures = []
        for j in view.active_jobs:
            m = cache.get(j.job_id)
            if m is None:
                m = measure_job(j, total, r=self.r)
                cache[j.job_id] = m
            measures.append(m)
            roster[j.job_id] = j
        self._roster = roster
        self._priorities = compute_priorities(measures)

    def on_job_arrival(self, job: Job, view: "ClusterView") -> None:
        if self._eager:
            self.recompute_priorities(view)
            return
        total = view.cluster.total_capacity
        if total != self._measure_capacity:  # repro-lint: ignore[RL003]
            self._measures.clear()
            self._measure_capacity = total
            self._unmeasured.update(self._roster)
        # Flush the previous armed window: jobs that finished before
        # this arrival left the eager roster too, and their at-arrival
        # snapshots are stale now.
        if self._deferred_gone:
            for jid in self._deferred_gone:
                self._roster.pop(jid, None)
            self._deferred_gone.clear()
        if self._snapshots:
            self._snapshots.clear()
        self._roster[job.job_id] = job
        # Re-establish the armed-window invariant: every roster job has
        # a cached measure that is correct *right now* (= what the eager
        # path would measure at this arrival).  Only jobs invalidated by
        # finishes since the last arrival need work.
        cache = self._measures
        if self._unmeasured:
            roster = self._roster
            for jid in self._unmeasured:
                j = roster.get(jid)
                if j is not None:
                    cache[jid] = measure_job(j, total, r=self.r)
            self._unmeasured.clear()
        if job.job_id not in cache:
            cache[job.job_id] = measure_job(job, total, r=self.r)
        self._armed = True

    def _resolve(self) -> None:
        """Materialize the deferred recompute armed by arrivals.

        Reconstructs exactly the measure list the eager path fed to
        Algorithm 1 at the last arrival — roster membership and order,
        with at-arrival snapshots standing in for measures invalidated
        since — then drops jobs that finished in the window, mirroring
        the eager path's on_job_finish pops."""
        self._armed = False
        cache = self._measures
        snaps = self._snapshots
        total = self._measure_capacity
        measures = []
        for jid, j in self._roster.items():
            m = snaps.get(jid)
            if m is None:
                m = cache.get(jid)
                if m is None:  # defensive; the arm invariant covers this
                    m = measure_job(j, total, r=self.r)
                    cache[jid] = m
            measures.append(m)
        prios = compute_priorities(measures)
        if self._deferred_gone:
            for jid in self._deferred_gone:
                prios.pop(jid, None)
                self._roster.pop(jid, None)
            self._deferred_gone.clear()
        if snaps:
            snaps.clear()
        self._priorities = prios

    def on_task_finish(self, task: Task, view: "ClusterView") -> None:
        # Remaining volume/length shrank: re-measure this job at the
        # next recompute.  Clone launches/kills never change them.
        jid = task.job.job_id
        cache = self._measures
        if self._armed:
            m = cache.get(jid)
            if m is not None:
                self._snapshots.setdefault(jid, m)
        cache.pop(jid, None)
        if jid in self._roster:
            self._unmeasured.add(jid)

    def on_job_finish(self, job: Job, view: "ClusterView") -> None:
        jid = job.job_id
        if self._armed:
            m = self._measures.get(jid)
            if m is not None:
                self._snapshots.setdefault(jid, m)
            self._deferred_gone.append(jid)
        else:
            self._roster.pop(jid, None)
        self._measures.pop(jid, None)
        self._priorities.pop(jid, None)
        self._unmeasured.discard(jid)
        self._no_pending.discard(jid)

    def on_server_fail(self, server, orphans, view: "ClusterView") -> None:
        # Deliberately no cache invalidation: a job's measure counts its
        # *unfinished* tasks' volume/length, and a fault that kills
        # copies (or requeues orphans) leaves every task unfinished that
        # was unfinished before — the measure is unchanged.  The cache
        # identity key is the *nominal* total capacity, which a down
        # server doesn't alter, so cached priorities stay valid and the
        # orphans simply re-enter the next pass's pending pool at their
        # job's existing priority (clone-as-recovery: tasks that kept a
        # live clone never even left RUNNING).
        for task in orphans:
            self._no_pending.discard(task.job.job_id)

    def on_copy_failure(self, copy, view: "ClusterView") -> None:
        # The engine requeues a task whose last live copy died — its job
        # may hold pending work again, so it leaves the pass-1 skip set.
        self._no_pending.discard(copy.task.job.job_id)

    def priority_of(self, job: Job) -> int | None:
        if self._armed:
            self._resolve()
        return self._priorities.get(job.job_id)

    # ------------------------------------------------------------------
    # Scheduling pass
    # ------------------------------------------------------------------
    def schedule(self, view: "ClusterView") -> None:
        jobs = view.active_jobs
        if not jobs:
            return
        if self._armed:
            self._resolve()
        by_id = {j.job_id: j for j in jobs}
        if any(jid not in self._priorities for jid in by_id):
            # Defensive: an engine calling schedule() before the arrival
            # hook (or a job revived from a checkpoint) still gets ranked.
            self.recompute_priorities(view)
        active_prios = {
            jid: lvl for jid, lvl in self._priorities.items() if jid in by_id
        }
        groups = priority_groups(active_prios)

        # --- pass 1: normal tasks, by priority group -------------------
        no_pending = self._no_pending
        for _, job_ids in groups:
            candidates = []
            for jid in job_ids:
                if jid in no_pending:
                    continue
                job = by_id[jid]
                cands = pending_by_phase(job, view.time)
                if cands:
                    candidates.extend(cands)
                elif all(p.num_pending == 0 for p in job.phases):
                    # No pending work in ready *or* gated phases: skip
                    # this job until a fault requeues one of its tasks.
                    no_pending.add(jid)
            if candidates:
                fill_tasks_best_fit(
                    view, candidates, server_weight=self._server_weight_hook
                )

        # --- pass 2: clones on leftover resources ----------------------
        if self.policy.max_clones == 0:
            return
        if view.cluster.total_available().is_zero():
            return  # cluster packed solid; no leftover to clone into
        # δ budget tracked locally for the whole pass (the engine's
        # incremental occupancy seeds it; each clone launch debits it).
        budget = self.policy.budget_remaining(
            view.cluster, occupancy=view.clone_occupancy
        )
        state = {"remaining": budget}
        # The budget only shrinks within a pass, so a demand it rejected
        # once stays rejected — cache failures by demand key (tasks of a
        # phase share one demand, making this very effective).
        over_budget: set[tuple[float, float]] = set()

        def budget_check(t: Task) -> bool:
            demand = t.demand
            key = (demand.cpu, demand.mem)
            if key in over_budget:
                return False
            if demand.fits_in(state["remaining"]):
                return True
            over_budget.add(key)
            return False

        def debit(t: Task, _server) -> None:
            state["remaining"] = (state["remaining"] - t.demand).clamp_nonnegative()

        # Pass-scoped score cache: every availability change inside pass 2
        # is a clone launch made by the fills below, so the cache's
        # one-column-per-launch refresh rule holds for the whole pass.
        score_cache = (
            CloneScoreCache(view.cluster.mirror)
            if view.cluster.vectorized and _vectorized_clone_fill_default()
            else None
        )
        # The clone-target scan is the other repeat cost: re-running the
        # generator visits every task of every running phase again.  No
        # task changes state during a pass and live-copy counts only
        # grow, so repeat k's fresh scan equals repeat 1's list filtered
        # by the (re-checked) copy cap — materialize once, filter after.
        use_cat = self.policy.use_category_target
        cap = self.policy.max_copies
        group_targets: list[list[Task] | None] = [None] * len(groups)
        for rep in range(self.policy.max_clones):
            launched = 0
            for gi, (level, job_ids) in enumerate(groups):
                targets = group_targets[gi]
                if targets is None:
                    targets = list(self._clone_targets(by_id, job_ids, level))
                    group_targets[gi] = targets
                    source: Iterable[Task] = targets
                elif use_cat:
                    category_length = 2.0**level
                    source = (
                        t
                        for t in targets
                        if self.policy.may_clone(t, category_length=category_length)
                    )
                else:
                    source = (t for t in targets if t.num_live_copies < cap)
                launched += fill_clones_best_fit(
                    view,
                    source,
                    budget_check=budget_check,
                    on_launch=debit,
                    score_cache=score_cache,
                )
            if launched == 0:
                break

    def _clone_targets(
        self, by_id: dict[int, Job], job_ids: list[int], level: int
    ) -> Iterator[Task]:
        """Running tasks of the group's jobs eligible for one more clone
        (lazy — evaluated as the fill loop consumes it)."""
        policy = self.policy
        if not policy.use_category_target:
            # Fast path: with a fixed copy target, ``may_clone`` reduces
            # to ``0 < live < max_copies`` — inlined because this scan
            # visits every running task of every group each repeat.
            running = TaskState.RUNNING
            cap = policy.max_copies
            for jid in job_ids:
                for phase in by_id[jid].phases:
                    if phase.num_running == 0:  # O(1) guard before the scan
                        continue
                    for task in phase.tasks:
                        if task.state is running and 0 < task._live_count < cap:
                            yield task
            return
        category_length = 2.0**level
        for jid in job_ids:
            for phase in by_id[jid].phases:
                if phase.num_running == 0:  # O(1) guard before the scan
                    continue
                for task in phase.tasks:
                    if task.state is TaskState.RUNNING and self.policy.may_clone(
                        task, category_length=category_length
                    ):
                        yield task
