"""The online DollyMP scheduler — Algorithm 2 of the paper.

Scheduling logic, in the paper's order:

1. **Priority recompute on arrival** (steps 1–5): when a job enters, the
   remaining volume v_j(t) (Eq. 16) and remaining effective length
   e_j(t) (Eq. 17) of every active job are fed to the transient
   Algorithm 1, yielding priority levels p_j(t).  "To reduce the
   overhead, the scheduling order of all jobs in the cluster won't be
   updated until the next job arrival."
2. **Normal task placement** (steps 6–15): sweep priority groups in
   increasing level; within a group all jobs are equal and the task with
   the best resource fit (inner product with the server's availability)
   is placed first.  Only each job's *first available phase* is
   schedulable (DAG gating).
3. **Clone placement** (step 16 — "Repeat Step 9 twice"): when no new
   task fits, leftover resources host clones, in the same priority
   order, at most ``max_clones`` extra copies per task, subject to the
   δ clone budget (Sec. 4.1's small-jobs-first rule).

All placements flow through the action protocol (the packing helpers
emit :class:`~repro.sim.actions.Launch` actions via ``view.apply``), so
a DollyMP run can be journaled and replayed bit-identically — the
oracle used to compare the policies of Sec. 6 over identical straggler
realizations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.cloning_policy import CloningPolicy
from repro.core.transient import compute_priorities, priority_groups
from repro.core.volume import DEFAULT_R, JobMeasure, measure_job
from repro.schedulers.base import Scheduler
from repro.schedulers.packing import (
    fill_clones_best_fit,
    fill_tasks_best_fit,
    pending_by_phase,
)
from repro.workload.job import Job
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import ClusterView

__all__ = ["DollyMPScheduler"]


class DollyMPScheduler(Scheduler):
    """DollyMP with ``max_clones`` extra copies per task.

    ``max_clones=0/1/2/3`` are the paper's DollyMP⁰/¹/²/³ variants;
    ``r`` is the deviation weight of the effective processing time
    (e = θ + r·σ; experiments use 1.5) and ``delta`` the clone resource
    budget (0.3 in the experiments; see DESIGN.md for the δ reading).
    """

    #: Optional per-server placement-score multiplier.  Subclasses (the
    #: straggler-learning extension) set this to steer placements away
    #: from servers identified as slow.
    _server_weight_hook = None

    def __init__(
        self,
        *,
        max_clones: int = 2,
        r: float = DEFAULT_R,
        delta: float = 0.3,
        use_category_target: bool = False,
    ) -> None:
        if r < 0:
            raise ValueError("r must be non-negative")
        self.r = r
        self.policy = CloningPolicy(
            max_clones=max_clones,
            budget_fraction=delta,
            use_category_target=use_category_target,
        )
        self.name = f"DollyMP^{max_clones}"
        self._priorities: dict[int, int] = {}
        # Incremental measure cache: a job's (volume, length) pair only
        # changes when one of its tasks finishes (task/phase volumes are
        # fixed at submission), so each JobMeasure is computed once and
        # invalidated by the on_task_finish/on_job_finish hooks instead
        # of re-measuring every active job on every arrival.
        self._measures: dict[int, JobMeasure] = {}
        self._measure_capacity: object | None = None

    # ------------------------------------------------------------------
    # Priority maintenance
    # ------------------------------------------------------------------
    def recompute_priorities(self, view: "ClusterView") -> None:
        total = view.cluster.total_capacity
        # Exact comparison on purpose: this is a cache identity key (same
        # cluster ⇒ same floats), not a tolerance check.
        if total != self._measure_capacity:  # repro-lint: ignore[RL003]
            # Measures are relative to the cluster total (Eq. 15); a
            # scheduler reused against a different cluster starts fresh.
            self._measures.clear()
            self._measure_capacity = total
        cache = self._measures
        measures = []
        for j in view.active_jobs:
            m = cache.get(j.job_id)
            if m is None:
                m = measure_job(j, total, r=self.r)
                cache[j.job_id] = m
            measures.append(m)
        self._priorities = compute_priorities(measures)

    def on_job_arrival(self, job: Job, view: "ClusterView") -> None:
        self.recompute_priorities(view)

    def on_task_finish(self, task: Task, view: "ClusterView") -> None:
        # Remaining volume/length shrank: re-measure this job at the
        # next recompute.  Clone launches/kills never change them.
        self._measures.pop(task.job.job_id, None)

    def on_job_finish(self, job: Job, view: "ClusterView") -> None:
        self._measures.pop(job.job_id, None)
        self._priorities.pop(job.job_id, None)

    def on_server_fail(self, server, orphans, view: "ClusterView") -> None:
        # Deliberately no cache invalidation: a job's measure counts its
        # *unfinished* tasks' volume/length, and a fault that kills
        # copies (or requeues orphans) leaves every task unfinished that
        # was unfinished before — the measure is unchanged.  The cache
        # identity key is the *nominal* total capacity, which a down
        # server doesn't alter, so cached priorities stay valid and the
        # orphans simply re-enter the next pass's pending pool at their
        # job's existing priority (clone-as-recovery: tasks that kept a
        # live clone never even left RUNNING).
        pass

    def priority_of(self, job: Job) -> int | None:
        return self._priorities.get(job.job_id)

    # ------------------------------------------------------------------
    # Scheduling pass
    # ------------------------------------------------------------------
    def schedule(self, view: "ClusterView") -> None:
        jobs = view.active_jobs
        if not jobs:
            return
        by_id = {j.job_id: j for j in jobs}
        if any(jid not in self._priorities for jid in by_id):
            # Defensive: an engine calling schedule() before the arrival
            # hook (or a job revived from a checkpoint) still gets ranked.
            self.recompute_priorities(view)
        active_prios = {
            jid: lvl for jid, lvl in self._priorities.items() if jid in by_id
        }
        groups = priority_groups(active_prios)

        # --- pass 1: normal tasks, by priority group -------------------
        for _, job_ids in groups:
            candidates = []
            for jid in job_ids:
                candidates.extend(pending_by_phase(by_id[jid], view.time))
            if candidates:
                fill_tasks_best_fit(
                    view, candidates, server_weight=self._server_weight_hook
                )

        # --- pass 2: clones on leftover resources ----------------------
        if self.policy.max_clones == 0:
            return
        if view.cluster.total_available().is_zero():
            return  # cluster packed solid; no leftover to clone into
        # δ budget tracked locally for the whole pass (the engine's
        # incremental occupancy seeds it; each clone launch debits it).
        budget = self.policy.budget_remaining(
            view.cluster, occupancy=view.clone_occupancy
        )
        state = {"remaining": budget}
        # The budget only shrinks within a pass, so a demand it rejected
        # once stays rejected — cache failures by demand key (tasks of a
        # phase share one demand, making this very effective).
        over_budget: set[tuple[float, float]] = set()

        def budget_check(t: Task) -> bool:
            demand = t.demand
            key = (demand.cpu, demand.mem)
            if key in over_budget:
                return False
            if demand.fits_in(state["remaining"]):
                return True
            over_budget.add(key)
            return False

        def debit(t: Task, _server) -> None:
            state["remaining"] = (state["remaining"] - t.demand).clamp_nonnegative()

        for _ in range(self.policy.max_clones):
            launched = 0
            for level, job_ids in groups:
                launched += fill_clones_best_fit(
                    view,
                    self._clone_targets(by_id, job_ids, level),
                    budget_check=budget_check,
                    on_launch=debit,
                )
            if launched == 0:
                break

    def _clone_targets(
        self, by_id: dict[int, Job], job_ids: list[int], level: int
    ) -> Iterator[Task]:
        """Running tasks of the group's jobs eligible for one more clone
        (lazy — evaluated as the fill loop consumes it)."""
        category_length = 2.0**level
        for jid in job_ids:
            for phase in by_id[jid].phases:
                if phase.num_running == 0:  # O(1) guard before the scan
                    continue
                for task in phase.tasks:
                    if task.state is TaskState.RUNNING and self.policy.may_clone(
                        task, category_length=category_length
                    ):
                        yield task
