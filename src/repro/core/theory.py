"""Theoretical analyses of Secs. 4.1–4.2: when cloning helps, and
empirical competitive-ratio machinery for Theorem 1.

Sec. 4.1 studies N single-task jobs arriving at time zero on a cluster of
normalized capacity 1, job j demanding 1/2^j of each resource with unit
expected execution time, under a shared speedup function h.  Three
schemes are compared in closed form:

* ``flow₁`` — schedule everything at time 0 and clone only job N:
  ``flow₁ = N − 1 + 1/h(2)``;
* ``flow₂`` — serial with maximal cloning (2^j copies for job j):
  ``flow₂ = Σ_{j=1}^N j / h(2^j)``;
* ``flow₃`` — two copies each, smallest job first:
  ``flow₃ ≤ (N + 1)/h(2)``.

The paper's conclusion — ``flow₃ < flow₁ < flow₂`` for Pareto speedups
once N is large enough — motivates cloning *small* jobs with a *small*
number of copies; both predicates are provided.

For Theorem 1 (Algorithm 1 without cloning is 6R-competitive) there is
no oracle for OPT, so :func:`flowtime_lower_bound` computes a certified
lower bound on any schedule's total flowtime (valid with or without
cloning, since h(r) ≤ r means cloning never increases the useful-volume
completion rate) and :func:`empirical_competitive_ratio` divides an
achieved flowtime by it.  ``theorem1_bound_holds`` then checks the 6R
guarantee against that bound — a *stricter* test than the theorem, since
the bound lower-bounds OPT.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.knapsack import max_count_knapsack
from repro.core.volume import JobMeasure
from repro.resources import EPS
from repro.workload.speedup import SpeedupFunction

__all__ = [
    "flow_schedule_all_then_clone_smallest",
    "flow_serial_maximal_cloning",
    "flow_two_clones_smallest_first",
    "cloning_helps_condition",
    "flowtime_lower_bound",
    "empirical_competitive_ratio",
    "theorem1_bound_holds",
]


# ----------------------------------------------------------------------
# Sec. 4.1 closed forms
# ----------------------------------------------------------------------
def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"need at least one job, got {n}")


def flow_schedule_all_then_clone_smallest(n: int, h: SpeedupFunction) -> float:
    """flow₁ = N − 1 + 1/h(2): all jobs start at t=0, job N gets one clone."""
    _check_n(n)
    return n - 1 + 1.0 / h(2)


def flow_serial_maximal_cloning(n: int, h: SpeedupFunction) -> float:
    """flow₂ = Σ_{j=1}^N j / h(2^j): one job at a time, cloned to fill
    the whole cluster."""
    _check_n(n)
    return sum(j / h(2.0**j) for j in range(1, n + 1))


def flow_two_clones_smallest_first(n: int, h: SpeedupFunction) -> float:
    """flow₃ upper bound (N + 1)/h(2): two copies per job, smallest
    demand first (jobs 2..N fit simultaneously, job 1 follows)."""
    _check_n(n)
    return (n + 1) / h(2)


def cloning_helps_condition(n: int, alpha: float) -> bool:
    """The paper's sufficient condition for flow₃ < flow₁ < flow₂ under a
    Pareto(α) speedup: N > 2α − 1 (and N ≥ α/(α−1) for the flow₂ leg)."""
    if alpha <= 1:
        raise ValueError("alpha must exceed 1")
    return n > 2 * alpha - 1 and n >= alpha / (alpha - 1.0)


# ----------------------------------------------------------------------
# Theorem 1 machinery
# ----------------------------------------------------------------------
def flowtime_lower_bound(measures: Sequence[JobMeasure]) -> float:
    """A certified lower bound on the total flowtime of ANY schedule of
    the transient instance on a capacity-1 system.

    Three bounds are combined (max):

    * **length bound** — each job's flowtime is at least its own
      processing time: F ≥ Σ_j e_j.  (Without cloning; with cloning a
      job still needs e_j / h(∞) ≥ e_j·(α−1)/α time — we use the
      conservative Σ e_j only when it does not overshoot, so the bound
      stays valid for cloned schedules via the volume bound below.)
    * **volume (SVF) bound** — useful volume completes at rate ≤ 1
      provided h(r) ≤ r, so with jobs sorted by volume ascending the
      k-th completion is ≥ Σ_{i≤k} v_i and F ≥ Σ_k Σ_{i≤k} v_i.
      h(r) ≤ r holds exactly when α ≥ 1 + 1/r, hence always for
      moment-fitted Paretos (α > 2); for extremely heavy tails
      (α < 1 + 1/r) cloning is super-linear and this bound only applies
      to no-cloning schedules — the regime check is the caller's.
    * **level-counting bound** — the Eq. (13) argument adapted to
      continuous time with *disjoint* intervals: over [0, 1) each job
      accrues min(length, 1); over [2^{l-1}, 2^l) every job that cannot
      have finished by 2^l (at most N_l can — knapsack count with volume
      capacity 2^l over jobs of length ≤ 2^l) accrues the full 2^{l-1}.

    The level bound assumes no cloning (a cloned job's length can shrink
    below its nominal value); Theorem 1 compares no-cloning schedules, so
    this is the right regime.  The volume bound alone remains valid under
    cloning since h(r) ≤ r.
    """
    if not measures:
        return 0.0
    n = len(measures)
    volumes = sorted(m.volume for m in measures)
    # Volume bound (valid under cloning).
    acc = 0.0
    vol_bound = 0.0
    for v in volumes:
        acc += v
        vol_bound += acc
    # Level-counting bound over disjoint intervals.
    max_len = max(m.length for m in measures)
    total_v = sum(volumes)
    g = max(1, math.ceil(math.log2(max(max_len, total_v, 2.0))))
    level_bound = sum(min(m.length, 1.0) for m in measures)  # [0, 1)
    for level in range(1, g + 1):
        cap = 2.0**level
        eligible = [m.volume for m in measures if m.length <= cap]
        n_l = len(max_count_knapsack(eligible, cap))
        level_bound += (cap / 2.0) * (n - n_l)
        if n_l == n:
            break
    return max(vol_bound, level_bound)


def empirical_competitive_ratio(
    achieved_flowtime: float, measures: Sequence[JobMeasure]
) -> float:
    """achieved / lower-bound — an upper bound on the true ratio vs OPT."""
    lb = flowtime_lower_bound(measures)
    if lb <= 0:
        raise ValueError("degenerate instance: zero lower bound")
    return achieved_flowtime / lb


def theorem1_bound_holds(
    achieved_flowtime: float,
    measures: Sequence[JobMeasure],
    speedup_bound: float,
) -> bool:
    """Check F^A ≤ 6R · F*_lb.

    Stricter than Theorem 1 itself (F*_lb ≤ F*); used as an empirical
    sanity harness in tests and benches.
    """
    if speedup_bound < 1:
        raise ValueError("R must be >= 1 (h(1) = 1)")
    return achieved_flowtime <= 6.0 * speedup_bound * flowtime_lower_bound(measures) + EPS
