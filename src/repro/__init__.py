"""repro — a full reproduction of "Multi Resource Scheduling with Task
Cloning in Heterogeneous Clusters" (DollyMP, ICPP 2022).

Public API tour:

* :mod:`repro.cluster` — heterogeneous servers, topologies and the
  paper's cluster configurations;
* :mod:`repro.workload` — DAG jobs, straggler distributions, speedup
  functions, MapReduce builders and synthetic Google traces;
* :mod:`repro.sim` — the discrete-event engine and ``run_simulation``;
* :mod:`repro.schedulers` — DollyMP and every baseline of the paper
  (Capacity/FIFO, SRPT, SVF, DRF, Tetris, Carbyne, Graphene);
* :mod:`repro.core` — DollyMP's algorithmic pieces (knapsack oracle,
  Algorithm 1 priorities, Algorithm 2 online scheduler, cloning policy,
  Sec. 4 theory);
* :mod:`repro.analysis` — CDFs and report tables for the benches;
* :mod:`repro.observability` — opt-in metrics registry, span tracing
  and profiling hooks (``Observability``).

Quickstart::

    from repro import (
        paper_cluster_30_nodes, wordcount_job, DollyMPScheduler, run_simulation,
    )
    cluster = paper_cluster_30_nodes()
    jobs = [wordcount_job(4.0, arrival_time=60.0 * i) for i in range(8)]
    result = run_simulation(cluster, DollyMPScheduler(max_clones=2), jobs)
    print(result.summary())
"""

from repro.resources import Resources
from repro.cluster import (
    Cluster,
    Server,
    Topology,
    paper_cluster_30_nodes,
    trace_sim_cluster,
    homogeneous_cluster,
    single_server_cluster,
)
from repro.workload import (
    Job,
    Phase,
    Task,
    ParetoType1,
    Deterministic,
    ParetoSpeedup,
    wordcount_job,
    pagerank_job,
    mapreduce_job,
    GoogleTraceGenerator,
    jobs_from_specs,
)
from repro.sim import run_simulation, SimulationResult, JobRecord
from repro.sim.runner import compare_schedulers
from repro.schedulers import (
    CapacityScheduler,
    FIFOScheduler,
    SRPTScheduler,
    SVFScheduler,
    DRFScheduler,
    TetrisScheduler,
    CarbyneScheduler,
    GrapheneScheduler,
    DollyMPScheduler,
)
from repro.core import CloningPolicy, LearningDollyMPScheduler, StragglerServerTracker
from repro.observability import Observability

__version__ = "1.0.0"

__all__ = [
    "Resources",
    "Cluster",
    "Server",
    "Topology",
    "paper_cluster_30_nodes",
    "trace_sim_cluster",
    "homogeneous_cluster",
    "single_server_cluster",
    "Job",
    "Phase",
    "Task",
    "ParetoType1",
    "Deterministic",
    "ParetoSpeedup",
    "wordcount_job",
    "pagerank_job",
    "mapreduce_job",
    "GoogleTraceGenerator",
    "jobs_from_specs",
    "run_simulation",
    "compare_schedulers",
    "SimulationResult",
    "JobRecord",
    "CapacityScheduler",
    "FIFOScheduler",
    "SRPTScheduler",
    "SVFScheduler",
    "DRFScheduler",
    "TetrisScheduler",
    "CarbyneScheduler",
    "GrapheneScheduler",
    "DollyMPScheduler",
    "CloningPolicy",
    "LearningDollyMPScheduler",
    "StragglerServerTracker",
    "Observability",
    "__version__",
]
