#!/usr/bin/env sh
# The consolidated CI gate: runs every check `make check` promises, in
# order, fail-fast, with one PASS/FAIL summary line per gate.  CI calls
# `make check` which calls this script — the gate list lives here and
# nowhere else, so local runs and CI can never drift.
#
# Besides the PASS/FAIL lines, the script writes a machine-readable
# summary to artifacts/check_summary.json ({gate, status, duration_s}
# per entry) on success AND on failure — CI uploads it as an artifact
# so a red run still reports exactly which gate broke and how long the
# green ones took.
#
# Usage: tools/check.sh [gate ...]     (default: the full sequence)

set -u

GATES="${*:-lint test smoke replay-smoke fault-smoke engine-smoke service-smoke trace-smoke shard-smoke bench-check coverage}"

SUMMARY="artifacts/check_summary.json"
mkdir -p "$(dirname "$SUMMARY")"
rows=""

append_row() {
    # append_row <gate> <status> <duration_s>
    row="{\"gate\": \"$1\", \"status\": \"$2\", \"duration_s\": $3}"
    if [ -n "$rows" ]; then
        rows="$rows,
  $row"
    else
        rows="$row"
    fi
}

write_summary() {
    # write_summary <overall-status>
    printf '{\n "gates": [\n  %s\n ],\n "status": "%s"\n}\n' \
        "$rows" "$1" >"$SUMMARY"
}

for gate in $GATES; do
    start=$(date +%s)
    if ${MAKE:-make} -s "$gate"; then
        end=$(date +%s)
        echo "PASS $gate ($((end - start))s)"
        append_row "$gate" pass "$((end - start))"
    else
        status=$?
        end=$(date +%s)
        echo "FAIL $gate ($((end - start))s)"
        append_row "$gate" fail "$((end - start))"
        write_summary fail
        echo "check: gate '$gate' failed (exit $status); later gates not run" >&2
        echo "check: summary -> $SUMMARY" >&2
        exit "$status"
    fi
done
write_summary pass
echo "check: all gates passed (summary -> $SUMMARY)"
