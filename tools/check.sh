#!/usr/bin/env sh
# The consolidated CI gate: runs every check `make check` promises, in
# order, fail-fast, with one PASS/FAIL summary line per gate.  CI calls
# `make check` which calls this script — the gate list lives here and
# nowhere else, so local runs and CI can never drift.
#
# Usage: tools/check.sh [gate ...]     (default: the full sequence)

set -u

GATES="${*:-lint test smoke replay-smoke fault-smoke engine-smoke service-smoke bench-check coverage}"

for gate in $GATES; do
    start=$(date +%s)
    if ${MAKE:-make} -s "$gate"; then
        end=$(date +%s)
        echo "PASS $gate ($((end - start))s)"
    else
        status=$?
        end=$(date +%s)
        echo "FAIL $gate ($((end - start))s)"
        echo "check: gate '$gate' failed (exit $status); later gates not run" >&2
        exit "$status"
    fi
done
echo "check: all gates passed"
