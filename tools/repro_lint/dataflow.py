"""Whole-program dataflow passes over the :mod:`tools.repro_lint.graph`.

Three analyses, each reported as its own rule family:

**Taint tracking (RL010–RL012).**  A *nondeterminism source* is a
wall-clock read (RL010), an unseeded/global RNG draw (RL011), or an
iteration-order-dependent value — ``id()``, ``hash()``, a returned
``set`` (RL012).  Function *summaries* record whether a function's
return value derives from a source, directly or through calls to other
tainted functions; the summaries are iterated to a fixpoint over the
call graph, so taint survives any number of helper hops across module
boundaries.  A *decision sink* is a ``schedule``/``on_*`` method of a
``Scheduler`` subclass, ``SimulationEngine.apply`` / ``ClusterView.apply``,
a session driver (``SimulationEngine.step``/``ingest``/``run_until`` —
the online-arrival and event-processing entry points, DESIGN.md §5.8),
or an event-queue ``push``.  Flags:

* a call to a tainted function anywhere inside a sink body (the
  nondeterministic value materializes inside decision logic), and
* a tainted expression passed as an argument to ``view.apply(...)`` /
  ``events.push(...)`` from *any* function.

Direct source calls inside ``src/repro`` are left to the per-file rules
(RL002/RL004); these rules only fire on flows that cross a function
boundary — exactly the hazard the per-file pass cannot see.

**State-ownership escape analysis (RL013).**  Generalizes RL001: the
protected capacity arrays/attributes may only be mutated by the two
owner modules, and RL001 only catches *syntactically direct* stores.
This pass catches (a) mutation through a local alias
(``arr = mirror.avail_cpu; arr[0] = x``) and (b) passing a protected
array into a helper — in any module — that mutates its parameter
(summaries computed to a fixpoint, so a pass-through wrapper is caught
too).

**Shard-safety pre-check (RL014).**  Inventories the state that blocks
partitioning the engine across shards (ROADMAP Open item 2): module-
level mutable containers (flagged harder when some function actually
mutates them), class-level mutable containers (shared by every
instance), and class-attribute writes from instance methods.  Module-
scope initialization (building a table right after binding it) is not
treated as mutation.

All passes iterate sorted structures only, so findings come out in a
deterministic order with deterministic messages.  Messages name
functions and modules, never line numbers, so baseline fingerprints
survive unrelated edits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from tools.repro_lint.graph import (
    MODULE_BODY,
    FunctionInfo,
    ProgramGraph,
)
from tools.repro_lint.rules import (
    _EVENT_QUEUE_NAME,
    _NP_RANDOM_OK,
    _NP_SEEDED_CTORS,
    _PROTECTED_ATTRS,
    _RL001_OWNERS,
    _WALL_CLOCK,
    resolve_dotted,
)

__all__ = ["ProgramFinding", "run_whole_program"]


@dataclass(frozen=True)
class ProgramFinding:
    rule: str
    relpath: str
    line: int
    col: int
    message: str


#: Taint kind → rule id.
_KIND_RULE = {
    "wall-clock": "RL010",
    "rng": "RL011",
    "order": "RL012",
    "set-order": "RL012",
}

_KIND_NOUN = {
    "wall-clock": "wall-clock",
    "rng": "unseeded-RNG",
    "order": "iteration-order-dependent",
    "set-order": "set-ordered",
}

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "fill",
    }
)

_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)


# ======================================================================
# Taint sources and expression-level taint evaluation
# ======================================================================


def _source_kind(call: ast.Call, imports: dict[str, str]) -> Optional[str]:
    """Classify a call as a nondeterminism source, or None."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in ("id", "hash"):
        return "order"
    path = resolve_dotted(func, imports)
    if path is None:
        return None
    if path in _WALL_CLOCK:
        return "wall-clock"
    if path.startswith("random."):
        return "rng"
    if path.startswith("numpy.random."):
        fn = path.rsplit(".", 1)[1]
        if fn not in _NP_RANDOM_OK:
            return "rng"
        if fn in _NP_SEEDED_CTORS and not call.args and not call.keywords:
            return "rng"
    return None


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@dataclass(frozen=True)
class _Taint:
    """One taint fact: the ultimate source plus the last hop it crossed."""

    source: str  # e.g. "`time.time()` in repro.util.clock"
    via: Optional[str]  # callee qname the taint arrived through


Summaries = dict[str, dict[str, _Taint]]


def _expr_taints(
    expr: ast.expr,
    fn: FunctionInfo,
    graph: ProgramGraph,
    summaries: Summaries,
    tainted_names: dict[str, dict[str, _Taint]],
    *,
    include_set_order: bool = False,
) -> dict[str, _Taint]:
    """Taint kinds carried by ``expr`` (sources, tainted callees, tainted
    locals), first-found origin per kind in deterministic walk order."""
    imports = graph.imports.get(fn.module, {})
    out: dict[str, _Taint] = {}
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            kind = _source_kind(node, imports)
            if kind is not None:
                raw = resolve_dotted(node.func, imports) or (
                    node.func.id if isinstance(node.func, ast.Name) else "?"
                )
                out.setdefault(kind, _Taint(f"`{raw}()` in {fn.module}", None))
            callee = graph.resolve_call(node, fn)
            if callee is not None:
                for k, t in summaries.get(callee, {}).items():
                    if k == "set-order" and not include_set_order:
                        continue
                    out.setdefault(k, _Taint(t.source, callee))
        elif isinstance(node, ast.Name) and node.id in tainted_names:
            for k, t in tainted_names[node.id].items():
                if k == "set-order" and not include_set_order:
                    continue
                out.setdefault(k, t)
    return out


def _walk_own(fn: FunctionInfo) -> Iterator[ast.AST]:
    """Walk ``fn``'s own body.  For the ``<module>`` pseudo-function the
    nested function/class bodies are excluded — they have their own
    entries in the function table and would otherwise be visited twice."""
    if fn.name == MODULE_BODY:
        for stmt in fn.node.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from ast.walk(stmt)
    else:
        yield from ast.walk(fn.node)


def _assignment_pairs(node: ast.stmt) -> Iterator[tuple[ast.expr, ast.expr]]:
    """(target, value) pairs of plain/ann/aug assignments with a value."""
    if isinstance(node, ast.Assign):
        for t in node.targets:
            yield t, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield node.target, node.value
    elif isinstance(node, ast.AugAssign):
        yield node.target, node.value


def _function_taint_state(
    fn: FunctionInfo, graph: ProgramGraph, summaries: Summaries
) -> dict[str, dict[str, _Taint]]:
    """Locals of ``fn`` carrying taint (two forward passes handle
    use-before-def introduced by loops)."""
    tainted: dict[str, dict[str, _Taint]] = {}
    for _ in range(2):
        changed = False
        for node in _walk_own(fn):
            for target, value in _assignment_pairs(node):
                kinds = _expr_taints(
                    value, fn, graph, summaries, tainted, include_set_order=True
                )
                if not kinds:
                    continue
                names = [target] if isinstance(target, ast.Name) else [
                    e for e in getattr(target, "elts", []) if isinstance(e, ast.Name)
                ]
                for name in names:
                    slot = tainted.setdefault(name.id, {})
                    for k, t in kinds.items():
                        if k not in slot:
                            slot[k] = t
                            changed = True
        if not changed:
            break
    return tainted


def _compute_summaries(graph: ProgramGraph) -> Summaries:
    """Fixpoint over the call graph: which functions *return* taint."""
    summaries: Summaries = {}
    for _ in range(max(4, len(graph.functions))):
        changed = False
        for qname in sorted(graph.functions):
            fn = graph.functions[qname]
            if fn.name == MODULE_BODY:
                continue
            tainted = _function_taint_state(fn, graph, summaries)
            slot = summaries.setdefault(qname, {})
            before = dict(slot)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                for k, t in _expr_taints(
                    node.value, fn, graph, summaries, tainted, include_set_order=True
                ).items():
                    slot.setdefault(k, t)
                if _is_set_expr(node.value):
                    slot.setdefault(
                        "set-order", _Taint(f"set value returned by {qname}", None)
                    )
            if slot != before:
                changed = True
        if not changed:
            break
    return {q: s for q, s in summaries.items() if s}


# ======================================================================
# Decision sinks
# ======================================================================


def _scheduler_classes(graph: ProgramGraph) -> set[str]:
    out: set[str] = set()
    for cq in graph.classes:
        names = {graph.classes[a].name for a in graph.mro(cq) if a in graph.classes}
        names |= {b.rsplit(".", 1)[-1] for b in graph.ancestors(cq)}
        if "Scheduler" in names:
            out.add(cq)
    return out


def _decision_sinks(graph: ProgramGraph) -> dict[str, str]:
    """Sink-function qname → human label."""
    sinks: dict[str, str] = {}
    for cq in sorted(_scheduler_classes(graph)):
        cls = graph.classes[cq]
        for mname, mq in sorted(cls.methods.items()):
            if mname == "schedule" or mname.startswith("on_"):
                sinks[mq] = f"decision hook `{cls.name}.{mname}`"
    for cq in sorted(graph.classes):
        cls = graph.classes[cq]
        if cls.name in ("SimulationEngine", "ClusterView") and "apply" in cls.methods:
            sinks[cls.methods["apply"]] = f"action choke point `{cls.name}.apply`"
        if cls.name == "SimulationEngine":
            # The session API (DESIGN.md §5.8): every event the engine
            # processes flows through step(), and every online arrival
            # through ingest() — nondeterminism there skews the whole
            # (time, kind, seq) order, same hazard as apply().
            for mname in ("step", "ingest", "run_until"):
                if mname in cls.methods:
                    sinks[cls.methods[mname]] = (
                        f"session driver `{cls.name}.{mname}`"
                    )
    return sinks


def _is_apply_call(call: ast.Call, callee: Optional[str]) -> bool:
    if callee is not None and (
        callee.endswith(".SimulationEngine.apply") or callee.endswith(".ClusterView.apply")
    ):
        return True
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "apply":
        root = func.value
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        return isinstance(root, ast.Name) and root.id in ("view", "engine")
    return False


def _is_push_call(call: ast.Call, callee: Optional[str]) -> bool:
    if callee is not None and callee.endswith(".EventQueue.push"):
        return True
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "push":
        base = func.value
        name = None
        if isinstance(base, ast.Attribute):
            name = base.attr
        elif isinstance(base, ast.Name):
            name = base.id
        return name is not None and _EVENT_QUEUE_NAME.match(name) is not None
    return False


def _taint_findings(graph: ProgramGraph) -> Iterator[ProgramFinding]:
    summaries = _compute_summaries(graph)
    sinks = _decision_sinks(graph)
    seen: set[tuple[str, str, int, int]] = set()

    def emit(rule: str, fn: FunctionInfo, node: ast.expr, message: str):
        key = (rule, fn.relpath, node.lineno, node.col_offset)
        if key not in seen:
            seen.add(key)
            yield ProgramFinding(rule, fn.relpath, node.lineno, node.col_offset, message)

    # Pass 1 — tainted helpers called inside a decision sink.
    for mq in sorted(sinks):
        fn = graph.functions[mq]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = graph.resolve_call(node, fn)
            if callee is None or callee == mq:
                continue
            for kind in sorted(summaries.get(callee, {})):
                if kind == "set-order":
                    continue
                t = summaries[callee][kind]
                yield from emit(
                    _KIND_RULE[kind],
                    fn,
                    node,
                    f"{_KIND_NOUN[kind]} value from {t.source} reaches "
                    f"{sinks[mq]} through `{callee}` — decision logic must "
                    "be a pure function of seeded sim state",
                )
        # set-order returns only matter when the sink iterates them.
        iter_exprs: list[ast.expr] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.For):
                iter_exprs.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iter_exprs.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
            ):
                iter_exprs.append(node.args[0])
        for it in iter_exprs:
            if not isinstance(it, ast.Call):
                continue
            callee = graph.resolve_call(it, fn)
            if callee is None:
                continue
            t = summaries.get(callee, {}).get("set-order")
            if t is not None:
                yield from emit(
                    "RL012",
                    fn,
                    it,
                    f"{sinks[mq]} iterates the set-ordered return of "
                    f"`{callee}` ({t.source}) — sort it with an explicit "
                    "key before iterating",
                )

    # Pass 2 — tainted arguments flowing into apply/push anywhere.
    for qname in sorted(graph.functions):
        fn = graph.functions[qname]
        tainted = _function_taint_state(fn, graph, summaries)
        for node in _walk_own(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = graph.resolve_call(node, fn)
            if _is_apply_call(node, callee):
                target = "the action protocol (`view.apply`)"
            elif _is_push_call(node, callee):
                target = "the event queue (`push`)"
            else:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                for kind, t in sorted(
                    _expr_taints(arg, fn, graph, summaries, tainted).items()
                ):
                    via = f" through `{t.via}`" if t.via else ""
                    yield from emit(
                        _KIND_RULE[kind],
                        fn,
                        arg,
                        f"{_KIND_NOUN[kind]} value from {t.source}{via} flows "
                        f"into {target} in `{qname}` — every decision input "
                        "must derive from seeded sim state",
                    )


# ======================================================================
# RL013 — state-ownership escape analysis
# ======================================================================


def _root_name(node: ast.expr) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _protected_attr_expr(node: ast.expr) -> Optional[str]:
    """``mirror.avail_cpu`` / ``server._available`` → the attr name."""
    if isinstance(node, ast.Attribute) and node.attr in _PROTECTED_ATTRS:
        return node.attr
    return None


def _param_mutation_summaries(graph: ProgramGraph) -> dict[str, set[str]]:
    """qname → names of parameters the function mutates in place
    (fixpoint, so pass-through wrappers are included).  Restricted to
    module-level functions: method receivers complicate indexing and the
    sanctioned owner APIs are methods."""
    summaries: dict[str, set[str]] = {}
    for _ in range(max(4, len(graph.functions))):
        changed = False
        for qname in sorted(graph.functions):
            fn = graph.functions[qname]
            if fn.class_qname is not None or fn.name == MODULE_BODY:
                continue
            params = set(fn.params)
            mutated = summaries.setdefault(qname, set())
            before = set(mutated)
            for node in ast.walk(fn.node):
                for target, _value in _assignment_pairs(node):
                    if isinstance(target, ast.Subscript):
                        root = _root_name(target.value)
                        if root in params:
                            mutated.add(root)
                if isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATOR_METHODS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in params
                    ):
                        mutated.add(func.value.id)
                    callee = graph.resolve_call(node, fn)
                    if callee is not None and summaries.get(callee):
                        callee_fn = graph.functions.get(callee)
                        if callee_fn is None:
                            continue
                        for i, arg in enumerate(node.args):
                            if (
                                isinstance(arg, ast.Name)
                                and arg.id in params
                                and i < len(callee_fn.params)
                                and callee_fn.params[i] in summaries[callee]
                            ):
                                mutated.add(arg.id)
                        for kw in node.keywords:
                            if (
                                isinstance(kw.value, ast.Name)
                                and kw.value.id in params
                                and kw.arg in summaries[callee]
                            ):
                                mutated.add(kw.value.id)
            if mutated != before:
                changed = True
        if not changed:
            break
    return {q: s for q, s in summaries.items() if s}


def _escape_findings(graph: ProgramGraph) -> Iterator[ProgramFinding]:
    owners = set(_RL001_OWNERS)
    mutators = _param_mutation_summaries(graph)
    for qname in sorted(graph.functions):
        fn = graph.functions[qname]
        if fn.relpath in owners:
            continue
        # Aliases of protected state bound anywhere in this function.
        aliases: dict[str, str] = {}
        for node in _walk_own(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                attr = _protected_attr_expr(node.value)
                if isinstance(target, ast.Name) and attr is not None:
                    aliases[target.id] = attr
        for node in _walk_own(fn):
            # (a) mutation through an alias
            for target, _value in _assignment_pairs(node):
                hit = None
                if isinstance(target, ast.Subscript):
                    root = target.value
                    if isinstance(root, ast.Name) and root.id in aliases:
                        hit = f"`{root.id}[...]` (alias of `{aliases[root.id]}`)"
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(target, ast.Name)
                    and target.id in aliases
                ):
                    hit = f"`{target.id}` (alias of `{aliases[target.id]}`)"
                if hit is not None:
                    yield ProgramFinding(
                        "RL013",
                        fn.relpath,
                        target.lineno,
                        target.col_offset,
                        f"write to {hit} mutates protected capacity state "
                        f"outside the owner modules — route it through "
                        "Server.allocate/release or AvailabilityMirror.update",
                    )
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases
                ):
                    yield ProgramFinding(
                        "RL013",
                        fn.relpath,
                        node.lineno,
                        node.col_offset,
                        f"`.{func.attr}()` on `{func.value.id}` (alias of "
                        f"`{aliases[func.value.id]}`) mutates protected "
                        "capacity state outside the owner modules",
                    )
                # (b) protected state escaping into a param-mutating helper
                callee = graph.resolve_call(node, fn)
                if callee is not None and callee in mutators:
                    callee_fn = graph.functions[callee]
                    for i, arg in enumerate(node.args):
                        attr = _protected_attr_expr(arg)
                        if (
                            attr is not None
                            and i < len(callee_fn.params)
                            and callee_fn.params[i] in mutators[callee]
                        ):
                            yield ProgramFinding(
                                "RL013",
                                fn.relpath,
                                arg.lineno,
                                arg.col_offset,
                                f"protected `{attr}` escapes into `{callee}`, "
                                f"which mutates its `{callee_fn.params[i]}` "
                                "parameter — capacity state must not be "
                                "mutated outside the owner modules",
                            )
                    for kw in node.keywords:
                        attr = _protected_attr_expr(kw.value)
                        if attr is not None and kw.arg in mutators[callee]:
                            yield ProgramFinding(
                                "RL013",
                                fn.relpath,
                                kw.value.lineno,
                                kw.value.col_offset,
                                f"protected `{attr}` escapes into `{callee}`, "
                                f"which mutates its `{kw.arg}` parameter — "
                                "capacity state must not be mutated outside "
                                "the owner modules",
                            )


# ======================================================================
# RL014 — shard-safety pre-check
# ======================================================================


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CTORS
    )


def _locally_bound(fn: FunctionInfo, name: str) -> bool:
    """Does ``fn`` bind ``name`` as a parameter or plain local (without a
    ``global`` declaration)?  Used to rule out shadowing."""
    if name in fn.params:
        return True
    declares_global = any(
        isinstance(n, ast.Global) and name in n.names for n in ast.walk(fn.node)
    )
    if declares_global:
        return False
    for node in ast.walk(fn.node):
        for target, _value in _assignment_pairs(node):
            if isinstance(target, ast.Name) and target.id == name:
                return True
        if isinstance(node, (ast.For, ast.comprehension)):
            tgt = node.target
            if isinstance(tgt, ast.Name) and tgt.id == name:
                return True
    return False


def _find_global_mutation(
    graph: ProgramGraph, modname: str, name: str
) -> Optional[str]:
    """First function (sorted qname) that mutates module global
    ``modname.name`` from function scope; module-scope init is exempt."""
    ref = f"{modname}.{name}"
    for qname in sorted(graph.functions):
        fn = graph.functions[qname]
        if fn.name == MODULE_BODY:
            continue
        same_module = fn.module == modname
        if same_module and _locally_bound(fn, name):
            continue

        def _is_ref(node: ast.expr) -> bool:
            if same_module and isinstance(node, ast.Name) and node.id == name:
                return True
            dotted = resolve_dotted(node, graph.imports.get(fn.module, {}))
            return dotted == ref

        declares_global = same_module and any(
            isinstance(n, ast.Global) and name in n.names for n in ast.walk(fn.node)
        )
        for node in ast.walk(fn.node):
            for target, _value in _assignment_pairs(node):
                if isinstance(target, ast.Subscript) and _is_ref(target.value):
                    return qname
                if (
                    declares_global
                    and isinstance(target, ast.Name)
                    and target.id == name
                ):
                    return qname
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and _is_ref(func.value)
                ):
                    return qname
    return None


def _shard_findings(graph: ProgramGraph) -> Iterator[ProgramFinding]:
    # (a) module-level mutable containers
    for modname in sorted(graph.modules):
        info = graph.modules[modname]
        for stmt in info.tree.body:
            for target, value in _assignment_pairs(stmt):
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue
                if not _is_mutable_container(value):
                    continue
                mutator = _find_global_mutation(graph, modname, name)
                if mutator is not None:
                    msg = (
                        f"module-level mutable `{name}` is mutated by "
                        f"`{mutator}` — process-global state cannot be "
                        "partitioned across shards; move it into per-run "
                        "engine state"
                    )
                else:
                    msg = (
                        f"module-level mutable container `{name}` — freeze "
                        "it (tuple/frozenset/MappingProxyType) so shard "
                        "workers can never diverge through shared "
                        "module state"
                    )
                yield ProgramFinding(
                    "RL014", info.relpath, target.lineno, target.col_offset, msg
                )
    # (b) class-level mutable containers
    for cq in sorted(graph.classes):
        cls = graph.classes[cq]
        for stmt in cls.node.body:
            for target, value in _assignment_pairs(stmt):
                if isinstance(target, ast.Name) and _is_mutable_container(value):
                    yield ProgramFinding(
                        "RL014",
                        cls.relpath,
                        target.lineno,
                        target.col_offset,
                        f"class attribute `{cls.name}.{target.id}` is a "
                        "mutable container shared by every instance — bind "
                        "it per-instance in __init__ or freeze it",
                    )
    # (c) class-attribute writes from instance methods
    for qname in sorted(graph.functions):
        fn = graph.functions[qname]
        if fn.class_qname is None:
            continue
        for node in ast.walk(fn.node):
            for target, _value in _assignment_pairs(node):
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                hit = None
                if (
                    isinstance(base, ast.Call)
                    and isinstance(base.func, ast.Name)
                    and base.func.id == "type"
                    and len(base.args) == 1
                    and isinstance(base.args[0], ast.Name)
                    and base.args[0].id == "self"
                ):
                    hit = f"type(self).{target.attr}"
                elif isinstance(base, ast.Name):
                    local = f"{fn.module}.{base.id}"
                    resolved = (
                        local
                        if local in graph.classes
                        else graph.resolve_object(
                            graph.imports.get(fn.module, {}).get(base.id, "")
                        )
                    )
                    if resolved is not None and resolved in graph.classes:
                        hit = f"{base.id}.{target.attr}"
                if hit is not None:
                    yield ProgramFinding(
                        "RL014",
                        fn.relpath,
                        target.lineno,
                        target.col_offset,
                        f"`{qname}` writes class attribute `{hit}` — the "
                        "write is visible to every instance on the shard; "
                        "store per-run state on the instance instead",
                    )


# ======================================================================
# Entry point
# ======================================================================


def run_whole_program(graph: ProgramGraph) -> list[ProgramFinding]:
    """Run every whole-program pass; deterministic, sorted output."""
    findings: list[ProgramFinding] = []
    findings.extend(_taint_findings(graph))
    findings.extend(_escape_findings(graph))
    findings.extend(_shard_findings(graph))
    findings.sort(key=lambda f: (f.relpath, f.line, f.col, f.rule, f.message))
    return findings
