"""The per-file repro-lint rule pack (RL001–RL008) and the rule catalog.

Each per-file rule is a module-level object with a ``rule_id``, a
one-line ``summary``, an ``applies_to(relpath)`` scope predicate, and a
``check(tree, ctx)`` method yielding :class:`Finding` tuples.  Rules are
deliberately syntactic: they encode *coding idioms* whose violation is
almost always a real bug in this repo, and anything intentional can be
waived with an inline ``# repro-lint: ignore[RLxxx]``.

The whole-program rules (RL010–RL014) live in
:mod:`tools.repro_lint.dataflow` — they need the import/call graph of
:mod:`tools.repro_lint.graph` rather than a single AST — and RL009 is
synthesized by the engine's ``--unused-ignores`` pass.  ``RULE_CATALOG``
below is the single source of truth for every rule id and summary
(``--list-rules``, the SARIF driver metadata, and the README table all
derive from it).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

__all__ = ["ALL_RULES", "RULE_CATALOG", "Finding", "FileContext"]


@dataclass(frozen=True)
class Finding:
    line: int
    col: int
    message: str


@dataclass(frozen=True)
class FileContext:
    """Per-file information shared by every rule."""

    relpath: str  # POSIX, relative to the lint root
    imports: dict[str, str]  # local name -> dotted module/object path


def build_import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted paths they were imported as.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` →
    ``{"default_rng": "numpy.random.default_rng"}``.
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds c -> a.b
                imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never name stdlib/numpy
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def resolve_dotted(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve ``np.random.rand`` → ``"numpy.random.rand"`` when the
    chain is rooted in an imported name; ``None`` otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _in_dirs(relpath: str, dirs: tuple[str, ...]) -> bool:
    return any(relpath.startswith(d) for d in dirs)


# ======================================================================
# RL001 — capacity bookkeeping has exactly two owners
# ======================================================================

#: Server allocation state and the mirror's SoA arrays.  Nothing outside
#: the two owner modules may store into these — every mutation must flow
#: through Server.allocate/release so the mirror stays coherent.
_PROTECTED_ATTRS = frozenset(
    {
        "_available",
        "_allocated",
        "_running",
        "avail_cpu",
        "avail_mem",
        "alloc_cpu",
        "alloc_mem",
        "cap_cpu",
        "cap_mem",
    }
)

_RL001_OWNERS = ("src/repro/cluster/server.py", "src/repro/cluster/mirror.py")


class _RL001:
    rule_id = "RL001"
    summary = "capacity state written outside cluster/server.py + cluster/mirror.py"

    def applies_to(self, relpath: str) -> bool:
        return relpath not in _RL001_OWNERS

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                hit = self._protected_store(target)
                if hit is not None:
                    yield Finding(
                        target.lineno,
                        target.col_offset,
                        f"write to protected capacity state `{hit}` — only "
                        "Server.allocate/release and AvailabilityMirror.update "
                        "may mutate it",
                    )

    @staticmethod
    def _protected_store(target: ast.expr) -> str | None:
        # x._available = ... / x._allocated += ...
        if isinstance(target, ast.Attribute) and target.attr in _PROTECTED_ATTRS:
            return target.attr
        # mirror.avail_cpu[i] = ...
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr in _PROTECTED_ATTRS
        ):
            return f"{target.value.attr}[...]"
        # tuple/starred unpacking
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                hit = _RL001._protected_store(elt)
                if hit is not None:
                    return hit
        return None


# ======================================================================
# RL002 — randomness must be seeded and threaded as a Generator
# ======================================================================

#: numpy.random names that are fine to *call* (constructors of the
#: explicit-Generator API).  Everything else under numpy.random is the
#: legacy global-state API.
_NP_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Constructors that are unseeded (hence irreproducible) when called
#: with no arguments at all.
_NP_SEEDED_CTORS = frozenset({"default_rng", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64"})


class _RL002:
    rule_id = "RL002"
    summary = "unseeded or legacy global randomness"

    def applies_to(self, relpath: str) -> bool:
        return True

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_dotted(node.func, ctx.imports)
            if path is None:
                continue
            if path.startswith("random."):
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"stdlib `{path}` uses hidden global state — thread a "
                    "seeded numpy.random.Generator instead",
                )
            elif path.startswith("numpy.random."):
                fn = path.rsplit(".", 1)[1]
                if fn not in _NP_RANDOM_OK:
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        f"legacy `{path}` draws from numpy's global state — "
                        "use an explicit Generator parameter",
                    )
                elif fn in _NP_SEEDED_CTORS and not node.args and not node.keywords:
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        f"`{path}()` without a seed is irreproducible — pass "
                        "an explicit seed or accept a Generator parameter",
                    )


# ======================================================================
# RL003 — tolerance idiom for float comparisons in decision code
# ======================================================================

#: Identifier fragments that mark an expression as a resource/time
#: quantity.  Matched against the last attribute / variable name.
_FLOATY_NAME = re.compile(
    r"(time|cpu|mem|avail|alloc|capac|demand|theta|sigma|duration|flow"
    r"|remaining|length|volume|budget|deadline|slowdown|speedup|eps)",
    re.IGNORECASE,
)

_RL003_DIRS = ("src/repro/core/", "src/repro/schedulers/", "src/repro/cluster/")


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_infinity(node: ast.expr) -> bool:
    """`math.inf`, `np.inf`, `float("inf")`, or a negation thereof —
    exact comparison against infinity is well-defined and allowed."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_infinity(node.operand)
    if isinstance(node, ast.Attribute) and node.attr in ("inf", "infty"):
        return True
    if isinstance(node, ast.Name) and node.id in ("inf", "INF"):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return True
    return False


class _RL003:
    rule_id = "RL003"
    summary = "exact float comparison on resource/time quantities"

    def applies_to(self, relpath: str) -> bool:
        return _in_dirs(relpath, _RL003_DIRS)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)) and self._suspicious(left, right):
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        "exact ==/!= on a resource/time float — compare with "
                        "the EPS tolerance idiom (abs(a - b) <= EPS) instead",
                    )
                left = right

    @staticmethod
    def _suspicious(a: ast.expr, b: ast.expr) -> bool:
        if _is_infinity(a) or _is_infinity(b):
            return False
        for lhs, rhs in ((a, b), (b, a)):
            # comparison against a float literal (0.0, 1.5, ...)
            if isinstance(lhs, ast.Constant) and type(lhs.value) is float:
                return True
        name_a, name_b = _terminal_name(a), _terminal_name(b)
        if name_a is None and name_b is None:
            return False
        # name-vs-name (or name-vs-subscripted-name) comparisons where a
        # side reads as a resource/time quantity
        for name in (name_a, name_b):
            if name is not None and _FLOATY_NAME.search(name):
                return True
        return False


# ======================================================================
# RL004 — simulated time only; no wall-clock in sim logic
# ======================================================================

#: Wall-clock reads.  `time.perf_counter`/`process_time` are *elapsed*
#: counters used to measure scheduling overhead (Fig. overhead benches)
#: and are allowed; absolute clock reads are not.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class _RL004:
    rule_id = "RL004"
    summary = "wall-clock read inside simulation logic"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_dotted(node.func, ctx.imports)
            if path in _WALL_CLOCK:
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"`{path}` reads the wall clock — simulation logic must "
                    "use the engine's virtual `now`",
                )


# ======================================================================
# RL005 — one canonical epsilon
# ======================================================================

_EPS_NAME = re.compile(r"^_?EPS(ILON)?_?\d*$")
_CANONICAL_EPS_HOME = "src/repro/resources.py"


class _RL005:
    rule_id = "RL005"
    summary = "epsilon literal redefined outside repro.resources"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/") and relpath != _CANONICAL_EPS_HOME

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Constant)
                and type(node.value) is float
                and node.value == 1e-9
            ):
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    "literal 1e-9 — import the canonical EPS from "
                    "repro.resources so the tolerance cannot drift",
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and _EPS_NAME.match(target.id)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, (int, float))
                    ):
                        yield Finding(
                            node.lineno,
                            node.col_offset,
                            f"epsilon constant `{target.id}` redefined — import "
                            "EPS from repro.resources instead",
                        )


# ======================================================================
# RL006 — deterministic iteration in scheduling decision loops
# ======================================================================

_RL006_DIRS = ("src/repro/schedulers/", "src/repro/core/")

#: Collection names whose contents are jobs/tasks/copies; iterating the
#: unsorted `.values()` view inside decision code couples the schedule
#: to insertion order.
_ENTITY_NAME = re.compile(
    r"(job|task|cop(y|ies)|active|pending|running|measure|prior)", re.IGNORECASE
)

#: Attributes that are `set`/`frozenset` views in this codebase.
_SET_ATTRS = frozenset({"running_copies", "_running"})


class _RL006:
    rule_id = "RL006"
    summary = "iteration over unordered collection in a decision loop"

    def applies_to(self, relpath: str) -> bool:
        return _in_dirs(relpath, _RL006_DIRS)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                reason = self._unordered(it, ctx)
                if reason is not None:
                    yield Finding(
                        it.lineno,
                        it.col_offset,
                        f"iterating {reason} in a scheduling decision loop — "
                        "wrap in sorted(...) with an explicit key for "
                        "deterministic order",
                    )

    @staticmethod
    def _unordered(it: ast.expr, ctx: FileContext) -> str | None:
        if isinstance(it, ast.Call):
            func = it.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"a bare `{func.id}(...)`"
            if isinstance(func, ast.Attribute) and func.attr == "values":
                base = _terminal_name(func.value)
                if base is not None and _ENTITY_NAME.search(base):
                    return f"`{base}.values()`"
            return None
        if isinstance(it, ast.Attribute) and it.attr in _SET_ATTRS:
            return f"the set-valued `{it.attr}`"
        return None


# ======================================================================
# RL007 — policy code mutates state only through the action protocol
# ======================================================================

_RL007_DIRS = ("src/repro/schedulers/", "src/repro/core/")

#: Mutators owned by the engine / server layer.  Policy code must never
#: call them directly: a launch or kill that bypasses ``view.apply``
#: never lands in the decision journal, so the run stops being
#: replayable (DESIGN.md §5.3).
_ENGINE_MUTATORS = frozenset({"launch_copy", "kill_copy", "allocate", "release"})

#: Conventional names for the engine-owned state handles handed to
#: policy code.  Attribute stores rooted at one of these are writes to
#: simulation state from a layer that must stay read-only.
_RL007_STATE_ROOTS = frozenset({"view", "engine", "cluster"})


class _RL007:
    rule_id = "RL007"
    summary = "engine/cluster state touched outside the action protocol"

    def applies_to(self, relpath: str) -> bool:
        return _in_dirs(relpath, _RL007_DIRS)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr == "_engine":
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    "access to the private `._engine` backdoor — policy code "
                    "must go through ClusterView's read API and emit typed "
                    "actions via view.apply",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ENGINE_MUTATORS
            ):
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"direct `.{node.func.attr}(...)` call bypasses the "
                    "action protocol — emit a Launch/Kill through view.apply "
                    "so the decision lands in the replay journal",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    list(node.targets) if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    hit = self._state_store(target)
                    if hit is not None:
                        yield Finding(
                            target.lineno,
                            target.col_offset,
                            f"write to engine/cluster state `{hit}` — policy "
                            "code is read-only; mutations must flow through "
                            "typed actions (view.apply)",
                        )

    @staticmethod
    def _state_store(target: ast.expr) -> str | None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                hit = _RL007._state_store(elt)
                if hit is not None:
                    return hit
            return None
        if isinstance(target, ast.Attribute):
            # `view.x.y = ...`: the chain *below* the stored attribute is
            # what identifies engine state (storing `self.cluster = ...`
            # on a policy object is a plain reference bind, not a write
            # into the cluster).
            root, chain = _RL007._chain(target.value)
            stored = f"{'.'.join([root or '?'] + chain + [target.attr])}"
        elif isinstance(target, ast.Subscript):
            # `view.cluster.servers[0] = ...`: an item store mutates the
            # container, so every attribute in the chain counts.
            root, chain = _RL007._chain(target.value)
            stored = f"{'.'.join([root or '?'] + chain)}[...]"
        else:
            return None
        if root is None:
            return None
        if root in _RL007_STATE_ROOTS or "cluster" in chain or "_engine" in chain:
            return stored
        return None

    @staticmethod
    def _chain(node: ast.expr) -> tuple[str | None, list[str]]:
        """Unwind `a.b[i].c` → ("a", ["b", "c"]); root None if not a Name."""
        parts: list[str] = []
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None, []
        return node.id, list(reversed(parts))


# ======================================================================
# RL008 — event-queue access only through the engine's drain API
# ======================================================================

#: Modules that own the event heap.  Everyone else interacts with the
#: queue through ``push``/``pop``/``pop_batch``/``peek_*``; reaching
#: into ``_heap`` — or walking / indexing the queue wholesale — bypasses
#: the (time, kind, seq) tie-break contract the batched drain relies on
#: (DESIGN.md §5.6).
_RL008_OWNERS = ("src/repro/sim/events.py", "src/repro/sim/engine.py")

#: Names that denote the simulation event queue in this codebase
#: (``engine.events`` and the locals it gets bound to).
_EVENT_QUEUE_NAME = re.compile(r"^_?(events|event_queue)$")


class _RL008:
    rule_id = "RL008"
    summary = "event queue accessed outside the engine's drain API"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/") and relpath not in _RL008_OWNERS

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr == "_heap":
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    "access to the event queue's private `._heap` — sim logic "
                    "must use the drain API (push/pop/pop_batch/peek_*) so "
                    "the (time, kind, seq) tie-break stays engine-owned",
                )
                continue
            if isinstance(node, ast.Subscript):
                name = _terminal_name(node.value)
                if name is not None and _EVENT_QUEUE_NAME.match(name):
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        f"indexing `{name}[...]` peeks past the queue head — "
                        "use peek_time/peek_key or drain via pop_batch",
                    )
                continue
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                name = _terminal_name(it)
                if name is not None and _EVENT_QUEUE_NAME.match(name):
                    yield Finding(
                        it.lineno,
                        it.col_offset,
                        f"iterating `{name}` walks the heap in storage order, "
                        "not drain order — only the engine's pop/pop_batch "
                        "defines event order",
                    )


ALL_RULES = (
    _RL001(),
    _RL002(),
    _RL003(),
    _RL004(),
    _RL005(),
    _RL006(),
    _RL007(),
    _RL008(),
)

#: Every rule id repro-lint can emit, with its one-line summary.  The
#: per-file rules contribute their own summaries; RL000/RL009 are
#: engine-synthesized; RL010–RL014 are the whole-program dataflow rules.
RULE_CATALOG: dict[str, str] = {
    "RL000": "file does not parse (syntax error)",
    **{rule.rule_id: rule.summary for rule in ALL_RULES},
    "RL009": "stale `# repro-lint: ignore[...]` suppression matches no finding",
    "RL010": "wall-clock value reaches a decision sink through helper calls",
    "RL011": "unseeded/global RNG value reaches a decision sink through helper calls",
    "RL012": "iteration-order-dependent value (id/hash/set order) reaches a decision sink",
    "RL013": "capacity state mutated via alias or helper escape outside the owner modules",
    "RL014": "shard-unsafe shared state (module globals, class-level containers, class-attr writes)",
}
