"""Configuration for repro-lint.

Read from the ``[tool.repro-lint]`` table of ``pyproject.toml``::

    [tool.repro-lint]
    exclude = ["tests/devtools/fixtures/*"]          # all rules

    [tool.repro-lint.ignore]
    RL002 = ["tests/*", "benchmarks/*"]              # per-rule globs

Globs are ``fnmatch`` patterns matched against the POSIX path of each
file relative to the lint root (``*`` crosses ``/``, so ``tests/*``
covers the whole subtree).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

__all__ = ["LintConfig"]


@dataclass(frozen=True)
class LintConfig:
    """Per-rule and global ignore globs plus whole-program settings.

    ``ignore`` globs apply uniformly to every rule — the per-file pack
    (RL001–RL008), the stale-suppression check (RL009) and the
    whole-program dataflow rules (RL010–RL014) alike.  ``program_root``
    names the package the import/call graph is built over;
    ``whole_program = false`` disables the dataflow passes entirely;
    ``baseline`` is the repo-relative path of the committed baseline.
    """

    exclude: tuple[str, ...] = ()
    ignore: dict[str, tuple[str, ...]] = field(default_factory=dict)
    program_root: str = "src/repro"
    whole_program: bool = True
    baseline: str = "tools/repro_lint/baseline.json"

    @staticmethod
    def empty() -> "LintConfig":
        return LintConfig()

    @staticmethod
    def load(root: Path) -> "LintConfig":
        """Config from ``<root>/pyproject.toml`` (defaults when absent)."""
        pyproject = root / "pyproject.toml"
        if not pyproject.is_file():
            return LintConfig()
        table = tomllib.loads(pyproject.read_text()).get("tool", {}).get(
            "repro-lint", {}
        )
        exclude = tuple(table.get("exclude", ()))
        ignore = {
            rule: tuple(globs) for rule, globs in table.get("ignore", {}).items()
        }
        return LintConfig(
            exclude=exclude,
            ignore=ignore,
            program_root=str(table.get("program-root", "src/repro")),
            whole_program=bool(table.get("whole-program", True)),
            baseline=str(table.get("baseline", "tools/repro_lint/baseline.json")),
        )

    # ------------------------------------------------------------------
    def is_excluded(self, relpath: str) -> bool:
        return any(fnmatch(relpath, pat) for pat in self.exclude)

    def is_ignored(self, rule_id: str, relpath: str) -> bool:
        return any(fnmatch(relpath, pat) for pat in self.ignore.get(rule_id, ()))
