"""Configuration for repro-lint.

Read from the ``[tool.repro-lint]`` table of ``pyproject.toml``::

    [tool.repro-lint]
    exclude = ["tests/devtools/fixtures/*"]          # all rules

    [tool.repro-lint.ignore]
    RL002 = ["tests/*", "benchmarks/*"]              # per-rule globs

Globs are ``fnmatch`` patterns matched against the POSIX path of each
file relative to the lint root (``*`` crosses ``/``, so ``tests/*``
covers the whole subtree).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

__all__ = ["LintConfig"]


@dataclass(frozen=True)
class LintConfig:
    """Per-rule and global ignore globs."""

    exclude: tuple[str, ...] = ()
    ignore: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @staticmethod
    def empty() -> "LintConfig":
        return LintConfig()

    @staticmethod
    def load(root: Path) -> "LintConfig":
        """Config from ``<root>/pyproject.toml`` (empty when absent)."""
        pyproject = root / "pyproject.toml"
        if not pyproject.is_file():
            return LintConfig()
        table = tomllib.loads(pyproject.read_text()).get("tool", {}).get(
            "repro-lint", {}
        )
        exclude = tuple(table.get("exclude", ()))
        ignore = {
            rule: tuple(globs) for rule, globs in table.get("ignore", {}).items()
        }
        return LintConfig(exclude=exclude, ignore=ignore)

    # ------------------------------------------------------------------
    def is_excluded(self, relpath: str) -> bool:
        return any(fnmatch(relpath, pat) for pat in self.exclude)

    def is_ignored(self, rule_id: str, relpath: str) -> bool:
        return any(fnmatch(relpath, pat) for pat in self.ignore.get(rule_id, ()))
