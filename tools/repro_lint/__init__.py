"""repro-lint: repo-specific static analysis for scheduler correctness.

The simulator's guarantees (bit-identical vectorized/scalar placement,
reproducible straggler draws, exact capacity conservation) rest on
coding invariants that ordinary linters cannot see.  ``repro-lint``
checks them mechanically:

========  ==============================================================
RL001     capacity bookkeeping is written only by its owners
          (``cluster/server.py`` and ``cluster/mirror.py``)
RL002     no unseeded or legacy global randomness — RNGs are threaded
          as explicit ``numpy.random.Generator`` objects
RL003     no ``==``/``!=`` on resource/time floats in decision code —
          use the ``EPS`` tolerance idiom
RL004     no wall-clock reads inside simulation logic
RL005     no literal ``1e-9`` epsilon redefinitions — import the single
          canonical ``repro.resources.EPS``
RL006     no iteration over unordered collections in scheduling
          decision loops without an explicit sort
RL007     scheduler/core policy code never touches ``view._engine`` or
          writes engine/cluster state — all mutation flows through the
          typed action protocol (``view.apply``)
========  ==============================================================

Run it from the repository root::

    python -m tools.repro_lint src tests benchmarks

Exit status is non-zero when violations are found; each is reported as
``path:line:col: RLxxx message``.  Per-rule ignore globs live in
``[tool.repro-lint]`` in ``pyproject.toml``; a single line can be
exempted with ``# repro-lint: ignore[RL003]`` (or a bare
``# repro-lint: ignore`` for all rules).
"""

from tools.repro_lint.config import LintConfig
from tools.repro_lint.engine import Violation, lint_file, lint_paths
from tools.repro_lint.rules import ALL_RULES

__all__ = ["ALL_RULES", "LintConfig", "Violation", "lint_file", "lint_paths"]
