"""repro-lint: repo-specific static analysis for scheduler correctness.

The simulator's guarantees (bit-identical vectorized/scalar placement,
reproducible straggler draws, exact capacity conservation) rest on
coding invariants that ordinary linters cannot see.  ``repro-lint``
checks them mechanically, in two layers.

**Per-file rules** — one AST at a time:

========  ==============================================================
RL001     capacity bookkeeping is written only by its owners
          (``cluster/server.py`` and ``cluster/mirror.py``)
RL002     no unseeded or legacy global randomness — RNGs are threaded
          as explicit ``numpy.random.Generator`` objects
RL003     no ``==``/``!=`` on resource/time floats in decision code —
          use the ``EPS`` tolerance idiom
RL004     no wall-clock reads inside simulation logic
RL005     no literal ``1e-9`` epsilon redefinitions — import the single
          canonical ``repro.resources.EPS``
RL006     no iteration over unordered collections in scheduling
          decision loops without an explicit sort
RL007     scheduler/core policy code never touches ``view._engine`` or
          writes engine/cluster state — all mutation flows through the
          typed action protocol (``view.apply``)
RL008     event-queue access only through the engine's drain API
========  ==============================================================

**Whole-program rules** — a module import graph and call graph are built
over ``src/repro`` and dataflow passes run on top
(:mod:`tools.repro_lint.graph` / :mod:`tools.repro_lint.dataflow`):

========  ==============================================================
RL009     stale ``# repro-lint: ignore[...]`` suppressions
          (``--unused-ignores``)
RL010     wall-clock values laundered through helpers into decision
          sinks (``schedule``/``on_*`` hooks, ``apply``, event pushes)
RL011     unseeded-RNG values laundered through helpers into decision
          sinks
RL012     iteration-order-dependent values (``id``/``hash``/set order)
          reaching decision sinks
RL013     capacity state mutated through aliases or param-mutating
          helpers outside the owner modules (escape analysis)
RL014     shard-unsafe shared state: module-level mutable containers,
          class-level containers, class-attribute writes from methods
========  ==============================================================

Run it from the repository root::

    python -m tools.repro_lint src tests benchmarks
    python -m tools.repro_lint --format sarif --output lint.sarif src
    python -m tools.repro_lint --changed-only          # fast local loop
    python -m tools.repro_lint --list-rules

Findings print as ``path:line:col: RLxxx message``.  Exit codes: 0 clean,
1 new findings, 2 usage error, 3 internal linter error.  Pre-existing
accepted findings are pinned (with justifications) in the committed
baseline (``tools/repro_lint/baseline.json``, see
:mod:`tools.repro_lint.baseline`); per-rule ignore globs live in
``[tool.repro-lint]`` in ``pyproject.toml``; a single line can be
exempted with ``# repro-lint: ignore[RL003]`` (or a bare
``# repro-lint: ignore`` for all rules).
"""

from tools.repro_lint.baseline import Baseline
from tools.repro_lint.config import LintConfig
from tools.repro_lint.dataflow import run_whole_program
from tools.repro_lint.engine import Violation, lint_file, lint_paths, main
from tools.repro_lint.graph import ProgramGraph, build_program_graph
from tools.repro_lint.rules import ALL_RULES, RULE_CATALOG

__all__ = [
    "ALL_RULES",
    "Baseline",
    "LintConfig",
    "ProgramGraph",
    "RULE_CATALOG",
    "Violation",
    "build_program_graph",
    "lint_file",
    "lint_paths",
    "main",
    "run_whole_program",
]
