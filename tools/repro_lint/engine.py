"""File walking, suppression handling and reporting for repro-lint."""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from tools.repro_lint.config import LintConfig
from tools.repro_lint.rules import ALL_RULES, FileContext, build_import_map

__all__ = ["Violation", "lint_file", "lint_paths", "main"]

#: `# repro-lint: ignore` waives every rule on the line;
#: `# repro-lint: ignore[RL003,RL005]` waives the listed rules only.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class Violation:
    rule: str
    relpath: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.relpath}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressed_rules(source_line: str) -> frozenset[str] | None:
    """Rules waived on this line; empty frozenset means *all* rules;
    ``None`` means no suppression comment."""
    m = _SUPPRESS_RE.search(source_line)
    if m is None:
        return None
    if m.group(1) is None:
        return frozenset()
    return frozenset(r.strip() for r in m.group(1).split(",") if r.strip())


def lint_file(
    path: Path, root: Path, config: LintConfig | None = None
) -> list[Violation]:
    """Lint one file; returns the surviving (non-suppressed) violations."""
    config = config if config is not None else LintConfig.empty()
    relpath = path.resolve().relative_to(root.resolve()).as_posix()
    if config.is_excluded(relpath):
        return []
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                "RL000", relpath, exc.lineno or 1, exc.offset or 0,
                f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(relpath=relpath, imports=build_import_map(tree))
    out: list[Violation] = []
    for rule in ALL_RULES:
        if not rule.applies_to(relpath) or config.is_ignored(rule.rule_id, relpath):
            continue
        for finding in rule.check(tree, ctx):
            line_text = lines[finding.line - 1] if finding.line <= len(lines) else ""
            waived = _suppressed_rules(line_text)
            if waived is not None and (not waived or rule.rule_id in waived):
                continue
            out.append(
                Violation(rule.rule_id, relpath, finding.line, finding.col, finding.message)
            )
    out.sort(key=lambda v: (v.relpath, v.line, v.col, v.rule))
    return out


def _iter_python_files(target: Path) -> Iterable[Path]:
    if target.is_file():
        if target.suffix == ".py":
            yield target
        return
    yield from sorted(p for p in target.rglob("*.py") if p.is_file())


def lint_paths(
    targets: Sequence[Path | str],
    root: Path | str | None = None,
    config: LintConfig | None = None,
) -> list[Violation]:
    """Lint every ``.py`` file under the targets.

    ``root`` anchors relative paths for rule scoping and config globs
    (default: the current working directory).  ``config`` defaults to
    the ``[tool.repro-lint]`` table of ``<root>/pyproject.toml``.
    """
    root = Path(root) if root is not None else Path.cwd()
    if config is None:
        config = LintConfig.load(root)
    violations: list[Violation] = []
    for target in targets:
        for path in _iter_python_files(Path(target)):
            violations.extend(lint_file(path, root, config))
    violations.sort(key=lambda v: (v.relpath, v.line, v.col, v.rule))
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if "--list-rules" in args:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    targets = [a for a in args if not a.startswith("-")] or ["src", "tests", "benchmarks"]
    missing = [t for t in targets if not Path(t).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    violations = lint_paths(targets)
    for v in violations:
        print(v)
    if violations:
        print(
            f"repro-lint: {len(violations)} violation(s) in "
            f"{len({v.relpath for v in violations})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0
