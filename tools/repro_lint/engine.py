"""Orchestration, suppression handling, output and CLI for repro-lint.

The pipeline per run:

1. **Per-file rules** (RL001–RL008) over every ``.py`` file under the
   targets, exactly as before.
2. **Whole-program passes** (RL010–RL014) over the package at
   ``[tool.repro-lint] program-root`` (default ``src/repro``): a module
   import graph + call graph is built once and the dataflow rules run on
   top of it.  Findings outside the lint targets are dropped, so
   ``python -m tools.repro_lint tests`` never reports ``src`` lines.
3. **Suppressions**: inline ``# repro-lint: ignore[RLxxx]`` comments and
   ``[tool.repro-lint]`` per-rule globs apply *uniformly* to per-file and
   whole-program rules.  With ``--unused-ignores``, suppression comments
   that never matched a finding are reported as RL009 — stale waivers
   hide future regressions.
4. **Baseline**: findings fingerprinted in the committed baseline file
   are reported as baselined (visible in JSON/SARIF, counted in the
   summary) but do not fail the run; anything new does.

Exit codes are distinct and stable::

    0  clean (possibly modulo baseline)
    1  new findings
    2  usage error (unknown path, bad flags)
    3  internal error (the linter itself crashed)
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import subprocess
import sys
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from tools.repro_lint.baseline import Baseline, BaselineError, fingerprint_violations
from tools.repro_lint.config import LintConfig
from tools.repro_lint.dataflow import run_whole_program
from tools.repro_lint.graph import build_program_graph
from tools.repro_lint.rules import ALL_RULES, RULE_CATALOG, FileContext, build_import_map

__all__ = ["Violation", "lint_file", "lint_paths", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3

#: `# repro-lint: ignore` waives every rule on the line;
#: `# repro-lint: ignore[RL003,RL005]` waives the listed rules only.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class Violation:
    rule: str
    relpath: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.relpath}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressed_rules(source_line: str) -> frozenset[str] | None:
    """Rules waived on this line; empty frozenset means *all* rules;
    ``None`` means no suppression comment."""
    m = _SUPPRESS_RE.search(source_line)
    if m is None:
        return None
    if m.group(1) is None:
        return frozenset()
    return frozenset(r.strip() for r in m.group(1).split(",") if r.strip())


class _Suppressions:
    """Suppression comments of one file, with per-comment usage marks."""

    def __init__(self, relpath: str, lines: list[str]) -> None:
        self.relpath = relpath
        self.lines = lines
        self.by_line: dict[int, frozenset[str]] = {}
        self.used: set[int] = set()
        for lineno, text in enumerate(lines, start=1):
            waived = _suppressed_rules(text)
            if waived is not None:
                self.by_line[lineno] = waived

    def waives(self, rule: str, lineno: int) -> bool:
        waived = self.by_line.get(lineno)
        if waived is None:
            return False
        if not waived or rule in waived:
            self.used.add(lineno)
            return True
        return False

    def unused(self) -> Iterable[tuple[int, int, frozenset[str]]]:
        for lineno in sorted(set(self.by_line) - self.used):
            text = self.lines[lineno - 1]
            m = _SUPPRESS_RE.search(text)
            col = m.start() if m else 0
            yield lineno, col, self.by_line[lineno]


def _check_file(
    path: Path, root: Path, config: LintConfig
) -> tuple[list[Violation], Optional[_Suppressions]]:
    """Per-file rules for one file: (surviving violations, suppressions).

    Suppressions is None when the file is excluded (never linted)."""
    relpath = path.resolve().relative_to(root.resolve()).as_posix()
    if config.is_excluded(relpath):
        return [], None
    source = path.read_text()
    lines = source.splitlines()
    supp = _Suppressions(relpath, lines)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return (
            [
                Violation(
                    "RL000", relpath, exc.lineno or 1, exc.offset or 0,
                    f"syntax error: {exc.msg}",
                )
            ],
            supp,
        )
    ctx = FileContext(relpath=relpath, imports=build_import_map(tree))
    out: list[Violation] = []
    for rule in ALL_RULES:
        if not rule.applies_to(relpath) or config.is_ignored(rule.rule_id, relpath):
            continue
        for finding in rule.check(tree, ctx):
            if finding.line <= len(lines) and supp.waives(rule.rule_id, finding.line):
                continue
            out.append(
                Violation(rule.rule_id, relpath, finding.line, finding.col, finding.message)
            )
    return out, supp


def lint_file(
    path: Path, root: Path, config: LintConfig | None = None
) -> list[Violation]:
    """Per-file rules for one file (no whole-program passes)."""
    config = config if config is not None else LintConfig.empty()
    violations, _ = _check_file(Path(path), Path(root), config)
    violations.sort(key=lambda v: (v.relpath, v.line, v.col, v.rule))
    return violations


def _iter_python_files(target: Path) -> Iterable[Path]:
    if target.is_file():
        if target.suffix == ".py":
            yield target
        return
    yield from sorted(p for p in target.rglob("*.py") if p.is_file())


def _under_targets(relpath: str, target_rels: Sequence[str]) -> bool:
    return any(
        relpath == t or relpath.startswith(t.rstrip("/") + "/") for t in target_rels
    )


def lint_paths(
    targets: Sequence[Path | str],
    root: Path | str | None = None,
    config: LintConfig | None = None,
    *,
    whole_program: bool = True,
    unused_ignores: bool = False,
) -> list[Violation]:
    """Lint every ``.py`` file under the targets.

    ``root`` anchors relative paths for rule scoping and config globs
    (default: the current working directory).  ``config`` defaults to
    the ``[tool.repro-lint]`` table of ``<root>/pyproject.toml``.  The
    whole-program passes run over ``config.program_root`` when it exists
    and ``whole_program`` is true; their findings are filtered to files
    under the targets.  With ``unused_ignores``, stale inline waivers
    are reported as RL009.
    """
    root = Path(root).resolve() if root is not None else Path.cwd()
    if config is None:
        config = LintConfig.load(root)
    violations: list[Violation] = []
    suppressions: dict[str, _Suppressions] = {}
    target_rels: list[str] = []
    seen_files: set[Path] = set()
    for target in targets:
        tpath = Path(target)
        if not tpath.is_absolute():
            tpath = root / tpath
        tpath = tpath.resolve()
        try:
            target_rels.append(tpath.relative_to(root).as_posix())
        except ValueError:
            target_rels.append(tpath.as_posix())
        for path in _iter_python_files(tpath):
            if path in seen_files:
                continue
            seen_files.add(path)
            file_violations, supp = _check_file(path, root, config)
            violations.extend(file_violations)
            if supp is not None:
                suppressions[supp.relpath] = supp

    if whole_program and config.whole_program:
        graph = build_program_graph(root, config.program_root)
        if graph is not None:
            for relpath, line, msg in graph.syntax_errors:
                if _under_targets(relpath, target_rels) and not config.is_excluded(
                    relpath
                ):
                    violations.append(
                        Violation("RL000", relpath, line, 0, f"syntax error: {msg}")
                    )
            for finding in run_whole_program(graph):
                if config.is_excluded(finding.relpath):
                    continue
                if config.is_ignored(finding.rule, finding.relpath):
                    continue
                supp = suppressions.get(finding.relpath)
                if supp is None and (root / finding.relpath).is_file():
                    # File not among the targets: still honor its inline
                    # waivers, but never report its unused ones.
                    supp = _Suppressions(
                        finding.relpath,
                        (root / finding.relpath).read_text().splitlines(),
                    )
                if supp is not None and supp.waives(finding.rule, finding.line):
                    # Mark usage on the *linted* copy too so RL009 agrees.
                    linted = suppressions.get(finding.relpath)
                    if linted is not None:
                        linted.waives(finding.rule, finding.line)
                    continue
                if not _under_targets(finding.relpath, target_rels):
                    continue
                violations.append(
                    Violation(
                        finding.rule,
                        finding.relpath,
                        finding.line,
                        finding.col,
                        finding.message,
                    )
                )

    if unused_ignores:
        for relpath in sorted(suppressions):
            if config.is_ignored("RL009", relpath):
                continue
            for lineno, col, waived in suppressions[relpath].unused():
                listed = f"[{','.join(sorted(waived))}]" if waived else ""
                violations.append(
                    Violation(
                        "RL009",
                        relpath,
                        lineno,
                        col,
                        f"stale suppression `# repro-lint: ignore{listed}` — "
                        "no rule fires on this line; delete the comment so "
                        "real regressions cannot hide behind it",
                    )
                )

    violations.sort(key=lambda v: (v.relpath, v.line, v.col, v.rule))
    return violations


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------


def _render_text(new: list[Violation]) -> str:
    return "".join(f"{v}\n" for v in new)


def _render_json(new: list[Violation], baselined: list[Violation]) -> str:
    everything = sorted(
        [(v, "new") for v in new] + [(v, "baselined") for v in baselined],
        key=lambda pair: (pair[0].relpath, pair[0].line, pair[0].col, pair[0].rule),
    )
    fps = fingerprint_violations([v for v, _ in everything])
    payload = {
        "format": "repro-lint/v1",
        "counts": {"new": len(new), "baselined": len(baselined)},
        "violations": [
            {
                "rule": v.rule,
                "path": v.relpath,
                "line": v.line,
                "col": v.col,
                "message": v.message,
                "fingerprint": fp,
                "status": status,
            }
            for (v, status), fp in zip(everything, fps)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _render_sarif(new: list[Violation], baselined: list[Violation]) -> str:
    """SARIF 2.1.0 — baselined findings carry an external suppression so
    viewers show them muted while new findings surface normally."""
    everything = sorted(
        [(v, True) for v in new] + [(v, False) for v in baselined],
        key=lambda pair: (pair[0].relpath, pair[0].line, pair[0].col, pair[0].rule),
    )
    fps = fingerprint_violations([v for v, _ in everything])
    results = []
    for (v, is_new), fp in zip(everything, fps):
        result = {
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "partialFingerprints": {"reproLint/v1": fp},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.relpath,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": v.line,
                            "startColumn": max(1, v.col + 1),
                        },
                    }
                }
            ],
        }
        if not is_new:
            result["suppressions"] = [{"kind": "external"}]
        results.append(result)
    payload = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": summary},
                            }
                            for rule_id, summary in sorted(RULE_CATALOG.items())
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Git integration
# ----------------------------------------------------------------------


def _changed_relpaths(root: Path) -> Optional[set[str]]:
    """POSIX relpaths touched vs HEAD (staged, unstaged and untracked),
    or None when ``root`` is not inside a git work tree."""
    try:
        proc = subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain=v1", "-uall"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    changed: set[str] = set()
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        path = line[3:]
        if " -> " in path:  # rename: report the new side
            path = path.split(" -> ", 1)[1]
        changed.add(path.strip().strip('"'))
    return changed


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific static analysis for scheduler determinism.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format written to stdout or --output (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the report here instead of stdout; findings are still "
        "echoed as text to stdout so the gate output stays readable",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file (default: [tool.repro-lint] baseline, "
        "tools/repro_lint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to pin exactly the current findings "
        "(keeps existing justifications) and exit 0",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="only report findings in files changed vs HEAD (git-aware "
        "fast mode; the whole-program graph is still built in full)",
    )
    parser.add_argument(
        "--unused-ignores",
        action="store_true",
        help="flag stale `# repro-lint: ignore[...]` comments as RL009",
    )
    parser.add_argument(
        "--no-whole-program",
        action="store_true",
        help="skip the cross-module passes (RL010+); per-file rules only",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _run(args: argparse.Namespace) -> int:
    root = Path.cwd()
    missing = [t for t in args.targets if not (root / t).exists() and not Path(t).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return EXIT_USAGE

    config = LintConfig.load(root)
    violations = lint_paths(
        args.targets,
        root=root,
        config=config,
        whole_program=not args.no_whole_program,
        unused_ignores=args.unused_ignores,
    )

    baseline_path = Path(args.baseline) if args.baseline else root / config.baseline
    if args.no_baseline:
        baseline = Baseline(path=None)
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if args.update_baseline:
        updated = baseline.updated(violations)
        updated.write(baseline_path)
        print(
            f"repro-lint: baseline updated with {len(updated.entries)} "
            f"entr{'y' if len(updated.entries) == 1 else 'ies'} at {baseline_path}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    new, baselined, stale = baseline.partition(violations)

    if args.changed_only:
        changed = _changed_relpaths(root)
        if changed is None:
            print(
                "repro-lint: --changed-only: not a git work tree; "
                "reporting everything",
                file=sys.stderr,
            )
        else:
            new = [v for v in new if v.relpath in changed]

    if args.format == "json":
        report = _render_json(new, baselined)
    elif args.format == "sarif":
        report = _render_sarif(new, baselined)
    else:
        report = _render_text(new)

    if args.output:
        out_path = Path(args.output)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(report)
        sys.stdout.write(_render_text(new))
    else:
        sys.stdout.write(report)

    for fp in stale:
        entry = baseline.entries[fp]
        print(
            f"repro-lint: stale baseline entry {fp} ({entry.get('rule')} in "
            f"{entry.get('path')}) no longer matches — run --update-baseline",
            file=sys.stderr,
        )
    if new or baselined:
        extra = f", {len(baselined)} baselined" if baselined else ""
        print(
            f"repro-lint: {len(new)} violation(s) in "
            f"{len({v.relpath for v in new})} file(s){extra}",
            file=sys.stderr,
        )
    return EXIT_FINDINGS if new else EXIT_CLEAN


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; map through.
        return int(exc.code or 0)
    if args.list_rules:
        for rule_id, summary in sorted(RULE_CATALOG.items()):
            print(f"{rule_id}  {summary}")
        return EXIT_CLEAN
    try:
        return _run(args)
    except Exception:  # noqa: BLE001 — the CLI must never die silently
        print("repro-lint: internal error (this is a linter bug):", file=sys.stderr)
        traceback.print_exc()
        return EXIT_INTERNAL
