"""Whole-program module/call graph over the ``src/repro`` package.

The per-file rules (RL001–RL008) see one AST at a time; the dataflow
passes in :mod:`tools.repro_lint.dataflow` need to follow a value from a
``time.time()`` read through two helper hops into a scheduler — which
requires knowing (a) which module every name resolves to and (b) which
program function every call lands in.  This module builds exactly that:

* a **module table** mapping dotted module names to parsed ASTs,
* per-module **import maps** with relative imports resolved against the
  package layout (``from .events import EventQueue`` inside
  ``repro.sim.engine`` → ``repro.sim.events.EventQueue``),
* a **function table** of every module-level function and every method
  of a module-level class, keyed by qualified name
  (``repro.sim.engine.SimulationEngine.apply``), plus one ``<module>``
  pseudo-function per module holding module-scope statements,
* a **class table** with program-resolved base classes (one-level
  re-exports through ``__init__`` are followed), and
* a **call graph**: for every call site, the resolved program callee
  when resolution succeeds (local defs, imports, ``self.method`` through
  the program MRO, and a unique-method-name fallback), or the raw dotted
  text when it does not.

Construction is **deterministic and order-independent**: files are
sorted by repo-relative path before parsing, every table iterates in
sorted order, and :meth:`ProgramGraph.dump` emits canonical JSON — the
same tree produces byte-identical dumps no matter how the filesystem
listed the files (pinned by a property test).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramGraph",
    "build_program_graph",
]

#: Pseudo-function name holding a module's top-level statements.
MODULE_BODY = "<module>"


@dataclass
class ModuleInfo:
    name: str  # dotted, e.g. "repro.sim.engine"
    relpath: str  # POSIX, relative to the lint root
    tree: ast.Module = field(repr=False)


@dataclass
class FunctionInfo:
    qname: str  # "repro.sim.engine.SimulationEngine.apply"
    module: str
    relpath: str
    name: str
    lineno: int
    col: int
    class_qname: Optional[str]  # owning class, None for module-level
    params: tuple[str, ...]
    node: ast.AST = field(repr=False)  # FunctionDef / AsyncFunctionDef / Module


@dataclass
class ClassInfo:
    qname: str
    module: str
    relpath: str
    name: str
    lineno: int
    bases: tuple[str, ...]  # dotted names (program qnames when resolvable)
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qname
    node: ast.ClassDef = field(repr=False, default=None)


@dataclass(frozen=True)
class CallSite:
    caller: str  # function qname
    callee: Optional[str]  # resolved program qname, or None
    raw: str  # best-effort dotted text of the call target
    lineno: int
    col: int


def _module_name(relpath_in_pkg: str, package: str) -> str:
    """``sim/engine.py`` → ``repro.sim.engine``; ``sim/__init__.py`` → ``repro.sim``."""
    parts = relpath_in_pkg[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def _dotted_text(node: ast.expr) -> str:
    """Best-effort dotted rendering of a call target for diagnostics."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(_dotted_text(node.func) + "()")
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def _attr_chain(node: ast.expr) -> tuple[Optional[str], list[str]]:
    """Unwind ``a.b[i].c`` → ("a", ["b", "c"]); root None unless a Name."""
    parts: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None, []
    return node.id, list(reversed(parts))


class ProgramGraph:
    """Import + call graph over one package tree (see module docstring)."""

    def __init__(self, package: str, root: Path) -> None:
        self.package = package
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.imports: dict[str, dict[str, str]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: list[CallSite] = []
        self.module_edges: set[tuple[str, str]] = set()
        self.syntax_errors: list[tuple[str, int, str]] = []  # (relpath, line, msg)
        # method name -> sorted qnames of every program method with it
        self._method_index: dict[str, list[str]] = {}
        self._calls_by_caller: dict[str, list[CallSite]] = {}

    # -- construction --------------------------------------------------

    def _add_module(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info
        self.imports[info.name] = _import_map(info.tree, info.name, self.modules)

    def _index(self) -> None:
        """Second pass: functions, classes, and import edges (after every
        module is parsed, so cross-module names resolve)."""
        for modname in sorted(self.modules):
            info = self.modules[modname]
            imap = self.imports[modname] = _import_map(
                info.tree, modname, self.modules
            )
            for target in imap.values():
                owner = self._owning_module(target)
                if owner is not None and owner != modname:
                    self.module_edges.add((modname, owner))
            body_fn = FunctionInfo(
                qname=f"{modname}.{MODULE_BODY}",
                module=modname,
                relpath=info.relpath,
                name=MODULE_BODY,
                lineno=1,
                col=0,
                class_qname=None,
                params=(),
                node=info.tree,
            )
            self.functions[body_fn.qname] = body_fn
            for node in info.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(node, modname, info.relpath, None)
                elif isinstance(node, ast.ClassDef):
                    self._add_class(node, modname, info.relpath)
        for qname, fn in self.functions.items():
            if fn.class_qname is not None:
                self._method_index.setdefault(fn.name, []).append(qname)
        for name in self._method_index:
            self._method_index[name].sort()

    def _add_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        modname: str,
        relpath: str,
        class_qname: Optional[str],
    ) -> FunctionInfo:
        prefix = class_qname if class_qname is not None else modname
        args = node.args
        params = tuple(
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        )
        fn = FunctionInfo(
            qname=f"{prefix}.{node.name}",
            module=modname,
            relpath=relpath,
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            class_qname=class_qname,
            params=params,
            node=node,
        )
        self.functions[fn.qname] = fn
        return fn

    def _add_class(self, node: ast.ClassDef, modname: str, relpath: str) -> None:
        qname = f"{modname}.{node.name}"
        imap = self.imports[modname]
        bases: list[str] = []
        for base in node.bases:
            root, chain = _attr_chain(base)
            if root is None:
                continue
            local = f"{modname}.{root}" if f"{modname}.{root}" in self.classes else None
            dotted = imap.get(root, local or root)
            bases.append(".".join([dotted, *chain]))
        cls = ClassInfo(
            qname=qname,
            module=modname,
            relpath=relpath,
            name=node.name,
            lineno=node.lineno,
            bases=tuple(bases),
            node=node,
        )
        self.classes[qname] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._add_function(stmt, modname, relpath, qname)
                cls.methods[stmt.name] = fn.qname

    def _extract_calls(self) -> None:
        for qname in sorted(self.functions):
            fn = self.functions[qname]
            body: Iterable[ast.stmt]
            if fn.name == MODULE_BODY:
                # Module scope only — defs get their own entries.
                body = [
                    stmt
                    for stmt in fn.node.body
                    if not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    )
                ]
            else:
                body = fn.node.body
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        callee = self.resolve_call(node, fn)
                        site = CallSite(
                            caller=qname,
                            callee=callee,
                            raw=_dotted_text(node.func),
                            lineno=node.lineno,
                            col=node.col_offset,
                        )
                        self.calls.append(site)
                        self._calls_by_caller.setdefault(qname, []).append(site)

    # -- queries -------------------------------------------------------

    def _owning_module(self, dotted: str) -> Optional[str]:
        """Longest program-module prefix of ``dotted``, or None."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            mod = ".".join(parts[:i])
            if mod in self.modules:
                return mod
        return None

    def resolve_object(self, dotted: str, _seen: frozenset[str] = frozenset()) -> Optional[str]:
        """Resolve a dotted path to a program function/class/method qname,
        following one-hop re-exports through package ``__init__`` files."""
        if dotted in _seen:
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        owner = self._owning_module(dotted)
        if owner is None:
            return None
        rest = dotted[len(owner) + 1 :].split(".") if len(dotted) > len(owner) else []
        if not rest:
            return None
        # Class method: repro.sim.engine.SimulationEngine.apply
        if len(rest) >= 2:
            cls_q = f"{owner}.{rest[0]}"
            cls = self.classes.get(cls_q)
            if cls is not None and rest[1] in cls.methods:
                return cls.methods[rest[1]]
        # Re-export: the first component is an imported name in `owner`.
        target = self.imports.get(owner, {}).get(rest[0])
        if target is not None:
            full = ".".join([target, *rest[1:]])
            return self.resolve_object(full, _seen | {dotted})
        return None

    def resolve_call(self, call: ast.Call, fn: FunctionInfo) -> Optional[str]:
        """Program qname of the call target, or None when unresolvable."""
        func = call.func
        imap = self.imports.get(fn.module, {})
        if isinstance(func, ast.Name):
            local = f"{fn.module}.{func.id}"
            if local in self.functions:
                return local
            if local in self.classes:
                return local
            dotted = imap.get(func.id)
            if dotted is not None:
                return self.resolve_object(dotted)
            return None
        if isinstance(func, ast.Attribute):
            root, chain = _attr_chain(func.value)
            # self.m() / cls.m(): walk the program MRO.
            if (
                root in ("self", "cls")
                and not chain
                and fn.class_qname is not None
            ):
                hit = self.lookup_method(fn.class_qname, func.attr)
                if hit is not None:
                    return hit
            dotted = ast.unparse(func) if hasattr(ast, "unparse") else None
            chain_dotted = None
            if root is not None:
                base = imap.get(root)
                if base is None and f"{fn.module}.{root}" in self.classes:
                    base = f"{fn.module}.{root}"
                if base is not None:
                    chain_dotted = ".".join([base, *chain, func.attr])
            if chain_dotted is not None:
                resolved = self.resolve_object(chain_dotted)
                if resolved is not None:
                    return resolved
            # Unique-method fallback: exactly one program class defines a
            # method with this name → assume the call lands there.  This
            # buys cross-module reach on untyped code at the cost of rare
            # false positives, which the baseline absorbs.
            candidates = self._method_index.get(func.attr, ())
            if len(candidates) == 1:
                return candidates[0]
            return None
        return None

    def lookup_method(self, class_qname: str, name: str) -> Optional[str]:
        for cq in self.mro(class_qname):
            cls = self.classes.get(cq)
            if cls is not None and name in cls.methods:
                return cls.methods[name]
        return None

    def mro(self, class_qname: str) -> list[str]:
        """Breadth-first linearization over program-resolved bases."""
        out: list[str] = []
        queue = [class_qname]
        seen: set[str] = set()
        while queue:
            cq = queue.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            cls = self.classes.get(cq)
            if cls is None:
                continue
            out.append(cq)
            for base in cls.bases:
                resolved = self.resolve_object(base)
                if resolved is not None and resolved in self.classes:
                    queue.append(resolved)
        return out

    def ancestors(self, class_qname: str) -> list[str]:
        """Raw base names (resolved where possible) of the whole MRO —
        includes unresolved externals so name-based checks can still
        match e.g. a base literally called ``Scheduler``."""
        names: list[str] = []
        for cq in self.mro(class_qname):
            cls = self.classes.get(cq)
            if cls is not None:
                names.extend(cls.bases)
        return names

    def calls_from(self, qname: str) -> list[CallSite]:
        return self._calls_by_caller.get(qname, [])

    # -- canonical dump ------------------------------------------------

    def dump(self) -> str:
        """Canonical JSON of the graph (no ASTs) — byte-identical for
        identical trees regardless of filesystem listing order."""
        payload = {
            "format": "repro-lint-graph/v1",
            "package": self.package,
            "modules": [
                {"name": m.name, "path": m.relpath}
                for m in sorted(self.modules.values(), key=lambda m: m.name)
            ],
            "imports": sorted(
                [mod, local, target]
                for mod, imap in self.imports.items()
                for local, target in imap.items()
            ),
            "module_edges": sorted(list(e) for e in self.module_edges),
            "functions": [
                {
                    "qname": f.qname,
                    "path": f.relpath,
                    "line": f.lineno,
                    "class": f.class_qname,
                    "params": list(f.params),
                }
                for f in sorted(self.functions.values(), key=lambda f: f.qname)
            ],
            "classes": [
                {
                    "qname": c.qname,
                    "bases": list(c.bases),
                    "methods": sorted(c.methods.values()),
                }
                for c in sorted(self.classes.values(), key=lambda c: c.qname)
            ],
            "calls": sorted(
                [s.caller, s.callee or "", s.raw, s.lineno, s.col]
                for s in self.calls
            ),
            "syntax_errors": sorted(list(e) for e in self.syntax_errors),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _import_map(
    tree: ast.Module, modname: str, modules: dict[str, ModuleInfo]
) -> dict[str, str]:
    """Local name → absolute dotted path, with relative imports resolved.

    The containing package of ``modname`` is its parent unless the module
    *is* a package (``__init__``), in which case it is itself — matching
    Python's ``__package__`` semantics.
    """
    parts = modname.split(".")
    is_package = modname in modules and modules[modname].relpath.endswith(
        "__init__.py"
    )
    package_parts = parts if is_package else parts[:-1]
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    out[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - (node.level - 1)]
                if not base_parts:
                    continue  # escapes the program package
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}"
            else:
                if node.module is None:
                    continue
                base = node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = f"{base}.{alias.name}"
    return out


def build_program_graph(
    root: Path,
    program_root: str = "src/repro",
    files: Sequence[Path] | None = None,
) -> Optional[ProgramGraph]:
    """Build the graph for the package at ``root/program_root``.

    Returns ``None`` when the package directory does not exist.  ``files``
    overrides discovery (used by the determinism property test); the
    builder sorts whatever it is given, so input order never matters.
    """
    root = Path(root).resolve()
    pkg_dir = (root / program_root).resolve()
    if not pkg_dir.is_dir():
        return None
    package = pkg_dir.name
    if files is None:
        files = [p for p in pkg_dir.rglob("*.py") if p.is_file()]
    graph = ProgramGraph(package, root)
    entries: list[tuple[str, Path]] = []
    for path in files:
        rel_in_pkg = Path(path).resolve().relative_to(pkg_dir).as_posix()
        entries.append((rel_in_pkg, Path(path)))
    for rel_in_pkg, path in sorted(entries):
        relpath = path.resolve().relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:
            graph.syntax_errors.append(
                (relpath, exc.lineno or 1, exc.msg or "syntax error")
            )
            continue
        graph.modules[_module_name(rel_in_pkg, package)] = ModuleInfo(
            name=_module_name(rel_in_pkg, package), relpath=relpath, tree=tree
        )
    graph._index()
    graph._extract_calls()
    return graph
