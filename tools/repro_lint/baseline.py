"""Committed baseline of accepted repro-lint findings.

The whole-program passes (RL010–RL014) can surface pre-existing findings
whose fix is out of scope, plus the occasional false positive from the
call-graph heuristics.  Those are *pinned* in a committed baseline file
so CI stays green on them while any **new** finding still fails the
gate.  Each entry carries a one-line justification — a baseline without
reasons rots into a mute button.

Fingerprints are ``sha256(rule | path | message)`` truncated to 16 hex
chars, with a ``#n`` suffix disambiguating identical findings in the
same file.  Line numbers are deliberately excluded (and the dataflow
messages never embed them), so a fingerprint survives unrelated edits
that shift code around; moving the offending code to another file or
changing what it does invalidates the pin, which is the point.

File format (JSON, sorted keys, trailing newline)::

    {
      "format": "repro-lint-baseline/v1",
      "entries": {
        "<fingerprint>": {
          "rule": "RL014",
          "path": "src/repro/...",
          "message": "...",
          "justification": "why this is accepted"
        }
      }
    }

``python -m tools.repro_lint --update-baseline`` rewrites the file from
the current findings, preserving existing justifications.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from tools.repro_lint.engine import Violation

__all__ = [
    "Baseline",
    "BaselineError",
    "fingerprint_violations",
    "is_baselineable",
]

_FORMAT = "repro-lint-baseline/v1"

#: (rule, path-prefix) pairs that may never be pinned.  RL014 findings
#: under the sharded engine's own packages are hard failures: process-
#: global mutable state there breaks the merge-barrier determinism
#: contract (DESIGN.md §5.10) for every K, so there is no legitimate
#: "accepted for now" — the state must move onto the engine/cluster
#: instance.  ``--update-baseline`` refuses to pin these too.
UNBASELINEABLE: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("RL014", ("src/repro/sim/", "src/repro/cluster/")),
)


def is_baselineable(rule: str, relpath: str) -> bool:
    """Whether a finding may be waived through the committed baseline."""
    posix = relpath.replace("\\", "/")
    for blocked_rule, prefixes in UNBASELINEABLE:
        if rule == blocked_rule and posix.startswith(prefixes):
            return False
    return True


class BaselineError(ValueError):
    """The baseline file exists but cannot be parsed."""


def _raw_fingerprint(rule: str, relpath: str, message: str) -> str:
    digest = hashlib.sha256(
        "\0".join((rule, relpath, message)).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def fingerprint_violations(violations: Sequence["Violation"]) -> list[str]:
    """One fingerprint per violation, positionally aligned.  Duplicate
    (rule, path, message) triples get ``#2``, ``#3``… suffixes in
    (line, col) order so every finding pins independently."""
    counts: dict[str, int] = {}
    out: list[str] = []
    for v in violations:
        base = _raw_fingerprint(v.rule, v.relpath, v.message)
        n = counts.get(base, 0) + 1
        counts[base] = n
        out.append(base if n == 1 else f"{base}#{n}")
    return out


@dataclass
class Baseline:
    path: Path | None = None
    entries: dict[str, dict] = field(default_factory=dict)

    @staticmethod
    def load(path: Path | None) -> "Baseline":
        """Baseline at ``path`` (empty when ``path`` is None or absent)."""
        if path is None or not Path(path).is_file():
            return Baseline(path=Path(path) if path else None)
        try:
            data = json.loads(Path(path).read_text())
            if data.get("format") != _FORMAT:
                raise ValueError(f"unrecognized format {data.get('format')!r}")
            entries = data["entries"]
            if not isinstance(entries, dict):
                raise ValueError("'entries' must be an object")
        except (json.JSONDecodeError, KeyError, ValueError, TypeError) as exc:
            raise BaselineError(f"{path}: invalid baseline file: {exc}") from exc
        return Baseline(path=Path(path), entries=entries)

    def partition(
        self, violations: Sequence["Violation"]
    ) -> tuple[list["Violation"], list["Violation"], list[str]]:
        """Split into (new, baselined, stale_fingerprints).

        ``stale`` fingerprints are entries no current finding matches —
        the pinned code was fixed or moved, and the pin should be
        deleted (``--update-baseline`` does).  Findings on the
        :data:`UNBASELINEABLE` list are *always* new: a matching pin
        (hand-edited into the file) is ignored rather than honoured."""
        fps = fingerprint_violations(violations)
        new: list["Violation"] = []
        baselined: list["Violation"] = []
        hit: set[str] = set()
        for v, fp in zip(violations, fps):
            if fp in self.entries and is_baselineable(v.rule, v.relpath):
                baselined.append(v)
                hit.add(fp)
            else:
                new.append(v)
        stale = sorted(set(self.entries) - hit)
        return new, baselined, stale

    def updated(self, violations: Sequence["Violation"]) -> "Baseline":
        """A baseline pinning exactly the current findings, carrying over
        justifications for fingerprints that already had one.  Findings
        on the :data:`UNBASELINEABLE` list are never pinned — they stay
        hard failures no matter how the baseline is regenerated."""
        entries: dict[str, dict] = {}
        for v, fp in zip(violations, fingerprint_violations(violations)):
            if not is_baselineable(v.rule, v.relpath):
                continue
            old = self.entries.get(fp, {})
            entries[fp] = {
                "rule": v.rule,
                "path": v.relpath,
                "message": v.message,
                "justification": old.get(
                    "justification", "TODO: justify this pin or fix the finding"
                ),
            }
        return Baseline(path=self.path, entries=entries)

    def write(self, path: Path) -> None:
        payload = {"format": _FORMAT, "entries": self.entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
