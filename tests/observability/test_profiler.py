"""Unit tests for the phase profiler: nesting attribution (self vs
total), the env-var opt-in, and the report formats."""

import pytest

from repro.observability.profiling import (
    PROFILE_ENV,
    PhaseProfiler,
    profile_default,
)


def test_self_time_excludes_children():
    prof = PhaseProfiler()
    with prof.phase("engine"):
        with prof.phase("scheduler"):
            with prof.phase("placement"):
                pass
    report = prof.report()
    assert set(report) == {"engine", "scheduler", "placement"}
    for stats in report.values():
        assert stats["calls"] == 1
        assert stats["total_s"] >= stats["self_s"] >= 0.0
    # parent's inclusive time covers the child's inclusive time
    assert report["engine"]["total_s"] >= report["scheduler"]["total_s"]
    assert report["scheduler"]["total_s"] >= report["placement"]["total_s"]
    # self = total - child time, exactly
    assert report["engine"]["self_s"] == pytest.approx(
        report["engine"]["total_s"] - report["scheduler"]["total_s"]
    )


def test_explicit_enter_exit_matches_contextmanager():
    prof = PhaseProfiler()
    frame = prof.enter("engine")
    inner = prof.enter("scheduler")
    prof.exit(inner)
    prof.exit(frame)
    report = prof.report()
    assert report["engine"]["calls"] == 1
    assert report["scheduler"]["calls"] == 1


def test_repeated_phases_accumulate():
    prof = PhaseProfiler()
    for _ in range(3):
        with prof.phase("placement"):
            pass
    assert prof.report()["placement"]["calls"] == 3


def test_report_is_name_sorted():
    prof = PhaseProfiler()
    for name in ("zeta", "alpha", "mid"):
        with prof.phase(name):
            pass
    assert list(prof.report()) == ["alpha", "mid", "zeta"]


def test_format_report_lists_phases():
    prof = PhaseProfiler()
    with prof.phase("engine"):
        pass
    text = prof.format_report()
    assert "engine" in text and "calls" in text
    assert PhaseProfiler().format_report() == "profile: no phases recorded\n"


def test_profile_default_reads_env(monkeypatch):
    monkeypatch.delenv(PROFILE_ENV, raising=False)
    assert profile_default() is False
    monkeypatch.setenv(PROFILE_ENV, "1")
    assert profile_default() is True
    monkeypatch.setenv(PROFILE_ENV, "off")
    assert profile_default() is False
