"""Integration tests: observability attached to real simulations.

Pins the §5.4 contracts end to end:

* instrumented counters agree with the engine's own accounting;
* two same-seed runs export byte-identical snapshots and span traces;
* attaching observability never changes the simulation itself;
* a recorded run replays bit-identically with metrics+tracing enabled;
* the ``REPRO_METRICS`` / ``REPRO_PROFILE`` env toggles opt runs in.
"""

import json

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster, paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.observability import METRICS_ENV, Observability, observability_default
from repro.observability.profiling import PROFILE_ENV
from repro.resources import Resources
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.engine import SimulationEngine
from repro.sim.replay import assert_replay_identical, replay_trace
from repro.sim.runner import run_recorded, run_simulation
from repro.workload.mapreduce import pagerank_job, wordcount_job
from tests.conftest import make_chain_job


def _cluster():
    return paper_cluster_30_nodes()


def _jobs():
    jobs = []
    for i in range(6):
        if i % 2 == 0:
            jobs.append(wordcount_job(2.0, arrival_time=40.0 * i, job_id=i))
        else:
            jobs.append(pagerank_job(0.5, arrival_time=40.0 * i, job_id=i))
    return jobs


def _value(snapshot, name, **labels):
    for s in snapshot[name]["series"]:
        if s["labels"] == labels:
            return s["value"]
    raise AssertionError(f"no series {labels} in {name}")


def test_counters_agree_with_engine_accounting():
    obs = Observability()
    result = run_simulation(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=11,
        observability=obs,
    )
    m = obs.snapshot()["metrics"]
    assert _value(m, "repro_sim_actions_total", kind="launch") == result.copies_launched
    assert _value(m, "repro_sim_copies_launched_total") == result.copies_launched
    assert _value(m, "repro_sim_clones_launched_total") == result.clones_launched
    assert _value(m, "repro_sim_time_seconds") == result.simulated_time
    assert _value(m, "repro_sim_active_jobs") == 0.0
    assert _value(m, "repro_sim_events_total", kind="job_arrival") == len(
        result.records
    )
    # every job finished → one flowtime observation each
    flow = next(
        s for s in m["repro_sim_job_flowtime_seconds"]["series"] if s["labels"] == {}
    )
    assert flow["count"] == len(result.records)
    assert flow["sum"] == pytest.approx(result.total_flowtime)


def test_same_seed_snapshots_and_spans_are_byte_identical(tmp_path):
    outputs = []
    for run in range(2):
        obs = Observability()
        run_simulation(
            _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=5,
            observability=obs,
        )
        spans = tmp_path / f"spans{run}.jsonl"
        obs.dump_spans(spans)
        outputs.append((obs.to_json(), obs.to_prometheus(), spans.read_bytes()))
    assert outputs[0] == outputs[1]


def test_observability_never_steers_the_simulation():
    plain = run_simulation(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=9
    )
    obs = Observability(profile=True)
    observed = run_simulation(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=9,
        observability=obs,
    )
    assert plain.records == observed.records
    assert plain.clones_launched == observed.clones_launched
    assert plain.simulated_time == observed.simulated_time


def test_replay_bit_identity_with_observability_enabled():
    obs_rec = Observability()
    recorded, trace = run_recorded(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=3,
        observability=obs_rec,
    )
    obs_rep = Observability()
    replayed = replay_trace(trace, _cluster(), _jobs(), observability=obs_rep)
    assert_replay_identical(recorded, replayed)
    # the replayed run's sim-derived metrics equal the recording's,
    # except decision-cause attribution (the replay's actions re-apply
    # at ReplayScheduler entry points) and action/event counts that
    # journaled engine-side kills as explicit decisions.
    m_rec = obs_rec.snapshot()["metrics"]
    m_rep = obs_rep.snapshot()["metrics"]
    assert _value(m_rep, "repro_sim_copies_launched_total") == _value(
        m_rec, "repro_sim_copies_launched_total"
    )
    assert _value(m_rep, "repro_sim_clones_launched_total") == _value(
        m_rec, "repro_sim_clones_launched_total"
    )
    assert (
        m_rep["repro_sim_job_flowtime_seconds"] == m_rec["repro_sim_job_flowtime_seconds"]
    )
    assert _value(m_rep, "repro_sim_time_seconds") == _value(
        m_rec, "repro_sim_time_seconds"
    )


def test_slotted_mode_counts_schedule_ticks():
    obs = Observability()
    run_simulation(
        _cluster(), TetrisScheduler(), _jobs(), seed=2, schedule_interval=5.0,
        observability=obs,
    )
    m = obs.snapshot()["metrics"]
    assert _value(m, "repro_sim_events_total", kind="schedule_tick") > 0
    assert _value(m, "repro_sim_decision_points_total", cause="schedule") > 0


def test_placement_query_counters_follow_the_active_path():
    for vectorized in (True, False):
        cluster = homogeneous_cluster(8, Resources.of(16, 64))
        cluster.vectorized = vectorized
        obs = Observability()
        run_simulation(
            cluster,
            DollyMPScheduler(max_clones=2),
            [make_chain_job(2, 6, sigma=5.0, job_id=0)],
            seed=1,
            observability=obs,
        )
        m = obs.snapshot()["metrics"]
        active = "vectorized" if vectorized else "scalar"
        idle = "scalar" if vectorized else "vectorized"
        assert _value(m, "repro_placement_queries_total", path=active) > 0
        assert _value(m, "repro_placement_queries_total", path=idle) == 0


def test_rejected_actions_are_counted():
    from repro.sim.actions import InvalidAction, Launch

    cluster = homogeneous_cluster(1, Resources.of(2, 4))
    job = make_chain_job(1, 4, cpu=2.0, mem=4.0, job_id=0)
    obs = Observability()

    class Greedy(DollyMPScheduler):
        def schedule(self, view):
            # try to overcommit: second launch on the full server must
            # reject without mutating anything.
            for job_ in view.active_jobs:
                for phase in job_.phases:
                    for task in phase.tasks:
                        if task.state.name != "PENDING":
                            continue
                        try:
                            view.apply(Launch(task, view.cluster[0]))
                        except InvalidAction:
                            pass

    run_simulation(cluster, Greedy(max_clones=0), [job], seed=0, observability=obs)
    m = obs.snapshot()["metrics"]
    assert _value(m, "repro_sim_actions_rejected_total", kind="launch") > 0
    assert _value(m, "repro_sim_actions_rejected_total", kind="kill") == 0


def test_profiler_attributes_all_three_phases():
    obs = Observability(profile=True)
    run_simulation(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=4,
        observability=obs,
    )
    report = obs.profiler.report()
    assert {"engine", "scheduler", "placement"} <= set(report)
    snap = obs.snapshot(include_wall=True)
    assert snap["profile"] == report
    assert "profile" not in obs.snapshot()


def test_engine_profile_flag_forces_profiler():
    engine = SimulationEngine(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=4, profile=True
    )
    assert engine.observability is not None
    assert engine.observability.profiler is not None
    engine.run()
    assert engine.observability.profiler.report()


def test_env_opt_in(monkeypatch):
    monkeypatch.delenv(METRICS_ENV, raising=False)
    monkeypatch.delenv(PROFILE_ENV, raising=False)
    assert observability_default() is None
    engine = SimulationEngine(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=0
    )
    assert engine.observability is None

    monkeypatch.setenv(METRICS_ENV, "1")
    engine = SimulationEngine(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=0
    )
    assert engine.observability is not None
    assert engine.observability.registry is not None

    monkeypatch.delenv(METRICS_ENV, raising=False)
    monkeypatch.setenv(PROFILE_ENV, "yes")
    engine = SimulationEngine(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=0
    )
    assert engine.observability is not None
    assert engine.observability.profiler is not None


def test_workload_recording():
    jobs = _jobs()
    obs = Observability()
    obs.record_workload(jobs)
    m = obs.snapshot()["metrics"]
    assert _value(m, "repro_workload_jobs_total") == len(jobs)
    assert _value(m, "repro_workload_tasks_total") == sum(
        len(p.tasks) for j in jobs for p in j.phases
    )


def test_snapshot_schema_and_wall_segregation():
    obs = Observability()
    run_simulation(
        _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=6,
        observability=obs,
    )
    snap = obs.snapshot()
    assert snap["schema"] == "repro-metrics/v1"
    assert all(not name.startswith("repro_wall_") for name in snap["metrics"])
    wall = obs.snapshot(include_wall=True)["metrics"]
    assert "repro_wall_schedule_pass_seconds" in wall
    assert "repro_wall_run_seconds" in wall
    # JSON snapshot round-trips
    assert json.loads(obs.to_json()) == snap
