"""Golden tests for the Prometheus text exposition (format v0.0.4).

The exporter's byte-level output is part of the determinism contract:
family order is name-sorted, series are label-sorted, histogram rows end
with ``+Inf``/``_sum``/``_count``, and integral values print as ints.
"""

from repro.observability.registry import MetricsRegistry


def build_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_sim_actions_total", "typed actions applied", ("kind",))
    c.labels(kind="launch").inc(3)
    c.labels(kind="kill").inc(1)
    g = reg.gauge("repro_sim_active_jobs", "arrived, unfinished jobs")
    g.set(2)
    h = reg.histogram("repro_demo_seconds", "demo latencies", buckets=(0.5, 1.0, 2.0))
    for v in (0.25, 1.0, 5.0):
        h.observe(v)
    reg.gauge("repro_wall_run_seconds", "host time", wall=True).set(0.123)
    return reg


GOLDEN = """\
# HELP repro_demo_seconds demo latencies
# TYPE repro_demo_seconds histogram
repro_demo_seconds_bucket{le="0.5"} 1
repro_demo_seconds_bucket{le="1"} 2
repro_demo_seconds_bucket{le="2"} 2
repro_demo_seconds_bucket{le="+Inf"} 3
repro_demo_seconds_sum 6.25
repro_demo_seconds_count 3
# HELP repro_sim_actions_total typed actions applied
# TYPE repro_sim_actions_total counter
repro_sim_actions_total{kind="kill"} 1
repro_sim_actions_total{kind="launch"} 3
# HELP repro_sim_active_jobs arrived, unfinished jobs
# TYPE repro_sim_active_jobs gauge
repro_sim_active_jobs 2
"""


def test_prometheus_text_matches_golden():
    assert build_registry().to_prometheus() == GOLDEN


def test_include_wall_appends_wall_families():
    text = build_registry().to_prometheus(include_wall=True)
    assert text.startswith(GOLDEN[: GOLDEN.index("# HELP repro_sim")])
    assert 'repro_wall_run_seconds 0.123' in text
    assert text.index("repro_wall_run_seconds") > text.index("repro_sim_active_jobs")


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    c = reg.counter("repro_esc_total", "", ("msg",))
    c.labels(msg='say "hi"\nnow').inc()
    line = reg.to_prometheus().splitlines()[-1]
    assert line == 'repro_esc_total{msg="say \\"hi\\"\\nnow"} 1'


def test_empty_registry_exports_empty_string():
    assert MetricsRegistry().to_prometheus() == ""
