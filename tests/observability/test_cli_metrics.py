"""CLI surface of the observability layer: the ``metrics`` subcommand
and the ``--metrics-out`` / ``--spans-out`` / ``--profile`` flags."""

import json

from repro.cli import main
from repro.observability import METRICS_SCHEMA
from repro.observability.spans import SPAN_SCHEMA

ARGS = ["--app", "wordcount", "--jobs", "3", "--gap", "100", "--input-gb", "1"]


def test_metrics_command_prints_json(capsys):
    rc = main(["metrics", *ARGS])
    assert rc == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["schema"] == METRICS_SCHEMA
    assert "repro_sim_events_total" in snap["metrics"]
    assert "repro_workload_jobs_total" in snap["metrics"]
    # wall metrics stay out of the default export
    assert not any(n.startswith("repro_wall_") for n in snap["metrics"])


def test_metrics_command_is_deterministic(capsys):
    main(["metrics", *ARGS, "--seed", "7"])
    first = capsys.readouterr().out
    main(["metrics", *ARGS, "--seed", "7"])
    assert capsys.readouterr().out == first


def test_metrics_command_prom_format_to_file(tmp_path, capsys):
    out = tmp_path / "m.prom"
    rc = main(["metrics", *ARGS, "--format", "prom", "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    assert "# TYPE repro_sim_events_total counter" in text
    assert str(out) in capsys.readouterr().out


def test_run_with_metrics_and_spans_out(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    spans = tmp_path / "s.jsonl"
    rc = main(
        ["run", *ARGS, "--metrics-out", str(metrics), "--spans-out", str(spans)]
    )
    assert rc == 0
    snap = json.loads(metrics.read_text())
    assert snap["schema"] == METRICS_SCHEMA
    header = json.loads(spans.read_text().splitlines()[0])
    assert header["schema"] == SPAN_SCHEMA
    assert header["spans"] > 0


def test_run_profile_prints_report(capsys):
    rc = main(["run", *ARGS, "--profile"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "phase" in out and "scheduler" in out


def test_compare_metrics_out_is_per_scheduler(tmp_path):
    out = tmp_path / "cmp.json"
    rc = main(
        ["compare", "--schedulers", "fifo,srpt", *ARGS, "--metrics-out", str(out)]
    )
    assert rc == 0
    snaps = json.loads(out.read_text())
    assert sorted(snaps) == ["fifo", "srpt"]
    for snap in snaps.values():
        assert snap["schema"] == METRICS_SCHEMA


def test_trace_record_and_replay_with_metrics(tmp_path):
    trace = tmp_path / "decisions.jsonl"
    rec_metrics = tmp_path / "rec.json"
    rc = main(
        ["trace", "record", *ARGS, "--out", str(trace),
         "--metrics-out", str(rec_metrics)]
    )
    assert rc == 0
    rep_metrics = tmp_path / "rep.json"
    rc = main(
        ["trace", "replay", str(trace), "--metrics-out", str(rep_metrics)]
    )
    assert rc == 0
    rec = json.loads(rec_metrics.read_text())["metrics"]
    rep = json.loads(rep_metrics.read_text())["metrics"]
    # the replayed run reproduces the recording's copy/flowtime metrics
    assert (
        rep["repro_sim_copies_launched_total"]
        == rec["repro_sim_copies_launched_total"]
    )
    assert (
        rep["repro_sim_job_flowtime_seconds"] == rec["repro_sim_job_flowtime_seconds"]
    )
