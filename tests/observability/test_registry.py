"""Unit tests for the zero-dependency metrics registry.

Pins the semantics every exporter depends on: counter monotonicity,
label-child idempotency, histogram bucket placement (Prometheus ``le``
semantics on the fixed log2 layout), wall-metric segregation, and the
canonical (sorted, byte-stable) JSON snapshot.
"""

import json

import pytest

from repro.observability.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    log2_buckets,
)


def test_counter_inc_and_default_amount():
    reg = MetricsRegistry()
    c = reg.counter("repro_test_total", "help")
    c.inc()
    c.inc(2.5)
    series = reg.snapshot()["repro_test_total"]["series"]
    assert series == [{"labels": {}, "value": 3.5}]


def test_counter_rejects_negative_and_gauge_allows_it():
    reg = MetricsRegistry()
    c = reg.counter("repro_c_total", "")
    with pytest.raises(ValueError):
        c.inc(-1.0)
    g = reg.gauge("repro_g", "")
    g.set(5.0)
    g.dec(7.0)
    assert reg.snapshot()["repro_g"]["series"][0]["value"] == -2.0


def test_metric_name_validation():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("bad name!", "")


def test_labels_children_are_idempotent():
    reg = MetricsRegistry()
    c = reg.counter("repro_kinds_total", "", ("kind",))
    a1 = c.labels(kind="a")
    a2 = c.labels(kind="a")
    assert a1 is a2
    a1.inc()
    a2.inc()
    series = reg.snapshot()["repro_kinds_total"]["series"]
    assert series == [{"labels": {"kind": "a"}, "value": 2.0}]


def test_labels_must_match_labelnames():
    reg = MetricsRegistry()
    c = reg.counter("repro_l_total", "", ("kind",))
    with pytest.raises(ValueError):
        c.labels(wrong="x")
    with pytest.raises(ValueError):
        c.inc()  # labelled family has no unlabelled value


def test_family_redeclaration_idempotent_but_mismatch_raises():
    reg = MetricsRegistry()
    c1 = reg.counter("repro_f_total", "h", ("k",))
    c2 = reg.counter("repro_f_total", "h", ("k",))
    assert c1 is c2
    with pytest.raises(ValueError):
        reg.counter("repro_f_total", "h", ("other",))
    with pytest.raises(ValueError):
        reg.gauge("repro_f_total", "h")  # same name, different type


def test_log2_buckets_are_exact_powers_of_two():
    buckets = log2_buckets(-3, 3)
    assert buckets == (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
    assert all(b == 2.0 ** e for b, e in zip(buckets, range(-3, 4)))
    assert DEFAULT_BUCKETS == log2_buckets(-10, 20)


def test_histogram_le_semantics():
    """A value lands in the first bucket with ``value <= le`` — exactly
    Prometheus' cumulative `le` convention."""
    reg = MetricsRegistry()
    h = reg.histogram("repro_h", "", buckets=[1.0, 2.0, 4.0])
    for v in (0.5, 1.0, 1.5, 4.0, 100.0):
        h.observe(v)
    rows = h.cumulative()
    # cumulative counts: le=1 → 2 (0.5, 1.0), le=2 → 3, le=4 → 4, +Inf → 5
    assert [(le, n) for le, n in rows] == [
        (1.0, 2),
        (2.0, 3),
        (4.0, 4),
        (float("inf"), 5),
    ]
    snap = reg.snapshot()["repro_h"]["series"][0]
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(107.0)


def test_snapshot_excludes_wall_metrics_by_default():
    reg = MetricsRegistry()
    reg.counter("repro_sim_total", "sim")
    reg.gauge("repro_wall_g", "wall", wall=True)
    snap = reg.snapshot()
    assert "repro_sim_total" in snap
    assert "repro_wall_g" not in snap
    assert "repro_wall_g" in reg.snapshot(include_wall=True)


def test_to_json_is_byte_stable():
    def build():
        reg = MetricsRegistry()
        c = reg.counter("repro_z_total", "", ("b", "a"))
        c.labels(b="2", a="1").inc(3)
        h = reg.histogram("repro_a_h", "")
        h.observe(0.75)
        return reg.to_json()

    assert build() == build()
    # canonical: keys sorted, compact separators
    parsed = json.loads(build())
    assert list(parsed) == sorted(parsed)


def test_reset_clears_the_registry():
    reg = MetricsRegistry()
    reg.counter("repro_r_total", "").inc(4)
    reg.reset()
    assert reg.snapshot() == {}
