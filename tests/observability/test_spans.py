"""Unit tests for span tracing: nesting, misnesting, the bounded
buffer's count-and-drop overflow, and the deterministic JSONL export."""

import json

import pytest

from repro.observability.spans import SPAN_SCHEMA, SpanTracer


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def test_nesting_depth_and_parent_links():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    outer = tracer.enter("event:copy_finish")
    clock.t = 1.0
    inner = tracer.enter("decision:task_finish", point=3)
    assert tracer.open_depth == 2
    clock.t = 2.0
    tracer.exit(inner)
    clock.t = 3.0
    tracer.exit(outer)
    assert tracer.open_depth == 0

    dicts = tracer.to_dicts()
    assert [d["name"] for d in dicts] == ["event:copy_finish", "decision:task_finish"]
    o, i = dicts
    assert (o["depth"], o["parent"]) == (0, None)
    assert (i["depth"], i["parent"]) == (1, o["seq"])
    assert (i["t_enter"], i["t_exit"]) == (1.0, 2.0)
    assert (o["t_enter"], o["t_exit"]) == (0.0, 3.0)
    assert i["attrs"] == {"point": 3}


def test_misnested_exit_raises():
    tracer = SpanTracer()
    a = tracer.enter("a")
    tracer.enter("b")
    with pytest.raises(RuntimeError, match="misnested"):
        tracer.exit(a)


def test_exit_without_open_span_raises():
    tracer = SpanTracer()
    s = tracer.enter("a")
    tracer.exit(s)
    with pytest.raises(RuntimeError):
        tracer.exit(s)


def test_context_manager_closes_on_exception():
    tracer = SpanTracer()
    with pytest.raises(KeyError):
        with tracer.span("outer"):
            raise KeyError("boom")
    assert tracer.open_depth == 0
    assert len(tracer) == 1


def test_overflow_counts_and_drops_instead_of_raising():
    tracer = SpanTracer(maxlen=2)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3


def test_wall_time_excluded_by_default():
    tracer = SpanTracer()
    with tracer.span("x"):
        pass
    d = tracer.to_dicts()[0]
    assert "wall_ms" not in d
    dw = tracer.to_dicts(include_wall=True)[0]
    assert isinstance(dw["wall_ms"], float)


def test_jsonl_roundtrip_and_schema(tmp_path):
    clock = FakeClock()
    tracer = SpanTracer(clock, maxlen=3)
    for i in range(5):
        clock.t = float(i)
        with tracer.span(f"s{i}", i=i):
            pass
    path = tmp_path / "spans.jsonl"
    tracer.dump_jsonl(path)
    header, spans = SpanTracer.load_jsonl(path)
    assert header == {"schema": SPAN_SCHEMA, "spans": 3, "dropped": 2}
    assert [s["name"] for s in spans] == ["s0", "s1", "s2"]

    # deterministic: same recording dumps byte-identically
    path2 = tmp_path / "spans2.jsonl"
    tracer.dump_jsonl(path2)
    assert path.read_bytes() == path2.read_bytes()


def test_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"schema": "nope/v9"}) + "\n")
    with pytest.raises(ValueError, match="unknown span schema"):
        SpanTracer.load_jsonl(path)
