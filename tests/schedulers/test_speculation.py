"""Unit tests for LATE-style speculative execution."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.speculation import LATESpeculation, NoSpeculation
from repro.sim.engine import SimulationEngine
from repro.workload.distributions import Deterministic, EmpiricalDistribution
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskCopy


class _Null(Scheduler):
    name = "null"

    def schedule(self, view):
        pass


def make_view(cluster, jobs):
    engine = SimulationEngine(cluster, _Null(), jobs)
    for j in jobs:
        engine.active_jobs[j.job_id] = j
    return engine


def phase_with_history(num_done=5, done_duration=10.0, num_running=1, total=10):
    """A phase with `num_done` finished tasks and `num_running` stragglers."""
    phase = Phase(0, total, Resources.of(1, 1), Deterministic(done_duration))
    job = Job([phase])
    for i in range(num_done):
        t = phase.tasks[i]
        c = TaskCopy(t, 0, 0.0, done_duration, is_clone=False)
        t.add_copy(c)
        c.finished = True
        t.complete(done_duration)
    for i in range(num_done, num_done + num_running):
        t = phase.tasks[i]
        t.add_copy(TaskCopy(t, 0, 0.0, 100.0, is_clone=False))
    return job, phase


class TestNoSpeculation:
    def test_never_backs_up(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4))
        job, _ = phase_with_history()
        engine = make_view(cluster, [job])
        engine.now = 50.0
        assert NoSpeculation().backup_candidates(engine.view, [job]) == []


class TestLATE:
    def test_validation(self):
        with pytest.raises(ValueError):
            LATESpeculation(slow_threshold=1.0)
        with pytest.raises(ValueError):
            LATESpeculation(min_completed_fraction=0.0)
        with pytest.raises(ValueError):
            LATESpeculation(max_backup_fraction=1.5)

    def test_detects_straggler_after_threshold(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4))
        job, phase = phase_with_history(num_done=5, done_duration=10.0)
        engine = make_view(cluster, [job])
        late = LATESpeculation(slow_threshold=1.5, min_completed_fraction=0.25,
                               max_backup_fraction=1.0)
        engine.now = 12.0  # elapsed 12 < 15 → not yet
        assert late.backup_candidates(engine.view, [job]) == []
        engine.now = 16.0  # elapsed 16 > 15 → straggler
        cands = late.backup_candidates(engine.view, [job])
        assert len(cands) == 1
        assert cands[0] is phase.tasks[5]

    def test_needs_enough_completed_samples(self):
        """Small jobs cannot be helped — the Sec. 1 limitation."""
        cluster = homogeneous_cluster(2, Resources.of(4, 4))
        job, _ = phase_with_history(num_done=1, num_running=1, total=10)
        engine = make_view(cluster, [job])
        engine.now = 1000.0
        late = LATESpeculation(min_completed_fraction=0.25, max_backup_fraction=1.0)
        assert late.backup_candidates(engine.view, [job]) == []

    def test_no_double_backup(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4))
        job, phase = phase_with_history()
        straggler = phase.tasks[5]
        straggler.add_copy(TaskCopy(straggler, 1, 0.0, 100.0, is_clone=True))
        engine = make_view(cluster, [job])
        engine.now = 100.0
        late = LATESpeculation(max_backup_fraction=1.0)
        assert late.backup_candidates(engine.view, [job]) == []

    def test_backup_budget_caps_count(self):
        cluster = homogeneous_cluster(4, Resources.of(8, 8))
        job, phase = phase_with_history(num_done=5, num_running=5, total=10)
        engine = make_view(cluster, [job])
        engine.now = 100.0
        late = LATESpeculation(max_backup_fraction=0.2)
        cands = late.backup_candidates(engine.view, [job])
        assert len(cands) <= 1  # 20% of 5 running

    def test_most_late_first(self):
        cluster = homogeneous_cluster(4, Resources.of(8, 8))
        phase = Phase(0, 10, Resources.of(1, 1), Deterministic(10.0))
        job = Job([phase])
        for i in range(5):
            t = phase.tasks[i]
            c = TaskCopy(t, 0, 0.0, 10.0, is_clone=False)
            t.add_copy(c)
            c.finished = True
            t.complete(10.0)
        # Two stragglers, one much older.
        old = phase.tasks[5]
        old.add_copy(TaskCopy(old, 0, 0.0, 500.0, is_clone=False))
        young = phase.tasks[6]
        young.add_copy(TaskCopy(young, 1, 80.0, 500.0, is_clone=False))
        engine = make_view(cluster, [job])
        engine.now = 100.0
        late = LATESpeculation(max_backup_fraction=1.0)
        cands = late.backup_candidates(engine.view, [job])
        assert cands[0] is old

    def test_launch_backups_places_copies(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 8))
        job, phase = phase_with_history()
        engine = make_view(cluster, [job])
        engine.now = 100.0
        late = LATESpeculation(max_backup_fraction=1.0)
        launched = late.launch_backups(engine.view, [job])
        assert launched == 1
        assert phase.tasks[5].num_live_copies == 2

    def test_integration_speculation_cuts_straggler_tail(self):
        """End-to-end: with a bimodal phase, FIFO+LATE beats plain FIFO."""
        def make_jobs():
            # 10 tasks: 9 take 10s, 1 takes 200s (empirical resampling).
            dist = EmpiricalDistribution([10.0] * 9 + [200.0])
            phase = Phase(0, 10, Resources.of(1, 1), dist)
            return [Job([phase], job_id=0)]

        cluster = homogeneous_cluster(4, Resources.of(4, 4))

        def run_with(spec):
            engine = SimulationEngine(
                homogeneous_cluster(4, Resources.of(4, 4)),
                FIFOScheduler(speculation=spec),
                make_jobs(),
                seed=3,
                max_time=1e5,
            )
            return engine.run().records[0].running_time

        plain = run_with(NoSpeculation())
        late = run_with(
            LATESpeculation(slow_threshold=1.3, min_completed_fraction=0.2,
                            max_backup_fraction=1.0)
        )
        assert late <= plain
