"""Behavioural tests for the baseline schedulers.

Each test pins the policy-specific ordering decision that distinguishes
the scheduler, using small deterministic workloads where the correct
behaviour is computable by hand.
"""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster, single_server_cluster
from repro.resources import Resources
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.fifo import CapacityScheduler, FIFOScheduler
from repro.schedulers.graphene import GrapheneScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.schedulers.svf import SVFScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.runner import run_simulation
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase
from tests.conftest import make_chain_job, make_single_task_job


def single_core_cluster():
    """One 1-core server: schedulers fully serialize unit-core tasks."""
    return homogeneous_cluster(1, Resources.of(1, 100))


class TestFIFO:
    def test_arrival_order_respected(self):
        cluster = single_core_cluster()
        # Long job arrives first; FIFO makes the short one wait.
        long = make_single_task_job(theta=100.0, arrival_time=0.0, job_id=1)
        short = make_single_task_job(theta=1.0, arrival_time=1.0, job_id=2)
        run_simulation(cluster, FIFOScheduler(), [long, short], max_time=1e5)
        assert long.finish_time == pytest.approx(100.0)
        assert short.finish_time == pytest.approx(101.0)

    def test_head_of_line_blocking(self):
        """FIFO's defining pathology: short jobs stuck behind a long one."""
        cluster = single_core_cluster()
        jobs = [make_single_task_job(theta=50.0, arrival_time=0.0, job_id=1)]
        jobs += [
            make_single_task_job(theta=1.0, arrival_time=2.0 + i, job_id=2 + i)
            for i in range(3)
        ]
        res = run_simulation(cluster, FIFOScheduler(), jobs, max_time=1e5)
        short_flows = [r.flowtime for r in res.records if r.job_id >= 2]
        assert min(short_flows) > 45.0  # all blocked behind the long job


class TestSRPT:
    def test_short_job_preempts_queue_position(self):
        cluster = single_core_cluster()
        long = make_single_task_job(theta=100.0, arrival_time=0.0, job_id=1)
        short = make_single_task_job(theta=1.0, arrival_time=1.0, job_id=2)
        run_simulation(cluster, SRPTScheduler(), [long, short], max_time=1e5)
        # Non-preemptive: the long job holds the core until t=100, but
        # the short job then goes before any later work.
        assert short.finish_time == pytest.approx(101.0)

    def test_short_first_when_simultaneous(self):
        cluster = single_core_cluster()
        long = make_single_task_job(theta=100.0, arrival_time=0.0, job_id=1)
        short = make_single_task_job(theta=1.0, arrival_time=0.0, job_id=2)
        run_simulation(cluster, SRPTScheduler(), [long, short], max_time=1e5)
        assert short.finish_time == pytest.approx(1.0)
        assert long.finish_time == pytest.approx(101.0)

    def test_remaining_time_uses_critical_path(self):
        job = make_chain_job(3, 5, theta=10.0)
        assert SRPTScheduler.remaining_time(job) == pytest.approx(30.0)


class TestSVF:
    def test_volume_not_time_decides(self):
        """A short-but-wide job has more volume than a long-narrow one."""
        cluster = homogeneous_cluster(1, Resources.of(10, 100))
        # wide: 10 tasks × 10s × (1 core) → volume 10·10·0.1 = 10
        wide = make_chain_job(1, 10, cpu=1.0, mem=1.0, theta=10.0, job_id=1)
        # narrow: 1 task × 50s × 1 core → volume 50·0.1 = 5
        narrow = make_single_task_job(cpu=1.0, mem=1.0, theta=50.0, job_id=2)
        run_simulation(cluster, SVFScheduler(), [wide, narrow], max_time=1e5)
        # SVF runs narrow first (smaller volume) even though it is longer.
        assert narrow.finish_time == pytest.approx(50.0)


class TestDRF:
    def test_equalizes_dominant_shares(self):
        cluster = homogeneous_cluster(1, Resources.of(10, 10))
        # CPU-heavy and MEM-heavy jobs with many tasks each.
        cpu_heavy = make_chain_job(1, 20, cpu=2.0, mem=0.5, theta=100.0, job_id=1)
        mem_heavy = make_chain_job(1, 20, cpu=0.5, mem=2.0, theta=100.0, job_id=2)

        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(
            cluster, DRFScheduler(), [cpu_heavy, mem_heavy], max_time=1e5
        )
        for job in engine.jobs:
            engine._process_arrival(job)
        engine._run_schedule_pass()
        s1 = DRFScheduler.current_dominant_share(cpu_heavy, engine.view)
        s2 = DRFScheduler.current_dominant_share(mem_heavy, engine.view)
        # Progressive filling: dominant shares end up nearly equal.
        assert s1 == pytest.approx(s2, abs=0.2)
        assert s1 > 0.2

    def test_weighted_drf(self):
        cluster = homogeneous_cluster(1, Resources.of(10, 10))
        a = make_chain_job(1, 20, cpu=1.0, mem=1.0, theta=100.0, job_id=1)
        b = make_chain_job(1, 20, cpu=1.0, mem=1.0, theta=100.0, job_id=2)
        sched = DRFScheduler(weight_of=lambda j: 3.0 if j.job_id == 1 else 1.0)

        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(cluster, sched, [a, b], max_time=1e5)
        for job in engine.jobs:
            engine._process_arrival(job)
        engine._run_schedule_pass()
        alloc_a = sum(t.num_live_copies for t in a.running_tasks())
        alloc_b = sum(t.num_live_copies for t in b.running_tasks())
        assert alloc_a > alloc_b  # 3:1 weights → roughly 7-8 vs 2-3 cores


class TestTetris:
    def test_alignment_prefers_fitting_job(self):
        """Fig. 2's shape: the perfectly-aligned big job goes first."""
        cluster = single_server_cluster(Resources.of(1.0, 1.0))
        big = Job(
            [Phase(0, 1, Resources.of(1.0, 1.0), Deterministic(36.0))],
            job_id=1,
            name="job1",
        )
        small_a = Job(
            [Phase(0, 1, Resources.of(0.5, 0.5), Deterministic(8.0))],
            job_id=2,
            name="job2",
        )
        small_b = Job(
            [Phase(0, 1, Resources.of(0.5, 0.5), Deterministic(8.0))],
            job_id=3,
            name="job3",
        )
        run_simulation(
            cluster, TetrisScheduler(), [big, small_a, small_b], max_time=1e5
        )
        # Tetris schedules Job 1 first (alignment 2.0 vs 1.0), then the
        # two small jobs together: completions 36, 44, 44 (total 124...)
        assert big.finish_time == pytest.approx(36.0)
        assert small_a.finish_time == pytest.approx(44.0)
        assert small_b.finish_time == pytest.approx(44.0)

    def test_epsilon_srpt_breaks_alignment_ties(self):
        cluster = single_core_cluster()
        long = make_single_task_job(theta=100.0, arrival_time=0.0, job_id=1)
        short = make_single_task_job(theta=1.0, arrival_time=0.0, job_id=2)
        run_simulation(
            cluster, TetrisScheduler(epsilon=0.5), [long, short], max_time=1e5
        )
        assert short.finish_time == pytest.approx(1.0)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            TetrisScheduler(epsilon=-0.1)


class TestCapacity:
    def test_has_late_speculation_by_default(self):
        from repro.schedulers.speculation import LATESpeculation

        assert isinstance(CapacityScheduler().speculation, LATESpeculation)

    def test_queue_weights_validated(self):
        with pytest.raises(ValueError):
            CapacityScheduler(queue_weights={"a": 0.0})

    def test_multi_queue_interleaves_users(self):
        """With equal queue weights, bob's queue gets a core even though
        alice submitted two jobs first (single-queue FIFO would not)."""
        cluster = homogeneous_cluster(1, Resources.of(2, 100))
        alice1 = make_single_task_job(theta=100.0, job_id=10)
        alice2 = make_single_task_job(theta=100.0, job_id=11)
        bob = make_single_task_job(theta=100.0, job_id=12)
        alice1.user = alice2.user = "alice"
        bob.user = "bob"
        sched = CapacityScheduler(queue_weights={"alice": 1.0, "bob": 1.0})
        run_simulation(cluster, sched, [alice1, alice2, bob], max_time=1e5)
        assert bob.first_start_time() == pytest.approx(0.0)
        assert alice2.first_start_time() == pytest.approx(100.0)

    def test_single_queue_fifo_order(self):
        """Without queue weights Capacity degenerates to FIFO order."""
        cluster = homogeneous_cluster(1, Resources.of(2, 100))
        alice1 = make_single_task_job(theta=100.0, job_id=10)
        alice2 = make_single_task_job(theta=100.0, job_id=11)
        bob = make_single_task_job(theta=100.0, job_id=12)
        bob.user = "bob"
        run_simulation(cluster, CapacityScheduler(), [alice1, alice2, bob], max_time=1e5)
        assert bob.first_start_time() == pytest.approx(100.0)


class TestCarbyne:
    def test_fair_pass_respects_fair_share_then_leftover_fills(self):
        cluster = homogeneous_cluster(1, Resources.of(10, 10))
        a = make_chain_job(1, 20, cpu=1.0, mem=1.0, theta=50.0, job_id=1)
        b = make_single_task_job(cpu=1.0, mem=1.0, theta=5.0, job_id=2)

        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(cluster, CarbyneScheduler(), [a, b], max_time=1e5)
        for job in engine.jobs:
            engine._process_arrival(job)
        engine._run_schedule_pass()
        # b takes 1 core (all it needs); leftover pass lets a fill the rest.
        assert sum(t.num_live_copies for t in b.running_tasks()) == 1
        assert sum(t.num_live_copies for t in a.running_tasks()) == 9

    def test_reduces_flowtime_vs_plain_drf_for_small_jobs(self):
        def jobs():
            out = [make_chain_job(1, 30, cpu=1.0, mem=1.0, theta=20.0, job_id=1)]
            out += [
                make_single_task_job(theta=2.0, arrival_time=0.0, job_id=2 + i)
                for i in range(5)
            ]
            return out

        cluster = homogeneous_cluster(1, Resources.of(8, 100))
        carbyne = run_simulation(cluster, CarbyneScheduler(), jobs(), max_time=1e5)
        assert carbyne.num_jobs == 6


class TestGraphene:
    def test_matches_tetris_on_sequential_dags(self):
        """The paper's claim: Graphene ≈ Tetris for chain jobs."""

        def make_jobs():
            return [
                make_chain_job(2, 4, theta=10.0, arrival_time=5.0 * i, job_id=50 + i)
                for i in range(6)
            ]

        cluster = homogeneous_cluster(2, Resources.of(4, 8))
        t = run_simulation(cluster, TetrisScheduler(), make_jobs(), max_time=1e5)
        g = run_simulation(cluster, GrapheneScheduler(), make_jobs(), max_time=1e5)
        assert t.total_flowtime == pytest.approx(g.total_flowtime, rel=1e-6)

    def test_downstream_criticality(self):
        # Diamond with a long branch: phase 1 (long) more critical than 2.
        from repro.workload.phase import Phase as P

        phases = [
            P(0, 1, Resources.of(1, 1), Deterministic(1.0)),
            P(1, 1, Resources.of(1, 1), Deterministic(30.0), parents=(0,)),
            P(2, 1, Resources.of(1, 1), Deterministic(2.0), parents=(0,)),
            P(3, 1, Resources.of(1, 1), Deterministic(1.0), parents=(1, 2)),
        ]
        job = Job(phases)
        g = GrapheneScheduler()
        assert g.downstream_criticality(job, phases[1]) > g.downstream_criticality(
            job, phases[2]
        )
