"""Tests for the server-weight hook in the placement loop."""

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.schedulers.packing import fill_tasks_best_fit, pending_by_phase
from repro.sim.engine import SimulationEngine
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase


class _Null(Scheduler):
    name = "null"

    def schedule(self, view):
        pass


def make_view(cluster, jobs):
    engine = SimulationEngine(cluster, _Null(), jobs)
    for j in jobs:
        engine.active_jobs[j.job_id] = j
    return engine.view


def identical_two_server_cluster():
    return Cluster([Server(0, Resources.of(8, 8)), Server(1, Resources.of(8, 8))])


class TestServerWeight:
    def test_weight_overrides_alignment_tie(self):
        cluster = identical_two_server_cluster()
        phase = Phase(0, 1, Resources.of(1, 1), Deterministic(5.0))
        job = Job([phase])
        view = make_view(cluster, [job])
        fill_tasks_best_fit(
            view,
            pending_by_phase(job),
            server_weight=lambda s: 0.1 if s.server_id == 0 else 1.0,
        )
        assert phase.tasks[0].copies[0].server_id == 1

    def test_none_weight_keeps_default_behaviour(self):
        cluster = identical_two_server_cluster()
        phase = Phase(0, 2, Resources.of(4, 4), Deterministic(5.0))
        job = Job([phase])
        view = make_view(cluster, [job])
        launched = fill_tasks_best_fit(view, pending_by_phase(job), server_weight=None)
        assert launched == 2

    def test_zero_weight_still_places_when_only_option(self):
        """A down-weighted server is dispreferred, not forbidden."""
        cluster = Cluster([Server(0, Resources.of(8, 8))])
        phase = Phase(0, 1, Resources.of(1, 1), Deterministic(5.0))
        job = Job([phase])
        view = make_view(cluster, [job])
        launched = fill_tasks_best_fit(
            view, pending_by_phase(job), server_weight=lambda s: 0.5
        )
        assert launched == 1
