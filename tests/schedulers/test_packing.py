"""Unit tests for the shared placement loops."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.cluster.mirror import AvailabilityMirror
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.schedulers.packing import (
    CloneScoreCache,
    fill_clones_best_fit,
    fill_tasks_best_fit,
    next_pending_task,
    pending_by_phase,
)
from repro.sim.engine import SimulationEngine
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase
from tests.conftest import make_chain_job, make_diamond_job


class _Null(Scheduler):
    name = "null"

    def schedule(self, view):
        pass


def make_view(cluster, jobs, t=0.0):
    """An engine view with all jobs activated (no events processed)."""
    engine = SimulationEngine(cluster, _Null(), jobs)
    for j in jobs:
        engine.active_jobs[j.job_id] = j
    return engine.view


class TestPendingByPhase:
    def test_only_ready_phases(self):
        job = make_chain_job(2, 3)
        got = pending_by_phase(job)
        assert [p.index for p, _ in got] == [0]
        assert len(got[0][1]) == 3

    def test_parallel_branches_offered(self):
        job = make_diamond_job()
        for t in job.phases[0].tasks:
            t.complete(1.0)
        got = pending_by_phase(job)
        assert [p.index for p, _ in got] == [1, 2]

    def test_next_pending_task(self):
        job = make_chain_job(1, 2)
        t = next_pending_task(job)
        assert t is job.phases[0].tasks[0]
        t.complete(1.0)
        assert next_pending_task(job) is job.phases[0].tasks[1]
        job.phases[0].tasks[1].complete(1.0)
        assert next_pending_task(job) is None


class TestFillTasks:
    def test_fills_until_capacity(self):
        cluster = homogeneous_cluster(1, Resources.of(4, 8))
        job = make_chain_job(1, 10, cpu=1.0, mem=1.0, theta=5.0)
        view = make_view(cluster, [job])
        launched = fill_tasks_best_fit(view, pending_by_phase(job))
        assert launched == 4  # CPU-bound

    def test_empty_candidates(self):
        cluster = homogeneous_cluster(1, Resources.of(4, 8))
        job = make_chain_job(1, 1)
        view = make_view(cluster, [job])
        assert fill_tasks_best_fit(view, []) == 0

    def test_best_fit_prefers_aligned_server(self):
        # Memory-heavy task should land on the memory-rich server.
        from repro.cluster.cluster import Cluster
        from repro.cluster.server import Server

        cluster = Cluster(
            [Server(0, Resources.of(16, 8)), Server(1, Resources.of(4, 64))]
        )
        phase = Phase(0, 1, Resources.of(1, 8), Deterministic(5.0))
        job = Job([phase])
        view = make_view(cluster, [job])
        fill_tasks_best_fit(view, pending_by_phase(job))
        assert phase.tasks[0].copies[0].server_id == 1

    def test_on_launch_callback(self):
        cluster = homogeneous_cluster(1, Resources.of(4, 8))
        job = make_chain_job(1, 2, theta=5.0)
        view = make_view(cluster, [job])
        seen = []
        fill_tasks_best_fit(
            view, pending_by_phase(job), on_launch=lambda t, s: seen.append(t.uid)
        )
        assert len(seen) == 2

    def test_mixed_demands_pack_tightly(self):
        """The loop should keep placing small tasks after big ones stop
        fitting."""
        cluster = homogeneous_cluster(1, Resources.of(10, 100))
        big = Phase(0, 2, Resources.of(4, 4), Deterministic(5.0))
        big_job = Job([big])
        small = Phase(0, 5, Resources.of(1, 1), Deterministic(5.0))
        small_job = Job([small])
        view = make_view(cluster, [big_job, small_job])
        launched = fill_tasks_best_fit(
            view, pending_by_phase(big_job) + pending_by_phase(small_job)
        )
        # 2 big (8 cpu) + 2 small (2 cpu) = 10 cpu.
        assert launched == 4
        assert cluster[0].available.cpu == pytest.approx(0.0)


class TestFillClones:
    def test_one_clone_per_listed_task(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 8))
        job = make_chain_job(1, 2, theta=10.0)
        view = make_view(cluster, [job])
        fill_tasks_best_fit(view, pending_by_phase(job))
        running = job.phases[0].tasks
        launched = fill_clones_best_fit(view, list(running))
        assert launched == 2
        assert all(t.num_live_copies == 2 for t in running)

    def test_budget_check_blocks(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 8))
        job = make_chain_job(1, 2, theta=10.0)
        view = make_view(cluster, [job])
        fill_tasks_best_fit(view, pending_by_phase(job))
        launched = fill_clones_best_fit(
            view, list(job.phases[0].tasks), budget_check=lambda t: False
        )
        assert launched == 0

    def test_pending_tasks_skipped(self):
        cluster = homogeneous_cluster(1, Resources.of(4, 8))
        job = make_chain_job(1, 1, theta=10.0)
        view = make_view(cluster, [job])
        launched = fill_clones_best_fit(view, list(job.phases[0].tasks))
        assert launched == 0  # never ran, nothing to clone

    def test_max_launches(self):
        cluster = homogeneous_cluster(4, Resources.of(4, 8))
        job = make_chain_job(1, 4, theta=10.0)
        view = make_view(cluster, [job])
        fill_tasks_best_fit(view, pending_by_phase(job))
        launched = fill_clones_best_fit(
            view, list(job.phases[0].tasks), max_launches=2
        )
        assert launched == 2


class _StubServer:
    """Just enough Server surface for AvailabilityMirror."""

    def __init__(self, sid: int, capacity: Resources) -> None:
        self.server_id = sid
        self.capacity = capacity
        self.available = capacity
        self.allocated = Resources(0.0, 0.0)
        self.up = True


class TestCloneScoreCache:
    """The per-pass memo must answer exactly like a fresh
    ``mirror.best_fit`` at every step, as long as every availability
    change flows through ``on_launch`` — the pass-2 usage contract."""

    demands = (
        Resources(1.0, 0.5),
        Resources(2.0, 2.0),
        Resources(0.5, 1.5),
        Resources(3.0, 1.0),
    )

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_matches_best_fit_under_launch_sequences(self, data):
        caps = [Resources(4.0, 4.0), Resources(8.0, 6.0), Resources(2.0, 3.0)]
        servers = [
            _StubServer(i, caps[data.draw(st.integers(0, len(caps) - 1))])
            for i in range(data.draw(st.integers(1, 8)))
        ]
        mirror = AvailabilityMirror(servers)
        cache = CloneScoreCache(mirror)
        for _ in range(data.draw(st.integers(0, 25))):
            demand = data.draw(st.sampled_from(self.demands))
            expect = mirror.best_fit(demand)
            got = cache.best_fit_id(demand)
            if expect is None:
                assert got is None
                continue
            assert got == expect[0]
            # Launch on the chosen server: shrink availability through
            # the mirror, then invalidate via the cache's own hook.
            server = servers[got]
            server.available = server.available - demand
            server.allocated = server.allocated + demand
            mirror.update(server)
            cache.on_launch(got)

    def test_returns_none_when_nothing_fits(self):
        servers = [_StubServer(0, Resources(1.0, 1.0))]
        cache = CloneScoreCache(AvailabilityMirror(servers))
        assert cache.best_fit_id(Resources(2.0, 2.0)) is None
