"""RL005 allowed idiom: the canonical epsilon lives here and only here."""

EPS = 1e-9
