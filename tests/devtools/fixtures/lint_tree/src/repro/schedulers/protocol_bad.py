"""RL007 true positives: state mutation outside the action protocol."""


def schedule(view, server, copy):
    engine = view._engine                   # line 5: private backdoor
    engine.now = 0.0                        # line 6: engine state store
    view.cluster.servers[0].label = "mine"  # line 7: cluster state store
    server.allocate(copy)                   # line 8: owner-layer mutator
    engine.kill_copy(copy)                  # line 9: unjournaled kill
