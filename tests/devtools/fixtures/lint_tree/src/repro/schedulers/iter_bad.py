"""RL006 true positives: unordered iteration in decision loops."""


def schedule(active_jobs, server):
    for job in active_jobs.values():        # line 5: dict-view order
        launch(job)
    for copy in server.running_copies:      # line 7: set order
        maybe_clone(copy)
    urgent = [t for t in set(collect())]    # line 9: bare set()
    return urgent


def launch(job):
    return job


def maybe_clone(copy):
    return copy


def collect():
    return []
