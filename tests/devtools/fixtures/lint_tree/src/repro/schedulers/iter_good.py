"""RL006 allowed idioms: explicit sort keys fix the iteration order."""


def schedule(active_jobs, server, weights):
    for job in sorted(active_jobs.values(), key=lambda j: j.job_id):
        launch(job)
    for copy in sorted(server.running_copies, key=lambda c: c.copy_uid):
        maybe_clone(copy)
    for w in weights:  # a list: ordered, no sort needed
        launch(w)


def launch(job):
    return job


def maybe_clone(copy):
    return copy
