"""RL007 allowed idioms: typed actions through the view choke point."""


def schedule(view, task, server, copy):
    view.apply(make_launch(task, server))
    view.apply(make_launch(task, server, clone=True))
    view.apply(make_kill(copy))
    view.launch(task, server)  # thin wrapper over apply: journaled
    view.kill(copy)
    total = view.cluster.total_capacity  # reads are fine
    self_like = PolicyState()
    self_like.cluster = total  # plain reference bind on policy state
    return total


class PolicyState:
    cluster = None


def make_launch(task, server, clone=False):
    return (task, server, clone)


def make_kill(copy):
    return (copy,)
