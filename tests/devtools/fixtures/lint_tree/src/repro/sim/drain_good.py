"""RL008 allowed idioms: the engine's drain API and waived debugging."""


def drain(engine):
    events = engine.events
    handled = 0
    while events:
        batch = events.pop_batch()
        for ev in batch:
            handled += 1
    return handled


def schedule(events, t, kind, payload):
    events.push(t, kind, payload)
    return len(events), events.peek_time()


def debug_peek(events):
    return events._heap[0]  # repro-lint: ignore[RL008]
