"""RL004 true positives: wall-clock reads in simulation logic."""

import time
from datetime import datetime


def stamp_event(event):
    event.created_at = time.time()          # line 8: wall clock
    event.logged_at = datetime.now()        # line 9: wall clock
    return event
