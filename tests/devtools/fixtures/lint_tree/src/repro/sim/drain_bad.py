"""RL008 true positives: event-queue access outside the drain API."""


def steal_next(engine):
    return engine.events._heap[0]


def requeue_all(events):
    for ev in events:
        events.push(ev.time, ev.kind, ev.payload)


def jump_queue(event_queue):
    return event_queue[0]
