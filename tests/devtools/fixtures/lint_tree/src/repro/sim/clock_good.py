"""RL004 allowed idiom: elapsed-time counters for overhead accounting."""

import time as _wallclock


def measure_pass(fn):
    t0 = _wallclock.perf_counter()  # elapsed counter, not wall clock
    fn()
    return _wallclock.perf_counter() - t0
