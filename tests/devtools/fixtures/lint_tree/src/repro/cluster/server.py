"""RL001 allowed idiom: the owner module may write its own bookkeeping."""


class Server:
    def allocate(self, demand):
        self._allocated = self._allocated + demand
        self._available = self.capacity - self._allocated
