"""RL001 true positives: capacity state written outside the owners."""


def corrupt_server(server, demand):
    server._available = demand              # line 5: attribute store
    server._allocated += demand             # line 6: augmented store


def corrupt_mirror(mirror):
    mirror.avail_cpu[3] = 0.0               # line 10: mirror array store
    mirror.alloc_mem[0] -= 1.0              # line 11: augmented array store
