"""RL002 true positives: hidden-global-state and unseeded randomness."""

import random

import numpy as np
from numpy.random import default_rng


def jitter_times(times):
    random.shuffle(times)                   # line 10: stdlib global RNG
    noise = np.random.rand(len(times))      # line 11: legacy numpy global
    rng = default_rng()                     # line 12: unseeded Generator
    return times, noise, rng
