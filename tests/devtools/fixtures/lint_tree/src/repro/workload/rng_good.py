"""RL002 allowed idioms: seeded construction, threaded Generators."""

import numpy as np
from numpy.random import default_rng


def sample_durations(rng: np.random.Generator, n: int):
    # Drawing from a *threaded* Generator is the approved pattern.
    return rng.exponential(1.0, size=n)


def make_rng(seed: int) -> np.random.Generator:
    return default_rng(seed)  # seeded: reproducible


def make_rng_explicit(seed: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))
