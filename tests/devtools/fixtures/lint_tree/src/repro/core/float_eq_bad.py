"""RL003 true positives: exact float equality in decision code."""


def pick(task, server, remaining_time):
    if remaining_time == 0.0:               # line 5: float-literal equality
        return None
    if task.demand.cpu != server.avail_cpu:  # line 7: resource-name equality
        return server
    return task
