"""RL005 true positives: epsilon redefinition and bare 1e-9 literals."""

_EPS = 1e-9                                 # line 3: redefinition + literal


def nearly_equal(a, b):
    return abs(a - b) <= 1e-9               # line 7: bare literal
