"""RL003 allowed idioms: EPS tolerance, infinity sentinels, waivers."""

import math

EPS_TOL_DEMO = None  # not an epsilon constant assignment


def compare(a_time, b_time, eps, score, count):
    if abs(a_time - b_time) <= eps:         # the approved tolerance idiom
        return True
    if score == -math.inf:                  # exact inf comparison is fine
        return False
    if count == 0:                          # int comparison is fine
        return False
    return a_time == b_time  # repro-lint: ignore[RL003]
