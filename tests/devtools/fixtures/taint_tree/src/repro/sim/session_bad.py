"""RL010/RL011 true positives: tainted helpers inside session drivers."""

from repro.util import stamp
from repro.util.entropy import jitter


class SimulationEngine:
    def step(self):
        cutoff = stamp()                    # line 9: wall-clock in step()
        return cutoff

    def ingest(self, job):
        job.arrival_time = jitter()         # line 13: RNG in ingest()
        return job
