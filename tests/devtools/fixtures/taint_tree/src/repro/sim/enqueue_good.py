"""Clean: events/actions derive from threaded sim state."""


def enqueue(events, when):
    events.push(when)


def apply_action(view, action):
    view.apply(action)
