"""RL010/RL011 true positives: tainted arguments into push/apply."""

from repro.util import stamp
from repro.util.entropy import jitter


def enqueue_now(events):
    events.push(stamp())                    # line 8: wall-clock into push


def apply_jitter(view):
    delay = jitter()
    view.apply(delay)                       # line 13: RNG local into apply
