"""Allowed idiom: session drivers fed from threaded sim state."""

from repro.util.clock import threaded
from repro.util.entropy import seeded_jitter


class SimulationEngine:
    def __init__(self):
        self.now = 0.0
        self.rng = None

    def step(self):
        self.now = threaded(self.now)
        return True

    def ingest(self, job):
        job.arrival_time = self.now + seeded_jitter(self.rng)
        return job

    def run_until(self, t):
        while self.now < t and self.step():
            pass
        return self.now
