"""Minimal engine so apply/push become recognized sinks."""


class EventQueue:
    def __init__(self):
        self._heap = []

    def push(self, item):
        self._heap.append(item)


class SimulationEngine:
    def __init__(self):
        self.events = EventQueue()

    def apply(self, action):
        return action
