"""Wall-clock helpers: the RL010 taint sources."""

import time


def stamp():
    """Wall-clock read hidden behind a helper."""
    return time.time()


def relay():
    """One more hop: taint must survive helper chains."""
    return stamp() + 1.0


def threaded(now):
    """Clean: the caller supplies the time from seeded sim state."""
    return now + 1.0
