"""Re-export so the analyzer must follow `from repro.util import stamp`."""

from repro.util.clock import stamp

__all__ = ["stamp"]
