"""Ordering helpers: the RL012 taint sources."""


def order_key(obj):
    """id() is CPython allocation order — nondeterministic."""
    return id(obj)


def pending(jobs):
    """Returns a set: iteration order is hash-order."""
    return set(jobs)


def stable_key(job):
    """Clean: a semantic, sortable key."""
    return job.name
