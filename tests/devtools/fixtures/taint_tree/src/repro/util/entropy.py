"""RNG helpers: the RL011 taint sources."""

import random


def jitter():
    """Global unseeded RNG behind a helper."""
    return random.random()


def seeded_jitter(rng):
    """Clean: an explicit Generator is threaded in."""
    return float(rng.random())
