"""RL011 true positive: unseeded RNG laundered into a decision hook."""

from repro.schedulers.base import Scheduler
from repro.util.entropy import jitter


class JitterScheduler(Scheduler):
    def on_job_arrival(self, view, job):
        return job.cost + jitter()          # line 9: tainted helper in sink
