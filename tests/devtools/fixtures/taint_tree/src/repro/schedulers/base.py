"""Minimal Scheduler base so subclasses become decision sinks."""


class Scheduler:
    def schedule(self, view):
        raise NotImplementedError
