"""RL012 true positives: iteration-order-dependent values in a hook."""

from repro.schedulers.base import Scheduler
from repro.util.ids import order_key, pending


class OrderScheduler(Scheduler):
    def schedule(self, view):
        picks = []
        for job in pending(view.jobs):      # line 10: iterates a set return
            picks.append(order_key(job))    # line 11: id()-derived value
        return picks
