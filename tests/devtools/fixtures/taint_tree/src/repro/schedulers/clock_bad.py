"""RL010 true positive: wall-clock laundered through helpers into a hook."""

from repro.schedulers.base import Scheduler
from repro.util.clock import relay


class ClockScheduler(Scheduler):
    def schedule(self, view):
        deadline = relay()                  # line 9: tainted helper in sink
        return deadline
