"""Clean scheduler: every decision input is threaded sim state."""

from repro.schedulers.base import Scheduler
from repro.util.clock import threaded
from repro.util.ids import stable_key


class CleanScheduler(Scheduler):
    def schedule(self, view, now, rng):
        horizon = threaded(now)
        slack = float(rng.exponential(1.0))
        jobs = sorted(view.jobs, key=stable_key)
        return [(job, horizon + slack) for job in jobs]
