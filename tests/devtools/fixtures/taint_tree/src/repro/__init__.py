"""Fixture package for the whole-program passes (RL010-RL014)."""
