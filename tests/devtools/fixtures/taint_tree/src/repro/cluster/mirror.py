"""Owner module: the availability mirror."""


class AvailabilityMirror:
    def __init__(self, n):
        self.avail_cpu = [0.0] * n
        self.avail_mem = [0.0] * n

    def update(self, i, cpu, mem):
        self.avail_cpu[i] = cpu
        self.avail_mem[i] = mem
