"""Clean: reads through aliases and the sanctioned owner API."""


def headroom(mirror):
    arr = mirror.avail_cpu
    return arr[0] + arr[1]


def give_back(server, demand):
    server.release(demand)
