"""RL013 true positives: capacity state escaping its owner modules."""


def drain(mirror):
    arr = mirror.avail_cpu
    arr[0] = 0.0                            # line 6: write through alias
    arr.clear()                             # line 7: mutator through alias


def zero_out(buf):
    buf[0] = 0.0


def scrub(values):
    zero_out(values)


def reset(mirror):
    scrub(mirror.avail_cpu)                 # line 19: escapes into mutator
