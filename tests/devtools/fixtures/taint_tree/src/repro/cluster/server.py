"""Owner module: sanctioned writer of capacity state."""


class Server:
    def __init__(self, cap_cpu, cap_mem):
        self._available = [cap_cpu, cap_mem]

    def allocate(self, demand):
        self._available[0] -= demand.cpu
        self._available[1] -= demand.mem

    def release(self, demand):
        self._available[0] += demand.cpu
        self._available[1] += demand.mem
