"""Clean: frozen module state and per-instance containers."""

MENU = (1, 2, 3)

LIMIT = 8


class PerRun:
    def __init__(self):
        self.items = []

    def add(self, item):
        self.items.append(item)
