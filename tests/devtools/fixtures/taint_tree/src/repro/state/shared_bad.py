"""RL014 true positives: shard-unsafe shared state."""

CACHE = {}                                  # line 3: mutated by remember()

MENU = [1, 2, 3]                            # line 5: never mutated — freeze


def remember(key, value):
    CACHE[key] = value


class Registry:
    instances = []                          # line 13: class-level container

    def bump(self):
        type(self).generation = 1           # line 16: class-attr write

    def tag(self):
        Registry.label = "x"                # line 19: class-attr write
