"""Self-tests for the whole-program passes (RL009-RL014) and the
analyzer infrastructure around them.

The ``fixtures/taint_tree`` corpus pins the cross-module rules the same
way ``fixtures/lint_tree`` pins the per-file pack: bad fixtures must be
flagged at exactly the expected lines, good fixtures must stay silent.
On top of that: graph-construction determinism (same tree ⇒
byte-identical dump regardless of filesystem listing order), golden
JSON/SARIF reports, the baseline lifecycle, the CLI exit-code contract,
git-aware ``--changed-only``, ``--unused-ignores``, and an end-to-end
"seeded corruption" check that plants a laundered wall-clock read in a
copy of the real ``src/repro`` and expects the gate to fail.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.repro_lint import (
    Baseline,
    LintConfig,
    build_program_graph,
    lint_paths,
)
from tools.repro_lint.baseline import (
    BaselineError,
    fingerprint_violations,
    is_baselineable,
)
from tools.repro_lint.engine import Violation

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "taint_tree"
GOLDEN_ROOT = Path(__file__).parent / "fixtures" / "golden"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def fixture_violations():
    """Lint the taint tree once.  Its own pyproject mutes the per-file
    rules, so only the whole-program findings remain."""
    return lint_paths(
        [FIXTURE_ROOT / "src"],
        root=FIXTURE_ROOT,
        config=LintConfig.load(FIXTURE_ROOT),
    )


def hits(violations, rule, filename):
    return sorted(
        v.line for v in violations if v.rule == rule and v.relpath.endswith(filename)
    )


def rules_in(violations, filename):
    return {v.rule for v in violations if v.relpath.endswith(filename)}


# ----------------------------------------------------------------------
# True positives: every whole-program rule flags its bad fixture
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule, filename, lines",
    [
        # wall-clock laundered through two helper hops into schedule()
        ("RL010", "schedulers/clock_bad.py", [9]),
        # wall-clock (via a package re-export) pushed onto the event queue
        ("RL010", "sim/enqueue_bad.py", [8]),
        # unseeded RNG laundered into an on_* hook
        ("RL011", "schedulers/rng_bad.py", [9]),
        # RNG-tainted local flowing into view.apply
        ("RL011", "sim/enqueue_bad.py", [13]),
        # wall-clock in step(), RNG in ingest(): the session drivers
        # (DESIGN.md §5.8) are sinks like apply()
        ("RL010", "sim/session_bad.py", [9]),
        ("RL011", "sim/session_bad.py", [13]),
        # set-ordered return iterated + id()-derived value in schedule()
        ("RL012", "schedulers/order_bad.py", [10, 11]),
        # alias write, alias mutator call, escape into a mutating helper
        ("RL013", "cluster/escape_bad.py", [6, 7, 19]),
        # module mutable (mutated + unmutated), class container,
        # type(self).attr and ClassName.attr writes from methods
        ("RL014", "state/shared_bad.py", [3, 5, 13, 16, 19]),
    ],
)
def test_rule_flags_bad_fixture(fixture_violations, rule, filename, lines):
    assert hits(fixture_violations, rule, filename) == lines


def test_no_cross_rule_noise(fixture_violations):
    assert rules_in(fixture_violations, "schedulers/clock_bad.py") == {"RL010"}
    assert rules_in(fixture_violations, "schedulers/rng_bad.py") == {"RL011"}
    assert rules_in(fixture_violations, "schedulers/order_bad.py") == {"RL012"}
    assert rules_in(fixture_violations, "sim/enqueue_bad.py") == {"RL010", "RL011"}
    assert rules_in(fixture_violations, "sim/session_bad.py") == {"RL010", "RL011"}
    assert rules_in(fixture_violations, "cluster/escape_bad.py") == {"RL013"}
    assert rules_in(fixture_violations, "state/shared_bad.py") == {"RL014"}


# ----------------------------------------------------------------------
# Allowed idioms: the good fixtures (and the helpers) stay silent
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "filename",
    [
        "schedulers/clean.py",  # threaded now/rng, sorted with stable key
        "sim/enqueue_good.py",  # push/apply fed from threaded sim state
        "sim/session_good.py",  # step/ingest fed from threaded sim state
        "cluster/escape_good.py",  # read-only alias + owner API call
        "cluster/server.py",  # owner module writes are sanctioned
        "cluster/mirror.py",  # owner module writes are sanctioned
        "state/shared_good.py",  # frozen module state, per-instance bins
        "util/clock.py",  # sources themselves are per-file territory
        "util/entropy.py",
        "util/ids.py",
    ],
)
def test_allowed_idioms_not_flagged(fixture_violations, filename):
    assert rules_in(fixture_violations, filename) == set()


def test_messages_never_embed_line_numbers(fixture_violations):
    """Baseline fingerprints hash (rule, path, message); a line number in
    the message would invalidate pins on unrelated edits."""
    for v in fixture_violations:
        assert f":{v.line}" not in v.message
        assert f"line {v.line}" not in v.message


# ----------------------------------------------------------------------
# Graph construction: determinism and cross-module resolution
# ----------------------------------------------------------------------
def test_graph_dump_independent_of_listing_order():
    pkg = FIXTURE_ROOT / "src" / "repro"
    files = sorted(p for p in pkg.rglob("*.py") if p.is_file())
    assert len(files) > 10
    orders = [
        files,
        list(reversed(files)),
        files[1::2] + files[0::2],
        files[len(files) // 2 :] + files[: len(files) // 2],
    ]
    dumps = {
        build_program_graph(FIXTURE_ROOT, files=order).dump() for order in orders
    }
    assert len(dumps) == 1


def test_graph_resolves_reexports_and_methods():
    graph = build_program_graph(FIXTURE_ROOT)
    # `from repro.util import stamp` resolves through the __init__.
    assert graph.resolve_object("repro.util.stamp") == "repro.util.clock.stamp"
    # Methods resolve through the class table.
    assert (
        graph.resolve_object("repro.sim.engine.SimulationEngine.apply")
        == "repro.sim.engine.SimulationEngine.apply"
    )
    # Subclasses link to the program MRO.
    mro = graph.mro("repro.schedulers.clock_bad.ClockScheduler")
    assert "repro.schedulers.base.Scheduler" in mro


def test_graph_records_syntax_errors(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "broken.py").write_text("def oops(:\n")
    graph = build_program_graph(tmp_path)
    assert [e[0] for e in graph.syntax_errors] == ["src/repro/broken.py"]


# ----------------------------------------------------------------------
# Config: per-rule globs apply uniformly to whole-program rules
# ----------------------------------------------------------------------
def test_per_rule_ignore_globs_cover_whole_program_rules():
    base = LintConfig.load(FIXTURE_ROOT)
    config = LintConfig(
        exclude=base.exclude,
        ignore={**base.ignore, "RL014": ("src/repro/state/*",)},
    )
    violations = lint_paths([FIXTURE_ROOT / "src"], root=FIXTURE_ROOT, config=config)
    assert hits(violations, "RL014", "state/shared_bad.py") == []
    # Other whole-program rules are untouched.
    assert hits(violations, "RL013", "cluster/escape_bad.py") == [6, 7, 19]


def test_findings_filtered_to_lint_targets(fixture_violations):
    """The graph is whole-program, but reports honor the target paths."""
    violations = lint_paths(
        [FIXTURE_ROOT / "src" / "repro" / "state"],
        root=FIXTURE_ROOT,
        config=LintConfig.load(FIXTURE_ROOT),
    )
    assert {v.relpath for v in violations} == {"src/repro/state/shared_bad.py"}
    # ... and nothing was lost relative to the full run.
    assert hits(violations, "RL014", "state/shared_bad.py") == hits(
        fixture_violations, "RL014", "state/shared_bad.py"
    )


# ----------------------------------------------------------------------
# Baseline: fingerprints and lifecycle
# ----------------------------------------------------------------------
def _violation(rule="RL014", path="src/repro/x.py", line=3, col=0, message="m"):
    return Violation(rule, path, line, col, message)


def test_fingerprints_disambiguate_identical_findings():
    a = _violation(line=3)
    b = _violation(line=9)  # same (rule, path, message), different line
    c = _violation(message="other")
    fps = fingerprint_violations([a, b, c])
    assert fps[0] != fps[1] != fps[2]
    assert fps[1] == f"{fps[0]}#2"
    # Line numbers do not enter the hash: shifting code keeps the pin.
    assert fingerprint_violations([_violation(line=77)])[0] == fps[0]


def test_baseline_partition_and_update(tmp_path):
    path = tmp_path / "baseline.json"
    a, b = _violation(message="kept"), _violation(message="fixed")
    Baseline.load(None).updated([a, b]).write(path)
    loaded = Baseline.load(path)
    new, baselined, stale = loaded.partition([a, _violation(message="fresh")])
    assert [v.message for v in new] == ["fresh"]
    assert [v.message for v in baselined] == ["kept"]
    assert len(stale) == 1  # the pin for "fixed" no longer matches


def test_rl014_under_engine_packages_is_unbaselineable(tmp_path):
    """RL014 in src/repro/sim/ or src/repro/cluster/ is a hard failure:
    a pin for it — even one hand-edited into the file — is ignored, and
    --update-baseline's rewrite refuses to create one."""
    path = tmp_path / "baseline.json"
    sim = _violation(path="src/repro/sim/engine.py", message="global leak")
    cluster = _violation(path="src/repro/cluster/mirror.py", message="global leak")
    elsewhere = _violation(path="src/repro/workload/arrivals.py", message="global leak")

    written = Baseline.load(None).updated([sim, cluster, elsewhere])
    assert len(written.entries) == 1  # only the workload finding pinned
    assert next(iter(written.entries.values()))["path"] == elsewhere.relpath

    # Forge pins for all three; the engine-package ones must not waive.
    forged = Baseline(
        path=path,
        entries={
            fp: {"rule": v.rule, "path": v.relpath, "message": v.message}
            for v, fp in zip(
                [sim, cluster, elsewhere],
                fingerprint_violations([sim, cluster, elsewhere]),
            )
        },
    )
    new, baselined, _stale = forged.partition([sim, cluster, elsewhere])
    assert {v.relpath for v in new} == {sim.relpath, cluster.relpath}
    assert [v.relpath for v in baselined] == [elsewhere.relpath]

    # Other rules in those packages stay baselineable.
    assert is_baselineable("RL010", "src/repro/sim/engine.py")
    assert not is_baselineable("RL014", "src/repro/sim/engine.py")
    assert not is_baselineable("RL014", "src/repro/cluster/mirror.py")
    assert is_baselineable("RL014", "src/repro/workload/arrivals.py")


def test_baseline_update_preserves_justifications(tmp_path):
    path = tmp_path / "baseline.json"
    v = _violation()
    first = Baseline.load(None).updated([v])
    fp = next(iter(first.entries))
    first.entries[fp]["justification"] = "accepted: migration pending"
    first.write(path)
    updated = Baseline.load(path).updated([v])
    assert updated.entries[fp]["justification"] == "accepted: migration pending"


def test_baseline_malformed_file_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"format": "wrong/v0", "entries": {}}')
    with pytest.raises(BaselineError):
        Baseline.load(path)


def test_committed_baseline_is_valid():
    baseline = Baseline.load(REPO_ROOT / "tools" / "repro_lint" / "baseline.json")
    for entry in baseline.entries.values():
        assert entry.get("justification"), "every pin needs a justification"


# ----------------------------------------------------------------------
# CLI: golden reports, exit codes, git mode, unused-ignores
# ----------------------------------------------------------------------
def _run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


@pytest.mark.parametrize("fmt", ["json", "sarif"])
def test_cli_golden_report(fmt):
    proc = _run_cli(["--format", fmt, "src"], cwd=FIXTURE_ROOT)
    assert proc.returncode == 1
    golden = (GOLDEN_ROOT / f"taint_tree.{fmt}").read_text()
    assert proc.stdout == golden


def test_golden_sarif_shape():
    sarif = json.loads((GOLDEN_ROOT / "taint_tree.sarif").read_text())
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {f"RL{n:03d}" for n in range(15)} <= rule_ids
    assert len(run["results"]) == 16
    for result in run["results"]:
        assert result["partialFingerprints"]["reproLint/v1"]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert loc["region"]["startColumn"] >= 1


def test_cli_output_flag_writes_report_and_echoes_text(tmp_path):
    out = tmp_path / "report" / "lint.sarif"
    proc = _run_cli(
        ["--format", "sarif", "--output", str(out), "src"], cwd=FIXTURE_ROOT
    )
    assert proc.returncode == 1
    assert json.loads(out.read_text())["version"] == "2.1.0"
    assert "RL010" in proc.stdout  # findings still readable on stdout


def test_cli_baseline_roundtrip(tmp_path):
    baseline = tmp_path / "baseline.json"
    update = _run_cli(
        ["--update-baseline", "--baseline", str(baseline), "src"], cwd=FIXTURE_ROOT
    )
    assert update.returncode == 0
    assert len(json.loads(baseline.read_text())["entries"]) == 16
    # Pinned findings no longer fail the gate ...
    rerun = _run_cli(["--baseline", str(baseline), "src"], cwd=FIXTURE_ROOT)
    assert rerun.returncode == 0, rerun.stdout + rerun.stderr
    assert rerun.stdout == ""
    assert "16 baselined" in rerun.stderr
    # ... but --no-baseline surfaces everything again.
    bare = _run_cli(
        ["--no-baseline", "--baseline", str(baseline), "src"], cwd=FIXTURE_ROOT
    )
    assert bare.returncode == 1


def test_cli_malformed_baseline_is_usage_error(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("not json at all")
    proc = _run_cli(["--baseline", str(bad), "src"], cwd=FIXTURE_ROOT)
    assert proc.returncode == 2


def test_cli_internal_error_exits_3(monkeypatch, capsys):
    from tools.repro_lint import engine

    def boom(args):
        raise RuntimeError("synthetic linter crash")

    monkeypatch.setattr(engine, "_run", boom)
    assert engine.main(["src"]) == 3
    assert "internal error" in capsys.readouterr().err


def test_cli_list_rules():
    proc = _run_cli(["--list-rules"], cwd=FIXTURE_ROOT)
    assert proc.returncode == 0
    for n in range(15):
        assert f"RL{n:03d}" in proc.stdout


def _git(args, cwd):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


def test_cli_changed_only_reports_changed_files_only(tmp_path):
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (sim / "__init__.py").write_text("")
    bad = 'import time\n\n\ndef stamp(event):\n    event.t = time.time()\n'
    (sim / "alpha.py").write_text(bad)
    (sim / "beta.py").write_text(bad)
    _git(["init", "-q"], cwd=tmp_path)
    _git(["add", "."], cwd=tmp_path)
    _git(["commit", "-q", "-m", "seed"], cwd=tmp_path)
    # Everything committed and unchanged: nothing to report.
    clean = _run_cli(["--changed-only", "src"], cwd=tmp_path)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    # Touch one file: only its findings come back.
    (sim / "beta.py").write_text(bad + "\n# touched\n")
    dirty = _run_cli(["--changed-only", "src"], cwd=tmp_path)
    assert dirty.returncode == 1
    assert "beta.py" in dirty.stdout
    assert "alpha.py" not in dirty.stdout


def test_cli_unused_ignores(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "cfg.py").write_text(
        "MENU = [1, 2, 3]  # repro-lint: ignore[RL014]\n"
        "STALE = 7  # repro-lint: ignore[RL004]\n"
    )
    # The RL014 waiver is *used* (inline suppressions cover the
    # whole-program rules too); the RL004 one is stale.
    proc = _run_cli(["--unused-ignores", "src"], cwd=tmp_path)
    assert proc.returncode == 1
    assert "RL009" in proc.stdout
    assert "cfg.py:2:" in proc.stdout
    assert "RL014" not in proc.stdout
    # Without the flag the stale waiver is tolerated.
    assert _run_cli(["src"], cwd=tmp_path).returncode == 0


# ----------------------------------------------------------------------
# End-to-end: a seeded corruption of the real tree must fail the gate
# ----------------------------------------------------------------------
def test_gate_catches_laundered_wall_clock_in_real_tree(tmp_path):
    shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
    shutil.copy(REPO_ROOT / "pyproject.toml", tmp_path / "pyproject.toml")
    before = _run_cli(["src"], cwd=tmp_path)
    assert before.returncode == 0, before.stdout + before.stderr

    (tmp_path / "src" / "repro" / "workload" / "_clockutil.py").write_text(
        textwrap.dedent(
            '''
            """Deliberately corrupt fixture: laundered wall-clock."""

            import time


            def fresh_now():
                return time.time()
            '''
        ).lstrip()
    )
    (tmp_path / "src" / "repro" / "schedulers" / "_wallclock_bad.py").write_text(
        textwrap.dedent(
            '''
            """Deliberately corrupt fixture: clock-driven scheduler."""

            from repro.schedulers.base import Scheduler
            from repro.workload._clockutil import fresh_now


            class WallClockScheduler(Scheduler):
                def schedule(self, cluster, clock, pending_jobs):
                    return [] if fresh_now() > 0 else None
            '''
        ).lstrip()
    )
    after = _run_cli(["src"], cwd=tmp_path)
    assert after.returncode == 1, after.stdout + after.stderr
    assert "RL010" in after.stdout
    assert "_wallclock_bad.py" in after.stdout
