"""The runtime sanitizer must catch every class of injected corruption.

Each test launches a real copy through the engine, then corrupts state
the way a buggy scheduler or bookkeeping refactor would, and asserts the
sanitizer names the right violation class (and entity).  Direct writes
to ``_available``/``_allocated``/mirror arrays are the *point* of these
tests — the file is on RL001's ignore list in ``[tool.repro-lint]``.
"""

from __future__ import annotations

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.online import DollyMPScheduler
from repro.devtools.sanitizer import (
    InvariantKind,
    SanitizerError,
    SimulationSanitizer,
)
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.engine import SimulationEngine
from repro.sim.runner import run_simulation
from repro.workload.task import TaskState
from tests.conftest import make_chain_job, make_single_task_job


def engine_with_running_copy(*, scheduler=None, sanitize=False):
    """An engine mid-simulation with exactly one live copy placed."""
    cluster = homogeneous_cluster(2, Resources.of(8, 16))
    job = make_single_task_job(theta=50.0)
    engine = SimulationEngine(
        cluster, scheduler or FIFOScheduler(), [job], sanitize=sanitize
    )
    engine._process_arrival(job)
    task = job.phases[0].tasks[0]
    copy = engine.launch_copy(task, cluster[0])
    return engine, task, copy


def kinds(violations):
    return {v.kind for v in violations}


class TestCleanState:
    def test_no_violations_right_after_launch(self):
        engine, _, _ = engine_with_running_copy()
        sanitizer = SimulationSanitizer(engine)
        assert sanitizer.check() == []

    def test_after_event_passes_on_clean_state(self):
        engine, _, _ = engine_with_running_copy()
        SimulationSanitizer(engine).after_event("LAUNCH @ t=0")


class TestCapacityConservation:
    def test_phantom_allocation_detected(self):
        engine, _, copy = engine_with_running_copy()
        server = engine.cluster[0]
        # A lost release: allocation grows without a resident copy.
        server._allocated = server._allocated + Resources.of(1, 2)
        server._mirror.update(server)  # keep the mirror coherent on purpose
        violations = SimulationSanitizer(engine).check("corrupt")
        assert InvariantKind.CAPACITY_CONSERVATION in kinds(violations)
        v = next(
            v for v in violations if v.kind is InvariantKind.CAPACITY_CONSERVATION
        )
        assert v.server_id == 0

    def test_double_release_detected(self):
        engine, task, copy = engine_with_running_copy()
        # Buggy cleanup path: the server releases the copy while the
        # engine still counts it live and expects its finish event.
        engine.cluster[0].release(copy)
        violations = SimulationSanitizer(engine).check("double release")
        assert InvariantKind.CAPACITY_CONSERVATION in kinds(violations)
        v = next(
            v for v in violations if v.kind is InvariantKind.CAPACITY_CONSERVATION
        )
        assert v.task_uid == task.uid
        assert "released" in v.message

    def test_dead_copy_still_resident_detected(self):
        engine, task, copy = engine_with_running_copy()
        # Mark the copy dead without releasing its reservation.
        copy.killed = True
        violations = SimulationSanitizer(engine).check("leak")
        assert InvariantKind.CAPACITY_CONSERVATION in kinds(violations)


class TestMirrorCoherence:
    def test_mutated_mirror_array_detected(self):
        engine, _, _ = engine_with_running_copy()
        engine.cluster.mirror.avail_cpu[1] += 2.0
        violations = SimulationSanitizer(engine).check("mirror poke")
        assert kinds(violations) == {InvariantKind.MIRROR_COHERENCE}
        v = violations[0]
        assert v.server_id == 1
        assert "avail_cpu" in v.message

    def test_stale_mirror_after_direct_server_write_detected(self):
        engine, _, _ = engine_with_running_copy()
        server = engine.cluster[1]
        server._available = Resources.of(1, 1)  # mirror not notified
        violations = SimulationSanitizer(engine).check("stale")
        assert InvariantKind.MIRROR_COHERENCE in kinds(violations)


class TestNegativeAvailability:
    def test_negative_available_detected(self):
        engine, _, _ = engine_with_running_copy()
        server = engine.cluster[1]
        cap = server.capacity
        # Conservation-preserving corruption: only the sign check fires
        # on the server itself (plus mirror staleness).
        server._available = Resources.of(-1.0, cap.mem + 1.0)
        server._allocated = Resources.of(cap.cpu + 1.0, -1.0)
        server._mirror.update(server)
        violations = SimulationSanitizer(engine).check("negative")
        assert InvariantKind.NEGATIVE_AVAILABILITY in kinds(violations)


class TestCloneBound:
    def test_exceeding_clone_cap_detected(self):
        engine, task, _ = engine_with_running_copy(
            scheduler=DollyMPScheduler(max_clones=2)
        )
        # DollyMP² allows 3 live copies; launch 3 more clones = 4 live.
        for _ in range(3):
            engine.launch_copy(task, engine.cluster[1], clone=True)
        violations = SimulationSanitizer(engine).check("over-cloned")
        assert InvariantKind.CLONE_BOUND in kinds(violations)
        v = next(v for v in violations if v.kind is InvariantKind.CLONE_BOUND)
        assert v.task_uid == task.uid
        assert "4 live copies" in v.message

    def test_cap_within_bound_is_clean(self):
        engine, task, _ = engine_with_running_copy(
            scheduler=DollyMPScheduler(max_clones=2)
        )
        for _ in range(2):
            engine.launch_copy(task, engine.cluster[1], clone=True)
        assert SimulationSanitizer(engine).check() == []

    def test_corrupted_live_counter_detected(self):
        engine, task, _ = engine_with_running_copy()
        task._live_count += 1
        violations = SimulationSanitizer(engine).check("counter")
        assert InvariantKind.CLONE_BOUND in kinds(violations)

    def test_cap_inferred_from_policy(self):
        engine, _, _ = engine_with_running_copy(
            scheduler=DollyMPScheduler(max_clones=1)
        )
        assert SimulationSanitizer(engine).max_copies == 2


class TestTimeMonotonicity:
    def test_backwards_time_detected(self):
        engine, _, _ = engine_with_running_copy()
        sanitizer = SimulationSanitizer(engine)
        engine.now = 10.0
        assert sanitizer.check("t=10") == []
        engine.now = 5.0
        violations = sanitizer.check("t=5")
        assert kinds(violations) == {InvariantKind.TIME_MONOTONICITY}


class TestEngineIntegration:
    def test_after_event_raises_structured_error(self):
        engine, _, _ = engine_with_running_copy()
        engine.cluster.mirror.alloc_mem[0] = 99.0
        sanitizer = SimulationSanitizer(engine)
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.after_event("COPY_FINISH @ t=42")
        err = excinfo.value
        assert err.violations
        assert "mirror-coherence" in str(err)
        assert "COPY_FINISH @ t=42" in str(err)

    def test_engine_raises_mid_run_on_corruption(self):
        """A scheduler that corrupts the mirror is caught on the very
        next event, with the event named in the report."""

        class CorruptingScheduler(FIFOScheduler):
            def schedule(self, view):
                super().schedule(view)
                view.cluster.mirror.avail_cpu[0] = 1234.5

        cluster = homogeneous_cluster(2, Resources.of(8, 16))
        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(
            cluster, CorruptingScheduler(), [job], sanitize=True
        )
        with pytest.raises(SanitizerError) as excinfo:
            engine.run()
        assert any(
            v.kind is InvariantKind.MIRROR_COHERENCE for v in excinfo.value.violations
        )

    def test_sanitize_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cluster = homogeneous_cluster(2, Resources.of(8, 16))
        engine = SimulationEngine(
            cluster, FIFOScheduler(), [make_single_task_job(theta=5.0)]
        )
        assert engine.sanitizer is not None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        engine = SimulationEngine(
            cluster := homogeneous_cluster(2, Resources.of(8, 16)),
            FIFOScheduler(),
            [make_single_task_job(theta=5.0)],
        )
        assert engine.sanitizer is None

    def test_dollymp_end_to_end_clean_under_sanitizer(self, monkeypatch):
        """The paper's scheduler passes every invariant on a stochastic
        multi-phase workload with cloning enabled (REPRO_SANITIZE=1)."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cluster = homogeneous_cluster(4, Resources.of(8, 16))
        jobs = [
            make_chain_job(
                2, 6, theta=20.0, sigma=10.0, arrival_time=15.0 * i, job_id=i
            )
            for i in range(4)
        ]
        result = run_simulation(
            cluster, DollyMPScheduler(max_clones=2), jobs, seed=11
        )
        assert result.num_jobs == 4
        for job in jobs:
            for phase in job.phases:
                for task in phase.tasks:
                    assert task.state is TaskState.FINISHED


class TestFailedServerInvariant:
    def test_down_server_with_resident_copy_detected(self):
        engine, _, _ = engine_with_running_copy()
        # Flip the server down without the Fail applier's cleanup: the
        # resident copy, its allocation and the availability all linger.
        server = engine.cluster[0]
        server.up = False
        violations = SimulationSanitizer(engine).check("bad mark_down")
        assert InvariantKind.FAILED_SERVER in kinds(violations)
        v = next(v for v in violations if v.kind is InvariantKind.FAILED_SERVER)
        assert v.server_id == 0
        assert "resident" in v.message

    def test_down_server_leaking_availability_detected(self):
        engine, _, _ = engine_with_running_copy()
        from repro.sim.actions import Fail

        engine.apply(Fail(engine.cluster[1]))  # clean crash of the idle server
        assert SimulationSanitizer(engine).check() == []
        # Corrupt: a down server advertising capacity again.
        engine.cluster[1]._available = Resources.of(1, 1)
        violations = SimulationSanitizer(engine).check("leak")
        assert InvariantKind.FAILED_SERVER in kinds(violations)

    def test_clean_crash_passes(self):
        engine, task, _ = engine_with_running_copy()
        from repro.sim.actions import Fail

        engine.apply(Fail(engine.cluster[0]))
        assert task.state is TaskState.PENDING
        assert SimulationSanitizer(engine).check() == []


class TestRequeueCoherenceInvariant:
    def test_pending_task_with_live_copy_detected(self):
        engine, task, copy = engine_with_running_copy()
        # Buggy requeue: state flips to PENDING while the copy lives on.
        task.state = TaskState.PENDING
        task.phase._pending_count += 1
        violations = SimulationSanitizer(engine).check("bad requeue")
        assert InvariantKind.REQUEUE_COHERENCE in kinds(violations)
        v = next(
            v for v in violations if v.kind is InvariantKind.REQUEUE_COHERENCE
        )
        assert v.task_uid == task.uid

    def test_stale_phase_pending_count_detected(self):
        engine, task, _ = engine_with_running_copy()
        # Requeue that forgets to bump the phase's cached counter.
        task.phase._pending_count += 1
        violations = SimulationSanitizer(engine).check("stale counter")
        assert InvariantKind.REQUEUE_COHERENCE in kinds(violations)


class TestCloneBudgetInvariant:
    def test_leaked_occupancy_without_live_clones_detected(self):
        engine, _, _ = engine_with_running_copy()
        # The headline δ-budget drift: occupancy left over after every
        # clone exited must be flagged even when it is tiny.
        engine.clone_occupancy = Resources.of(1e-9, 0.0)
        violations = SimulationSanitizer(engine).check("budget leak")
        assert InvariantKind.CLONE_BUDGET in kinds(violations)

    def test_negative_occupancy_detected(self):
        engine, _, _ = engine_with_running_copy()
        engine.clone_occupancy = Resources.of(-0.5, 0.0)
        violations = SimulationSanitizer(engine).check("double return")
        assert InvariantKind.CLONE_BUDGET in kinds(violations)

    def test_occupancy_mismatch_with_live_clone_detected(self):
        engine, task, _ = engine_with_running_copy()
        engine.launch_copy(task, engine.cluster[1], clone=True)
        assert SimulationSanitizer(engine).check() == []
        # A fault-kill path that forgets the return leaves the occupancy
        # above the rescan of live clone demands.
        engine.clone_occupancy = engine.clone_occupancy + task.demand
        violations = SimulationSanitizer(engine).check("missed return")
        assert InvariantKind.CLONE_BUDGET in kinds(violations)
