"""Self-tests for the repro-lint rules.

Each rule is pinned by fixtures under ``fixtures/lint_tree`` — one file
of true positives and one of allowed idioms — so a refactor of the rule
engine cannot silently stop a rule from matching (the bad fixtures would
go green and these tests would fail).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from tools.repro_lint import LintConfig, lint_paths

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "lint_tree"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def fixture_violations():
    """Lint the fixture tree once, with no config (every rule active)."""
    return lint_paths(
        [FIXTURE_ROOT / "src"], root=FIXTURE_ROOT, config=LintConfig.empty()
    )


def hits(violations, rule, filename):
    return sorted(
        v.line for v in violations if v.rule == rule and v.relpath.endswith(filename)
    )


def rules_in(violations, filename):
    return {v.rule for v in violations if v.relpath.endswith(filename)}


# ----------------------------------------------------------------------
# True positives: every rule must flag its bad fixture at the right lines
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule, filename, lines",
    [
        ("RL001", "cluster/bad_writes.py", [5, 6, 10, 11]),
        ("RL002", "workload/rng_bad.py", [10, 11, 12]),
        ("RL003", "core/float_eq_bad.py", [5, 7]),
        ("RL004", "sim/clock_bad.py", [8, 9]),
        ("RL005", "core/eps_bad.py", [3, 3, 7]),
        ("RL006", "schedulers/iter_bad.py", [5, 7, 9]),
        ("RL007", "schedulers/protocol_bad.py", [5, 6, 7, 8, 9]),
        ("RL008", "sim/drain_bad.py", [5, 9, 14]),
    ],
)
def test_rule_flags_bad_fixture(fixture_violations, rule, filename, lines):
    assert hits(fixture_violations, rule, filename) == lines


# ----------------------------------------------------------------------
# Allowed idioms: the good fixtures must stay perfectly clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "filename",
    [
        "cluster/server.py",  # owner module may write capacity state
        "workload/rng_good.py",  # seeded/threaded Generators
        "core/float_eq_good.py",  # EPS idiom, inf sentinel, inline waiver
        "sim/clock_good.py",  # perf_counter is an elapsed counter
        "resources.py",  # the canonical EPS home
        "schedulers/iter_good.py",  # sorted(...) with explicit keys
        "schedulers/protocol_good.py",  # typed actions via view.apply
        "sim/drain_good.py",  # pop_batch/peek drain API, inline waiver
    ],
)
def test_allowed_idioms_not_flagged(fixture_violations, filename):
    assert rules_in(fixture_violations, filename) == set()


def test_no_cross_rule_noise(fixture_violations):
    """Bad fixtures trigger exactly their own rule, nothing else."""
    assert rules_in(fixture_violations, "cluster/bad_writes.py") == {"RL001"}
    assert rules_in(fixture_violations, "workload/rng_bad.py") == {"RL002"}
    assert rules_in(fixture_violations, "core/float_eq_bad.py") == {"RL003"}
    assert rules_in(fixture_violations, "sim/clock_bad.py") == {"RL004"}
    assert rules_in(fixture_violations, "core/eps_bad.py") == {"RL005"}
    assert rules_in(fixture_violations, "schedulers/iter_bad.py") == {"RL006"}
    assert rules_in(fixture_violations, "schedulers/protocol_bad.py") == {"RL007"}
    assert rules_in(fixture_violations, "sim/drain_bad.py") == {"RL008"}


# ----------------------------------------------------------------------
# Config: per-rule ignore globs and global excludes
# ----------------------------------------------------------------------
def test_per_rule_ignore_globs():
    config = LintConfig(ignore={"RL005": ("src/repro/core/*",)})
    violations = lint_paths([FIXTURE_ROOT / "src"], root=FIXTURE_ROOT, config=config)
    assert hits(violations, "RL005", "core/eps_bad.py") == []
    # Other rules in the same directory still fire.
    assert hits(violations, "RL003", "core/float_eq_bad.py") == [5, 7]


def test_global_exclude_glob():
    config = LintConfig(exclude=("src/repro/cluster/*",))
    violations = lint_paths([FIXTURE_ROOT / "src"], root=FIXTURE_ROOT, config=config)
    assert rules_in(violations, "cluster/bad_writes.py") == set()


def test_repo_config_excludes_fixtures():
    """The real pyproject config must shield this fixture tree."""
    config = LintConfig.load(REPO_ROOT)
    assert config.is_excluded("tests/devtools/fixtures/lint_tree/src/repro/core/eps_bad.py")


# ----------------------------------------------------------------------
# CLI contract: non-zero exit + rule IDs + file:line on dirty trees,
# zero on the real repository
# ----------------------------------------------------------------------
def _run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_cli_reports_violations_with_rule_ids_and_locations():
    proc = _run_cli(["src"], cwd=FIXTURE_ROOT)
    assert proc.returncode == 1
    assert "src/repro/cluster/bad_writes.py:5:" in proc.stdout
    for rule in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"):
        assert rule in proc.stdout


def test_cli_clean_on_real_tree():
    proc = _run_cli(["src", "tests", "benchmarks"], cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout == ""


def test_cli_unknown_path():
    proc = _run_cli(["no/such/dir"], cwd=FIXTURE_ROOT)
    assert proc.returncode == 2
