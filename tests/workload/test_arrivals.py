"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    arrivals_from_list,
    fixed_interarrival,
    poisson_arrivals,
)


class TestFixed:
    def test_exact_gaps(self):
        assert fixed_interarrival(4, 10.0) == [0.0, 10.0, 20.0, 30.0]

    def test_start_offset(self):
        assert fixed_interarrival(2, 5.0, start=100.0) == [100.0, 105.0]

    def test_jitter_keeps_monotone(self):
        times = fixed_interarrival(
            50, 10.0, jitter=0.4, rng=np.random.default_rng(0)
        )
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert times != fixed_interarrival(50, 10.0)

    def test_jitter_reproducible(self):
        a = fixed_interarrival(10, 5.0, jitter=0.2, rng=np.random.default_rng(3))
        b = fixed_interarrival(10, 5.0, jitter=0.2, rng=np.random.default_rng(3))
        assert a == b

    def test_empty(self):
        assert fixed_interarrival(0, 10.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            fixed_interarrival(-1, 1.0)
        with pytest.raises(ValueError):
            fixed_interarrival(1, -1.0)
        with pytest.raises(ValueError):
            fixed_interarrival(1, 1.0, jitter=1.0)


class TestPoisson:
    def test_count_and_monotone(self):
        times = poisson_arrivals(100, rate=0.1, rng=np.random.default_rng(1))
        assert len(times) == 100
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_mean_gap_close_to_rate(self):
        times = poisson_arrivals(20_000, rate=0.5, rng=np.random.default_rng(2))
        gaps = np.diff([0.0] + times)
        assert gaps.mean() == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(1, rate=0.0)
        with pytest.raises(ValueError):
            poisson_arrivals(-1, rate=1.0)


class TestExplicit:
    def test_passthrough(self):
        assert arrivals_from_list([0, 1.5, 3]) == [0.0, 1.5, 3.0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            arrivals_from_list([-1.0])

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            arrivals_from_list([0.0, 2.0, 1.0])
